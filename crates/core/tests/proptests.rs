//! Property-based tests: permutation group laws, window invariants, and
//! probability bounds.

use nonsearch_core::{
    lemma1_lower_bound, lemma3_bound, mori_conditional_factor, mori_event_probability_exact,
    EquivalenceWindow, Permutation,
};
use nonsearch_graph::{NodeId, UndirectedCsr};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_permutation(n: usize, seed: u64) -> Permutation {
    let window: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Permutation::random_window_shuffle(n, &window, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permutation_group_laws(n in 1usize..30, s1 in 0u64..500, s2 in 0u64..500) {
        let a = arb_permutation(n, s1);
        let b = arb_permutation(n, s2);
        // Inverse cancels.
        prop_assert!(a.compose(&a.inverse()).is_identity());
        prop_assert!(a.inverse().compose(&a).is_identity());
        // Associativity via triple compose on images.
        let c = arb_permutation(n, s1 ^ s2 ^ 0x5555);
        let left = a.compose(&b).compose(&c);
        let right = a.compose(&b.compose(&c));
        prop_assert_eq!(left, right);
        // (a∘b)⁻¹ = b⁻¹∘a⁻¹.
        prop_assert_eq!(a.compose(&b).inverse(), b.inverse().compose(&a.inverse()));
    }

    #[test]
    fn permutation_graph_action_is_a_group_action(
        n in 2usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..30),
        s1 in 0u64..300,
        s2 in 0u64..300,
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = UndirectedCsr::from_edges(n, edges).unwrap();
        let a = arb_permutation(n, s1);
        let b = arb_permutation(n, s2);
        // (a∘b)(G) = a(b(G)).
        let lhs = a.compose(&b).apply_to_graph(&g);
        let rhs = a.apply_to_graph(&b.apply_to_graph(&g));
        prop_assert_eq!(lhs, rhs);
        // Identity fixes G; action preserves degree multiset.
        prop_assert_eq!(Permutation::identity(n).apply_to_graph(&g), g.clone());
        let mut before: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        let image = a.apply_to_graph(&g);
        let mut after: Vec<usize> = image.nodes().map(|v| image.degree(v)).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn window_size_is_floor_sqrt(a in 2usize..100_000) {
        let w = EquivalenceWindow::from_anchor(a);
        let width = w.len();
        prop_assert!(width * width < a);
        prop_assert!((width + 1) * (width + 1) > a - 1);
        prop_assert!(w.contains_label(a + 1) || w.is_empty());
        prop_assert!(!w.contains_label(a));
        prop_assert!(!w.contains_label(w.b() + 1));
    }

    #[test]
    fn conditional_factors_are_probabilities(
        a in 2usize..500,
        width in 1usize..60,
        p_centi in 0u32..=100,
    ) {
        let p = p_centi as f64 / 100.0;
        for k in (a + 1)..=(a + width) {
            let f = mori_conditional_factor(k, a, p).unwrap();
            prop_assert!((0.0..=1.0).contains(&f), "k={k} a={a} p={p}: {f}");
        }
    }

    #[test]
    fn event_probability_monotone_in_width_and_bounded(
        a in 2usize..2000,
        width in 0usize..100,
        p_centi in 0u32..=100,
    ) {
        let p = p_centi as f64 / 100.0;
        let shorter = mori_event_probability_exact(a, a + width, p).unwrap();
        let longer = mori_event_probability_exact(a, a + width + 1, p).unwrap();
        prop_assert!(longer <= shorter + 1e-15);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&shorter));
    }

    #[test]
    fn lemma3_bound_holds_for_all_anchors_and_p(
        a in 2usize..50_000,
        p_centi in 0u32..=100,
    ) {
        let p = p_centi as f64 / 100.0;
        let w = EquivalenceWindow::from_anchor(a);
        let exact = mori_event_probability_exact(w.a(), w.b(), p).unwrap();
        prop_assert!(
            exact >= lemma3_bound(p) - 1e-12,
            "a={a} p={p}: {exact} < {}",
            lemma3_bound(p)
        );
    }

    #[test]
    fn lemma1_bound_is_monotone(
        size in 0usize..10_000,
        prob_centi in 0u32..=100,
    ) {
        let prob = prob_centi as f64 / 100.0;
        let bound = lemma1_lower_bound(size, prob);
        prop_assert!(bound >= 0.0);
        prop_assert!(bound <= size as f64 / 2.0 + 1e-12);
        prop_assert!(lemma1_lower_bound(size + 1, prob) >= bound);
    }
}
