//! E7 — Móri's maximum degree: the max degree of `G_t` grows like `t^p`
//! (Móri 2005), the ingredient of Theorem 1's strong-model transfer.
//!
//! Thin wrapper over the registered `xp maxdeg` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("maxdeg");
}
