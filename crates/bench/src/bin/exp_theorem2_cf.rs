//! E3 — Theorem 2: every Cooper–Frieze model with `0 < α < 1` needs
//! `Ω(n^{1/2})` weak-model requests to find vertex `n`.
//!
//! Thin wrapper over the registered `xp theorem2-cf` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("theorem2-cf");
}
