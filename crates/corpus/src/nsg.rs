//! The `.nsg` binary graph format: a little-endian serialization of the
//! exact CSR buffers of an [`UndirectedCsr`].
//!
//! Layout (all integers little-endian):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `b"NSG1"` |
//! | 4      | 2    | format version (`1`) |
//! | 6      | 2    | flags (reserved, `0`) |
//! | 8      | 8    | vertex count `n` (u64) |
//! | 16     | 8    | edge count `m` (u64) |
//! | 24     | 8    | FNV-1a 64 checksum of the payload |
//! | 32     | —    | payload |
//!
//! Payload: `offsets` as `(n+1) × u64`, then `slots` as
//! `2m × (u32 neighbor, u32 edge id)`, then `edge_list` as
//! `m × (u32, u32)`. Storing all three buffers (rather than just the
//! edge list) is what makes the reader *zero-copy-style*: decoding is a
//! straight bulk conversion into
//! [`UndirectedCsr::from_raw_parts`] with no CSR re-derivation, so the
//! exact incidence-slot order — including the slot shuffle baked in at
//! generation time — survives the round trip bit for bit.

use crate::error::CorpusError;
use crate::mmap::MappedFile;
use nonsearch_graph::{CsrBytes, CsrLayout, EdgeId, NodeId, UndirectedCsr};
use std::path::Path;
use std::sync::Arc;

/// File magic: "NonSearch Graph", format generation 1.
pub const MAGIC: [u8; 4] = *b"NSG1";
/// Current format version.
pub const VERSION: u16 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 32;

/// FNV-1a 64-bit hash — the checksum used by both the `.nsg` header
/// (over the payload) and the corpus manifest (over whole files).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serializes `graph` into `.nsg` bytes.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] if the graph exceeds the format's
/// `u32` id range (more than `u32::MAX` vertices or edges).
pub fn encode_graph(graph: &UndirectedCsr) -> Result<Vec<u8>, CorpusError> {
    let (offsets, slots, edge_list) = graph.raw_parts();
    let n = graph.node_count();
    let m = graph.edge_count();
    if n > u32::MAX as usize || m > u32::MAX as usize {
        return Err(CorpusError::format(format!(
            "graph with {n} vertices / {m} edges exceeds the u32 id range"
        )));
    }

    let payload_len = 8 * offsets.len() + 8 * slots.len() + 8 * edge_list.len();
    let mut payload = Vec::with_capacity(payload_len);
    for &o in offsets {
        payload.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &(v, e) in slots {
        payload.extend_from_slice(&(v.index() as u32).to_le_bytes());
        payload.extend_from_slice(&(e.index() as u32).to_le_bytes());
    }
    for &(u, v) in edge_list {
        payload.extend_from_slice(&(u.index() as u32).to_le_bytes());
        payload.extend_from_slice(&(v.index() as u32).to_le_bytes());
    }

    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes()); // flags
    bytes.extend_from_slice(&(n as u64).to_le_bytes());
    bytes.extend_from_slice(&(m as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    Ok(bytes)
}

/// Deserializes `.nsg` bytes back into a graph, validating the header,
/// the payload checksum, and (via
/// [`UndirectedCsr::from_raw_parts`]) the structural consistency of the
/// CSR buffers.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] on any violation.
pub fn decode_graph(bytes: &[u8]) -> Result<UndirectedCsr, CorpusError> {
    decode_graph_inner(bytes, Checksum::Check)
}

/// Whether a load re-hashes the payload against the header checksum.
///
/// [`Checksum::Trusted`] is for callers whose bytes have *already* been
/// verified end to end — the corpus verifier (whose manifest checksum
/// covers the whole file including the header), or an operator who ran
/// `corpus verify` and passes `--trust-checksums` so per-trial opens
/// skip the map-time FNV pass over the payload. Trusting skips only
/// that hash: the header sanity checks and the CSR structural
/// validation always run, so a trusted load of malformed content still
/// fails cleanly. `corpus verify` itself always hashes — it is the
/// integrity authority the trusted mode leans on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Checksum {
    /// Re-hash the payload and compare with the header (the default).
    #[default]
    Check,
    /// Skip the payload hash; keep header + structural validation.
    Trusted,
}

pub(crate) fn decode_graph_inner(
    bytes: &[u8],
    checksum: Checksum,
) -> Result<UndirectedCsr, CorpusError> {
    let (n, m) = validate_bytes_inner(bytes, checksum)?;
    let payload = &bytes[HEADER_LEN..];
    let mut at = 0usize;
    let mut next_u64 = || {
        let v = u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        v
    };
    let offsets: Vec<usize> = (0..=n).map(|_| next_u64() as usize).collect();
    let mut next_u32_pair = || {
        let a = u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"));
        let b = u32::from_le_bytes(payload[at + 4..at + 8].try_into().expect("4 bytes"));
        at += 8;
        (a as usize, b as usize)
    };
    let slots: Vec<(NodeId, EdgeId)> = (0..2 * m)
        .map(|_| {
            let (v, e) = next_u32_pair();
            (NodeId::new(v), EdgeId::new(e))
        })
        .collect();
    let edge_list: Vec<(NodeId, NodeId)> = (0..m)
        .map(|_| {
            let (u, v) = next_u32_pair();
            (NodeId::new(u), NodeId::new(v))
        })
        .collect();

    UndirectedCsr::from_raw_parts(offsets, slots, edge_list)
        .map_err(|e| CorpusError::format(e.to_string()))
}

/// Validates everything about an `.nsg` image short of CSR structure —
/// header magic, version, byte length vs the claimed counts, and the
/// payload checksum — and returns `(n, m)`. Both [`decode_graph`] and
/// the zero-copy readers run this exactly once per image.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] on any violation.
pub fn validate_bytes(bytes: &[u8]) -> Result<(usize, usize), CorpusError> {
    validate_bytes_inner(bytes, Checksum::Check)
}

fn validate_bytes_inner(bytes: &[u8], checksum: Checksum) -> Result<(usize, usize), CorpusError> {
    if bytes.len() < HEADER_LEN {
        return Err(CorpusError::format(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(CorpusError::format("bad magic (not an .nsg file)"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(CorpusError::format(format!(
            "unsupported format version {version} (reader speaks {VERSION})"
        )));
    }
    // The flags field is reserved: a writer that sets it speaks a
    // dialect this reader does not, so refusing is safer than guessing
    // (and every header bit stays covered by corruption detection).
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if flags != 0 {
        return Err(CorpusError::format(format!(
            "unknown flags {flags:#06x} (reserved field must be 0)"
        )));
    }
    let read_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let n64 = read_u64(8);
    let m64 = read_u64(16);
    let stored_checksum = read_u64(24);

    // Checked arithmetic: a corrupt header with absurd counts must fail
    // cleanly here, not overflow or attempt a huge allocation below.
    let expected_len = n64
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .and_then(|x| x.checked_add(m64.checked_mul(24)?))
        .and_then(|x| x.checked_add(HEADER_LEN as u64));
    if expected_len != Some(bytes.len() as u64) {
        return Err(CorpusError::format(format!(
            "file is {} bytes but the header claims n={n64}, m={m64}",
            bytes.len()
        )));
    }
    if checksum == Checksum::Check {
        let payload = &bytes[HEADER_LEN..];
        let actual_checksum = fnv1a64(payload);
        if actual_checksum != stored_checksum {
            return Err(CorpusError::format(format!(
                "payload checksum mismatch (header {stored_checksum:016x}, payload {actual_checksum:016x})"
            )));
        }
    }
    // The length equality bounds both counts far below usize::MAX.
    Ok((n64 as usize, m64 as usize))
}

/// The byte ranges of the three CSR buffers inside a *validated* `.nsg`
/// image with `n` vertices and `m` edges: the payload is `offsets`
/// (`(n + 1) × u64`), `slots` (`2m × (u32, u32)`), then `edge_list`
/// (`m × (u32, u32)`), and `HEADER_LEN` is 8-byte aligned — exactly the
/// shape [`UndirectedCsr::from_csr_bytes`] borrows without copying.
pub fn csr_layout(n: usize, m: usize) -> CsrLayout {
    let offsets_end = HEADER_LEN + 8 * (n + 1);
    let slots_end = offsets_end + 16 * m;
    CsrLayout {
        offsets: HEADER_LEN..offsets_end,
        slots: offsets_end..slots_end,
        edge_list: slots_end..slots_end + 8 * m,
    }
}

/// Serves the graph inside `region` (a whole `.nsg` image) zero-copy:
/// after one pass of validation — header, checksum, and (inside
/// [`UndirectedCsr::from_csr_bytes`]) CSR structure — the returned
/// graph borrows the region's bytes directly; no per-buffer vectors are
/// allocated. If the *target* cannot express the borrowed view
/// (big-endian, 32-bit, or an unexpectedly misaligned region), falls
/// back to [`decode_graph`] so every platform stays correct.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] for malformed content.
pub fn graph_from_region(region: Arc<dyn CsrBytes>) -> Result<UndirectedCsr, CorpusError> {
    graph_from_region_inner(region, Checksum::Check)
}

pub(crate) fn graph_from_region_inner(
    region: Arc<dyn CsrBytes>,
    checksum: Checksum,
) -> Result<UndirectedCsr, CorpusError> {
    let (n, m) = validate_bytes_inner(region.bytes(), checksum)?;
    let layout = csr_layout(n, m);
    match UndirectedCsr::from_csr_bytes(Arc::clone(&region), &layout) {
        Ok(graph) => Ok(graph),
        // Structural errors reproduce identically below; target/alignment
        // limitations silently degrade to the owned decode.
        Err(_) => decode_graph_inner(region.bytes(), checksum),
    }
}

/// Memory-maps the `.nsg` file at `path` and serves its graph
/// zero-copy (see [`graph_from_region`]): the OS page cache backs the
/// CSR buffers, so corpora larger than RAM stay servable and warm
/// re-loads cost page faults, not decodes. Where mapping is unavailable
/// the file is read into an aligned heap image instead — still
/// borrowed, still one validation pass, just not page-backed.
///
/// # Errors
///
/// Returns [`CorpusError::Io`] for filesystem failures and
/// [`CorpusError::Format`] for malformed content.
pub fn map_graph_file(path: &Path) -> Result<UndirectedCsr, CorpusError> {
    map_graph_file_with(path, Checksum::Check)
}

/// [`map_graph_file`] with an explicit [`Checksum`] policy. With
/// [`Checksum::Trusted`] the map-time FNV pass over the payload is
/// skipped, so a cold map does no full-file read of its own — the page
/// cache is touched by the (cheap) header checks and the structural
/// walk only, and integrity rests on a prior `corpus verify`.
///
/// # Errors
///
/// Same contract as [`map_graph_file`].
pub fn map_graph_file_with(path: &Path, checksum: Checksum) -> Result<UndirectedCsr, CorpusError> {
    let mapped = MappedFile::open(path)?;
    graph_from_region_inner(Arc::new(mapped), checksum)
}

/// [`read_graph_file`](read_graph_file) with an explicit [`Checksum`]
/// policy (see [`map_graph_file_with`]).
///
/// # Errors
///
/// Same contract as [`read_graph_file`].
pub fn read_graph_file_with(path: &Path, checksum: Checksum) -> Result<UndirectedCsr, CorpusError> {
    let bytes = std::fs::read(path).map_err(|e| CorpusError::io(path, e))?;
    decode_graph_inner(&bytes, checksum)
}

/// Encodes `graph` and writes it to `path`, returning the FNV-1a 64
/// checksum of the whole file (the value recorded in the manifest).
///
/// # Errors
///
/// Returns [`CorpusError::Format`] for unencodable graphs and
/// [`CorpusError::Io`] for filesystem failures.
pub fn write_graph_file(path: &Path, graph: &UndirectedCsr) -> Result<u64, CorpusError> {
    let bytes = encode_graph(graph)?;
    std::fs::write(path, &bytes).map_err(|e| CorpusError::io(path, e))?;
    Ok(fnv1a64(&bytes))
}

/// Reads and decodes the `.nsg` file at `path`.
///
/// # Errors
///
/// Returns [`CorpusError::Io`] for filesystem failures and
/// [`CorpusError::Format`] for malformed content.
pub fn read_graph_file(path: &Path) -> Result<UndirectedCsr, CorpusError> {
    let bytes = std::fs::read(path).map_err(|e| CorpusError::io(path, e))?;
    decode_graph(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_generators::{rng_from_seed, BarabasiAlbert};

    fn sample() -> UndirectedCsr {
        let mut g = BarabasiAlbert::sample(80, 2, &mut rng_from_seed(1))
            .unwrap()
            .undirected();
        g.shuffle_slots(&mut rng_from_seed(2));
        g
    }

    #[test]
    fn roundtrip_preserves_graph_exactly() {
        let g = sample();
        let bytes = encode_graph(&g).unwrap();
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(g, back); // slot shuffle included
    }

    #[test]
    fn roundtrip_edge_cases() {
        for g in [
            UndirectedCsr::from_edges(0, []).unwrap(),
            UndirectedCsr::from_edges(1, []).unwrap(),
            UndirectedCsr::from_edges(1, [(0, 0)]).unwrap(), // self-loop
            UndirectedCsr::from_edges(2, [(0, 1), (0, 1)]).unwrap(), // parallel
        ] {
            let bytes = encode_graph(&g).unwrap();
            assert_eq!(decode_graph(&bytes).unwrap(), g);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = sample();
        assert_eq!(encode_graph(&g).unwrap(), encode_graph(&g).unwrap());
    }

    #[test]
    fn header_fields_are_laid_out_as_documented() {
        let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let bytes = encode_graph(&g).unwrap();
        assert_eq!(&bytes[0..4], b"NSG1");
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 2);
        assert_eq!(bytes.len(), HEADER_LEN + 8 * 4 + 16 * 2 + 8 * 2);
    }

    #[test]
    fn corruption_is_detected() {
        let g = sample();
        let bytes = encode_graph(&g).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(decode_graph(&bad_magic).is_err());

        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert!(decode_graph(&bad_version).is_err());

        let mut flipped_payload = bytes.clone();
        let last = flipped_payload.len() - 1;
        flipped_payload[last] ^= 0xFF;
        assert!(decode_graph(&flipped_payload).is_err());

        let truncated = &bytes[..bytes.len() - 8];
        assert!(decode_graph(truncated).is_err());

        assert!(decode_graph(&bytes[..10]).is_err());

        // Absurd header counts must error cleanly, not overflow or
        // attempt a huge allocation.
        let mut huge_n = bytes.clone();
        huge_n[8..16].copy_from_slice(&(1u64 << 61).to_le_bytes());
        assert!(decode_graph(&huge_n).is_err());
        let mut huge_m = bytes;
        huge_m[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_graph(&huge_m).is_err());
    }

    #[test]
    fn file_roundtrip_and_checksum() {
        let dir = std::env::temp_dir().join(format!("nsg_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.nsg");
        let g = sample();
        let checksum = write_graph_file(&path, &g).unwrap();
        assert_eq!(checksum, fnv1a64(&std::fs::read(&path).unwrap()));
        assert_eq!(read_graph_file(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_load_is_zero_copy_and_equals_heap_decode() {
        let dir = std::env::temp_dir().join(format!("nsg_map_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.nsg");
        let g = sample();
        write_graph_file(&path, &g).unwrap();

        let mapped = map_graph_file(&path).unwrap();
        let heap = read_graph_file(&path).unwrap();
        assert_eq!(mapped, heap);
        assert_eq!(mapped, g, "slot shuffle survives the mapped path");
        assert!(!heap.is_borrowed());
        if nonsearch_graph::zero_copy_support().is_ok() {
            assert!(mapped.is_borrowed(), "CI targets must really borrow");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_load_runs_the_full_corruption_matrix() {
        let dir = std::env::temp_dir().join(format!("nsg_map_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.nsg");
        let g = sample();
        let good = encode_graph(&g).unwrap();

        // Payload flip: caught by the checksum at map time.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert!(map_graph_file(&path).is_err());

        // Truncation: caught by the length-vs-header check.
        std::fs::write(&path, &good[..good.len() - 8]).unwrap();
        assert!(map_graph_file(&path).is_err());

        // Bad magic.
        let mut bad_magic = good;
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(map_graph_file(&path).is_err());

        // Missing file: clean I/O error.
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(map_graph_file(&path), Err(CorpusError::Io { .. })));
    }

    #[test]
    fn region_layout_matches_the_documented_format() {
        let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let layout = csr_layout(3, 2);
        assert_eq!(layout.offsets, 32..64); // 4 × u64
        assert_eq!(layout.slots, 64..96); // 4 slots × 8
        assert_eq!(layout.edge_list, 96..112); // 2 edges × 8
        let bytes = encode_graph(&g).unwrap();
        assert_eq!(layout.edge_list.end, bytes.len());
        // A heap image (aligned) decodes zero-copy through the region
        // path too.
        let region: std::sync::Arc<dyn CsrBytes> =
            std::sync::Arc::new(nonsearch_graph::AlignedBytes::from_bytes(&bytes));
        let view = graph_from_region(region).unwrap();
        assert_eq!(view, g);
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
    }
}
