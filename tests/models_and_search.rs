//! Cross-crate integration: model structure feeds search and analysis
//! coherently.

use nonsearch::analysis::{average_distance, fit_log_log, fit_power_law_mle, DegreeDistribution};
use nonsearch::core::{
    adamic_high_degree_exponent, adamic_random_walk_exponent, GraphModel, PowerLawGiantModel,
};
use nonsearch::generators::{
    rng_from_seed, BarabasiAlbert, CooperFrieze, CooperFriezeConfig, KleinbergGrid, MoriTree,
    SeedSequence,
};
use nonsearch::graph::{degree_sequence, is_connected, NodeId};
use nonsearch::search::{greedy_route, run_weak, SearchTask, SearcherKind};
use rand::Rng;

#[test]
fn evolving_models_are_scale_free() {
    // The paper's premise: these models have power-law degrees.
    let mut rng = rng_from_seed(1);
    let tree = MoriTree::sample(30_000, 0.8, &mut rng).unwrap();
    let degrees = degree_sequence(&tree.undirected());
    let fit = fit_power_law_mle(&degrees, 3).expect("enough tail");
    assert!(
        fit.exponent > 1.5 && fit.exponent < 5.0,
        "Móri p=0.8 degree exponent {fit}"
    );

    let ba = BarabasiAlbert::sample(30_000, 2, &mut rng).unwrap();
    let fit_ba = fit_power_law_mle(&degree_sequence(&ba.undirected()), 3).unwrap();
    // BA's theoretical exponent is 3.
    assert!(
        (fit_ba.exponent - 3.0).abs() < 0.6,
        "BA degree exponent {fit_ba}"
    );
}

#[test]
fn diameters_grow_slowly_while_search_grows_fast() {
    // The paper's contrast: logarithmic distances, polynomial search.
    let mut avg_dists = Vec::new();
    let mut search_costs = Vec::new();
    let sizes = [512usize, 2048, 8192];
    for (i, &n) in sizes.iter().enumerate() {
        let mut rng = rng_from_seed(50 + i as u64);
        let tree = MoriTree::sample(n, 0.5, &mut rng).unwrap();
        let graph = tree.undirected();
        avg_dists.push(average_distance(&graph, 8, &mut rng).unwrap());
        let task =
            SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(100 * n);
        let mut best = usize::MAX;
        for kind in SearcherKind::informed() {
            let mut searcher = kind.build();
            let o = run_weak(&graph, &task, &mut *searcher, &mut rng).unwrap();
            if o.found {
                best = best.min(o.requests);
            }
        }
        search_costs.push(best as f64);
    }
    // Distances grow sub-polynomially: ratio below √ratio of sizes.
    let dist_growth = avg_dists[2] / avg_dists[0];
    assert!(dist_growth < 3.0, "distances grew too fast: {avg_dists:?}");
    // Search grows at least ~√(16) / slack.
    let cost_growth = search_costs[2] / search_costs[0];
    assert!(
        cost_growth > 2.0,
        "search cost barely grew: {search_costs:?}"
    );
}

#[test]
fn adamic_ordering_on_power_law_overlays() {
    // High-degree search beats the random walk, and the theoretical
    // exponents predict that ordering.
    let k = 2.5;
    assert!(adamic_high_degree_exponent(k) < adamic_random_walk_exponent(k));
    let model = PowerLawGiantModel {
        exponent: k,
        d_min: 1,
    };
    let seeds = SeedSequence::new(77);
    let trials = 12;
    let mut walk_total = 0usize;
    let mut greedy_total = 0usize;
    for t in 0..trials {
        let mut rng = seeds.child_rng(t);
        let overlay = model.sample_graph(6_000, &mut rng);
        let peers = overlay.node_count();
        let s = NodeId::new(rng.gen_range(0..peers));
        let target = NodeId::new(rng.gen_range(0..peers));
        let task = SearchTask::new(s, target).with_budget(60 * peers);
        let mut walk = SearcherKind::RandomWalk.build();
        let mut greedy = SearcherKind::HighDegree.build();
        walk_total += run_weak(&overlay, &task, &mut *walk, &mut rng)
            .unwrap()
            .requests;
        greedy_total += run_weak(&overlay, &task, &mut *greedy, &mut rng)
            .unwrap()
            .requests;
    }
    assert!(
        greedy_total < walk_total,
        "greedy {greedy_total} should beat walk {walk_total}"
    );
}

#[test]
fn kleinberg_critical_exponent_beats_local_links_and_the_lattice() {
    // The r = 0 separation is asymptotic (visible in the E11 sweep);
    // at moderate sizes the robust orderings are r = 2 ≪ r = 3.5 and
    // r = 2 ≪ bare lattice distance.
    let seeds = SeedSequence::new(31);
    let side = 40;
    let n = side * side;
    let mean_steps = |r: f64| -> f64 {
        let mut rng = seeds.child_rng((r * 100.0) as u64);
        let grid = KleinbergGrid::sample(side, r, 1, &mut rng).unwrap();
        let total: usize = (0..120)
            .map(|_| {
                let s = NodeId::new(rng.gen_range(0..n));
                let t = NodeId::new(rng.gen_range(0..n));
                greedy_route(&grid, s, t, 100 * n).steps
            })
            .sum();
        total as f64 / 120.0
    };
    let at_critical = mean_steps(2.0);
    let too_local = mean_steps(3.5);
    assert!(
        at_critical < too_local,
        "r=2 routing ({at_critical}) should beat r=3.5 ({too_local})"
    );
    // Mean Manhattan distance on the grid is ~2·side/3 ≈ 27.
    assert!(
        at_critical < 2.0 * side as f64 / 3.0,
        "r=2 routing ({at_critical}) should beat the bare lattice"
    );
}

#[test]
fn cooper_frieze_degree_tail_and_connectivity() {
    let config = CooperFriezeConfig::balanced(0.6).unwrap();
    let mut rng = rng_from_seed(4);
    let cf = CooperFrieze::sample(20_000, &config, &mut rng).unwrap();
    let graph = cf.undirected();
    assert!(is_connected(&graph));
    let dist = DegreeDistribution::of(&graph);
    // Heavy tail: the maximum degree dwarfs the mean.
    assert!(dist.max_degree() as f64 > 10.0 * dist.mean());
}

#[test]
fn search_cost_scaling_fits_a_power_law() {
    // The log-log pipeline end to end: sizes → costs → exponent.
    let sizes = [256usize, 512, 1024, 2048, 4096];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let mut total = 0usize;
        let trials = 6;
        for t in 0..trials {
            let mut rng = rng_from_seed((i * 100 + t) as u64);
            let tree = MoriTree::sample(n, 0.5, &mut rng).unwrap();
            let graph = tree.undirected();
            let task =
                SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(100 * n);
            let mut s = SearcherKind::HighDegree.build();
            total += run_weak(&graph, &task, &mut *s, &mut rng).unwrap().requests;
        }
        xs.push(n as f64);
        ys.push(total as f64 / 6.0);
    }
    let fit = fit_log_log(&xs, &ys).unwrap();
    assert!(
        fit.slope > 0.4 && fit.slope < 1.3,
        "high-degree scaling exponent {fit}"
    );
    assert!(fit.r_squared > 0.85, "poor fit: {fit}");
}
