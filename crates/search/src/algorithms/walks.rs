//! Random-walk searchers.

use crate::{DiscoveredView, SearchTask, WeakSearcher};
use nonsearch_graph::{EdgeId, NodeId};
use rand::{Rng, RngCore};

/// The pure random walk: from the current vertex, traverse a uniformly
/// random incident edge (possibly one already explored).
///
/// This is the weaker baseline of Adamic et al., with expected cost
/// `O(n^{3(1−2/k)})` on power-law graphs with exponent `k ∈ (2, 3)`.
#[derive(Debug, Clone, Default)]
pub struct RandomWalk {
    current: Option<NodeId>,
}

impl RandomWalk {
    /// Creates a walk (positioned at the task start on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeakSearcher for RandomWalk {
    fn name(&self) -> &'static str {
        "random-walk"
    }

    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        let current = *self.current.get_or_insert(task.start);
        let info = view.vertex(current)?;
        if info.degree() == 0 {
            return None; // isolated vertex: nowhere to go
        }
        let slot = rng.gen_range(0..info.degree());
        Some((current, info.incident()[slot]))
    }

    fn observe(&mut self, _request: (NodeId, EdgeId), revealed: NodeId) {
        self.current = Some(revealed);
    }

    fn reset(&mut self) {
        self.current = None;
    }
}

/// A random walk that prefers unexplored incident edges, falling back to
/// a uniform step when every edge at the current vertex is resolved.
///
/// A cheap "self-avoiding-ish" improvement that spends fewer requests on
/// re-traversals while keeping the walk's local character. The fresh
/// edge is taken in slot order (amortized O(1) via cursors); the
/// fallback step is uniform.
#[derive(Debug, Clone, Default)]
pub struct AvoidingWalk {
    current: Option<NodeId>,
    edges: crate::FrontierCursors,
}

impl AvoidingWalk {
    /// Creates a walk (positioned at the task start on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeakSearcher for AvoidingWalk {
    fn name(&self) -> &'static str {
        "avoiding-walk"
    }

    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        let current = *self.current.get_or_insert(task.start);
        let info = view.vertex(current)?;
        if info.degree() == 0 {
            return None;
        }
        let edge = match self.edges.next_unexplored(view, current) {
            Some(e) => e,
            None => info.incident()[rng.gen_range(0..info.degree())],
        };
        Some((current, edge))
    }

    fn observe(&mut self, _request: (NodeId, EdgeId), revealed: NodeId) {
        self.current = Some(revealed);
    }

    fn reset(&mut self) {
        self.current = None;
        self.edges.reset();
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.edges.reserve(nodes);
    }

    fn frontier_rescans(&self) -> u64 {
        self.edges.rescans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_weak, SearchTask};
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cycle(n: usize) -> UndirectedCsr {
        UndirectedCsr::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn random_walk_reaches_target_on_cycle() {
        let g = cycle(12);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(6));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let o = run_weak(&g, &task, &mut RandomWalk::new(), &mut rng).unwrap();
        assert!(o.found);
        assert!(o.requests >= 6, "cannot beat the distance");
    }

    #[test]
    fn avoiding_walk_no_slower_than_exhaustive_on_path() {
        let g = UndirectedCsr::from_edges(6, (1..6).map(|i| (i - 1, i))).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(5));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let o = run_weak(&g, &task, &mut AvoidingWalk::new(), &mut rng).unwrap();
        assert!(o.found);
        // On a path, preferring fresh edges can only walk forward.
        assert_eq!(o.requests, 5);
    }

    #[test]
    fn walks_give_up_on_isolated_start() {
        let g = UndirectedCsr::from_edges(2, []).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(1));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let o = run_weak(&g, &task, &mut RandomWalk::new(), &mut rng).unwrap();
        assert!(o.gave_up);
        let o = run_weak(&g, &task, &mut AvoidingWalk::new(), &mut rng).unwrap();
        assert!(o.gave_up);
    }

    #[test]
    fn reset_reuses_cleanly() {
        let g = cycle(8);
        let mut walker = RandomWalk::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for target in [2, 5, 7] {
            let task = SearchTask::new(NodeId::new(0), NodeId::new(target));
            let o = run_weak(&g, &task, &mut walker, &mut rng).unwrap();
            assert!(o.found);
        }
    }

    #[test]
    fn walk_handles_self_loops() {
        let g = UndirectedCsr::from_edges(2, [(0, 0), (0, 1)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(1));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let o = run_weak(&g, &task, &mut RandomWalk::new(), &mut rng).unwrap();
        assert!(o.found);
    }
}
