//! E2 — Theorem 1, strong model: for `p < 1/2`, strong-model search
//! needs `Ω(n^{1/2−p−ε})` requests.
//!
//! Thin wrapper over the registered `xp theorem1-strong` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("theorem1-strong");
}
