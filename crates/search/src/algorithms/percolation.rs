//! Sarshar–Boykin–Roychowdhury percolation search.
//!
//! The related-work protocol for power-law P2P networks: contents are
//! replicated along a short random walk from their owner, queries are
//! implanted along a random walk from the requester, and the query is
//! then spread by *bond percolation* (each edge forwards independently
//! with probability `q`). On power-law graphs, percolation above the
//! (very low) threshold reaches the high-degree core, so walk-replicated
//! content is found with sublinear message cost.

use crate::{Result, SearchError};
use nonsearch_graph::{NodeId, UndirectedCsr};
use rand::{Rng, RngCore};
use std::collections::{HashSet, VecDeque};

/// Parameters of a percolation search run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercolationConfig {
    /// Length of the content-replication random walk from the owner.
    pub replication_walk: usize,
    /// Length of the query-implantation random walk from the requester.
    pub query_walk: usize,
    /// Bond-percolation forwarding probability `q ∈ [0, 1]`.
    pub edge_probability: f64,
}

impl PercolationConfig {
    // Internal parameter check used by `percolation_search`.
    fn check(&self) -> bool {
        self.edge_probability.is_finite() && (0.0..=1.0).contains(&self.edge_probability)
    }
}

/// Result of one percolation search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PercolationOutcome {
    /// `true` if the percolating query reached a replica.
    pub found: bool,
    /// Total messages: walk steps plus activated edge transmissions.
    pub messages: usize,
    /// Number of distinct vertices holding a replica.
    pub replicas: usize,
    /// Number of distinct vertices the query reached.
    pub reached: usize,
}

/// Runs one percolation search of content owned by `owner` from
/// `requester`.
///
/// # Errors
///
/// Returns [`SearchError::TaskOutOfBounds`] if either vertex is outside
/// the graph and [`SearchError::InvalidParameter`] if
/// `edge_probability ∉ [0, 1]`.
pub fn percolation_search(
    graph: &UndirectedCsr,
    owner: NodeId,
    requester: NodeId,
    config: &PercolationConfig,
    rng: &mut dyn RngCore,
) -> Result<PercolationOutcome> {
    for v in [owner, requester] {
        if v.index() >= graph.node_count() {
            return Err(SearchError::TaskOutOfBounds {
                vertex: v,
                node_count: graph.node_count(),
            });
        }
    }
    if !config.check() {
        return Err(SearchError::InvalidParameter {
            name: "edge_probability",
            value: config.edge_probability.to_string(),
        });
    }
    let mut messages = 0usize;

    // Phase 1: replicate content along a random walk from the owner.
    let replicas = random_walk_set(graph, owner, config.replication_walk, rng, &mut messages);
    let replica_set: HashSet<NodeId> = replicas.iter().copied().collect();

    // Phase 2: implant the query along a random walk from the requester.
    let implanted = random_walk_set(graph, requester, config.query_walk, rng, &mut messages);

    // Phase 3: bond-percolation broadcast from every implanted vertex.
    // First-visit order keeps the RNG consumption deterministic.
    let mut reached: HashSet<NodeId> = implanted.iter().copied().collect();
    let mut queue: VecDeque<NodeId> = implanted.iter().copied().collect();
    while let Some(v) = queue.pop_front() {
        for (w, _) in graph.incident_edges(v) {
            if rng.gen::<f64>() < config.edge_probability {
                messages += 1;
                if reached.insert(w) {
                    queue.push_back(w);
                }
            }
        }
    }

    let found = reached.iter().any(|v| replica_set.contains(v));
    Ok(PercolationOutcome {
        found,
        messages,
        replicas: replica_set.len(),
        reached: reached.len(),
    })
}

/// Walks `steps` uniform random hops from `start`, returning the visited
/// vertices in first-visit order (including `start`) and charging one
/// message per hop.
fn random_walk_set(
    graph: &UndirectedCsr,
    start: NodeId,
    steps: usize,
    rng: &mut dyn RngCore,
    messages: &mut usize,
) -> Vec<NodeId> {
    let mut seen = HashSet::new();
    let mut order = Vec::new();
    seen.insert(start);
    order.push(start);
    let mut current = start;
    for _ in 0..steps {
        let degree = graph.degree(current);
        if degree == 0 {
            break;
        }
        let (next, _) = graph.incident(current)[rng.gen_range(0..degree)];
        *messages += 1;
        if seen.insert(next) {
            order.push(next);
        }
        current = next;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn complete(n: usize) -> UndirectedCsr {
        let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v)));
        UndirectedCsr::from_edges(n, edges).unwrap()
    }

    #[test]
    fn full_percolation_always_finds() {
        let g = complete(10);
        let cfg = PercolationConfig {
            replication_walk: 0,
            query_walk: 0,
            edge_probability: 1.0,
        };
        let o = percolation_search(&g, NodeId::new(3), NodeId::new(7), &cfg, &mut rng()).unwrap();
        assert!(o.found);
        assert_eq!(o.reached, 10);
    }

    #[test]
    fn zero_percolation_fails_unless_colocated() {
        let g = complete(10);
        let cfg = PercolationConfig {
            replication_walk: 0,
            query_walk: 0,
            edge_probability: 0.0,
        };
        let o = percolation_search(&g, NodeId::new(3), NodeId::new(7), &cfg, &mut rng()).unwrap();
        assert!(!o.found);
        assert_eq!(o.messages, 0);
        // Same vertex: the implanted query already sits on the replica.
        let o = percolation_search(&g, NodeId::new(3), NodeId::new(3), &cfg, &mut rng()).unwrap();
        assert!(o.found);
    }

    #[test]
    fn replication_improves_success() {
        // Sub-critical percolation on K20: the query cluster is small, so
        // success hinges on how many vertices hold replicas.
        let g = complete(20);
        let mut r = rng();
        let run = |walk: usize, r: &mut ChaCha8Rng| {
            let cfg = PercolationConfig {
                replication_walk: walk,
                query_walk: 0,
                edge_probability: 0.04,
            };
            (0..300)
                .filter(|_| {
                    percolation_search(&g, NodeId::new(0), NodeId::new(10), &cfg, r)
                        .unwrap()
                        .found
                })
                .count()
        };
        let without = run(0, &mut r);
        let with = run(40, &mut r);
        assert!(
            with > without,
            "with replication {with} vs without {without}"
        );
    }

    #[test]
    fn message_count_reflects_activity() {
        let g = complete(8);
        let cfg = PercolationConfig {
            replication_walk: 5,
            query_walk: 5,
            edge_probability: 1.0,
        };
        let o = percolation_search(&g, NodeId::new(0), NodeId::new(1), &cfg, &mut rng()).unwrap();
        // 10 walk messages plus one per activated edge endpoint scan.
        assert!(o.messages >= 10);
    }

    #[test]
    fn validation() {
        let g = complete(4);
        let bad = PercolationConfig {
            replication_walk: 0,
            query_walk: 0,
            edge_probability: 1.5,
        };
        assert!(percolation_search(&g, NodeId::new(0), NodeId::new(1), &bad, &mut rng()).is_err());
        let cfg = PercolationConfig {
            replication_walk: 0,
            query_walk: 0,
            edge_probability: 0.5,
        };
        assert!(percolation_search(&g, NodeId::new(9), NodeId::new(1), &cfg, &mut rng()).is_err());
    }
}
