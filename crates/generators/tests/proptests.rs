//! Property-based tests: generator invariants under arbitrary parameters.

use nonsearch_generators::{
    degree_preserving_rewire, power_law_degree_sequence, rng_from_seed, BarabasiAlbert,
    ConfigModel, CooperFrieze, CooperFriezeConfig, ErdosRenyi, KleinbergGrid, MergedMori, MoriTree,
    PowerLawConfig, SimplificationPolicy, UniformAttachment, WattsStrogatz,
};
use nonsearch_graph::{degree_sequence, is_connected, GraphProperties, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mori_tree_is_always_a_tree(
        n in 2usize..200,
        p in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let tree = MoriTree::sample(n, p, &mut rng_from_seed(seed)).unwrap();
        let und = tree.undirected();
        prop_assert!(und.is_tree());
        // Fathers strictly older, trace covers everyone.
        for k in 2..=n {
            let father = tree.father_of_label(k).unwrap();
            prop_assert!(father.label() < k);
        }
        prop_assert_eq!(tree.trace().len(), n - 1);
    }

    #[test]
    fn merged_mori_shape(
        n in 2usize..60,
        m in 1usize..5,
        p in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let merged = MergedMori::sample(n, m, p, &mut rng_from_seed(seed)).unwrap();
        let g = merged.digraph();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n * m - 1);
        prop_assert!(is_connected(&merged.undirected()));
        // Every non-root block sends exactly m edges.
        for i in 2..=n {
            prop_assert_eq!(g.out_degree(NodeId::from_label(i)), m);
        }
    }

    #[test]
    fn cooper_frieze_always_connected_with_exact_size(
        n in 2usize..150,
        alpha in 0.05f64..=1.0,
        beta in 0.0f64..=1.0,
        gamma in 0.0f64..=1.0,
        delta in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let one = nonsearch_generators::DiscreteDistribution::constant(1).unwrap();
        let cfg = CooperFriezeConfig::new(alpha, beta, gamma, delta, one.clone(), one)
            .unwrap();
        let cf = CooperFrieze::sample(n, &cfg, &mut rng_from_seed(seed)).unwrap();
        prop_assert_eq!(cf.digraph().node_count(), n);
        prop_assert!(is_connected(&cf.undirected()));
        prop_assert_eq!(cf.new_step_count(), n - 2);
        prop_assert_eq!(cf.trace().len(), cf.digraph().edge_count());
    }

    #[test]
    fn barabasi_albert_min_degree_and_simplicity(
        n in 6usize..120,
        m in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(n >= m + 2);
        let ba = BarabasiAlbert::sample(n, m, &mut rng_from_seed(seed)).unwrap();
        let und = ba.undirected();
        prop_assert!(is_connected(&und));
        prop_assert_eq!(und.self_loop_count(), 0);
        let min_degree = und.nodes().map(|v| und.degree(v)).min().unwrap();
        prop_assert!(min_degree >= 1);
    }

    #[test]
    fn uniform_attachment_is_simple_and_connected(
        n in 2usize..150,
        m in 1usize..4,
        seed in 0u64..1000,
    ) {
        let ua = UniformAttachment::sample(n, m, &mut rng_from_seed(seed)).unwrap();
        let und = ua.undirected();
        prop_assert!(is_connected(&und));
        prop_assert_eq!(und.self_loop_count(), 0);
        prop_assert_eq!(und.parallel_edge_count(), 0);
    }

    #[test]
    fn power_law_sequence_in_bounds_and_even(
        n in 1usize..500,
        exp_centi in 150u32..350,
        d_min in 1usize..4,
        seed in 0u64..1000,
    ) {
        let exponent = exp_centi as f64 / 100.0;
        let cfg = PowerLawConfig::new(exponent, d_min).unwrap();
        let result = power_law_degree_sequence(n, &cfg, &mut rng_from_seed(seed));
        if let Ok(seq) = result {
            prop_assert_eq!(seq.len(), n);
            prop_assert_eq!(seq.iter().sum::<usize>() % 2, 0);
            let cutoff = cfg.cutoff_for(n);
            prop_assert!(seq.iter().all(|&d| d >= d_min && d <= cutoff));
        }
        // Err is allowed only in the unfixable constant-degree case.
    }

    #[test]
    fn config_model_multigraph_preserves_degrees(
        degrees in proptest::collection::vec(0usize..8, 2..40),
        seed in 0u64..1000,
    ) {
        prop_assume!(degrees.iter().sum::<usize>() % 2 == 0);
        let cm = ConfigModel::sample(
            &degrees,
            SimplificationPolicy::Multigraph,
            &mut rng_from_seed(seed),
        )
        .unwrap();
        for (i, &d) in degrees.iter().enumerate() {
            prop_assert_eq!(cm.graph().degree(NodeId::new(i)), d);
        }
    }

    #[test]
    fn kleinberg_edge_count_formula(
        side in 2usize..16,
        r_centi in 0u32..400,
        q in 0usize..3,
        seed in 0u64..1000,
    ) {
        let r = r_centi as f64 / 100.0;
        let grid = KleinbergGrid::sample(side, r, q, &mut rng_from_seed(seed)).unwrap();
        let n = side * side;
        prop_assert_eq!(grid.graph().node_count(), n);
        prop_assert_eq!(grid.graph().edge_count(), 2 * side * (side - 1) + q * n);
        prop_assert_eq!(grid.graph().self_loop_count(), 0);
    }

    #[test]
    fn erdos_renyi_gnm_is_exact_and_simple(
        n in 2usize..40,
        seed in 0u64..1000,
        frac in 0.0f64..1.0,
    ) {
        let max_m = n * (n - 1) / 2;
        let m = (frac * max_m as f64) as usize;
        let g = ErdosRenyi::gnm(n, m, &mut rng_from_seed(seed)).unwrap();
        prop_assert_eq!(g.edge_count(), m);
        prop_assert_eq!(g.self_loop_count(), 0);
        prop_assert_eq!(g.parallel_edge_count(), 0);
    }

    #[test]
    fn edge_swap_preserves_degree_sequence_and_simplicity(
        n in 8usize..120,
        m in 1usize..4,
        swaps_per_edge in 1usize..12,
        seed in 0u64..1000,
    ) {
        prop_assume!(n >= m + 2);
        // Barabási–Albert samples are simple, so they are valid chain
        // starting states for any parameter draw.
        let g = BarabasiAlbert::sample(n, m, &mut rng_from_seed(seed))
            .unwrap()
            .undirected();
        let (null, stats) =
            degree_preserving_rewire(&g, swaps_per_edge, &mut rng_from_seed(seed ^ 0xDEAD))
                .unwrap();
        // The exact per-vertex degree sequence is invariant…
        prop_assert_eq!(degree_sequence(&null), degree_sequence(&g));
        prop_assert_eq!(null.node_count(), g.node_count());
        prop_assert_eq!(null.edge_count(), g.edge_count());
        // …and the chain never leaves the simple-graph state space.
        prop_assert_eq!(null.self_loop_count(), 0);
        prop_assert_eq!(null.parallel_edge_count(), 0);
        prop_assert!(stats.applied <= stats.attempted);
    }

    #[test]
    fn watts_strogatz_degree_sum_invariant(
        n in 6usize..60,
        half_k in 1usize..3,
        beta in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let k = 2 * half_k;
        prop_assume!(k < n);
        let g = WattsStrogatz::sample(n, k, beta, &mut rng_from_seed(seed)).unwrap();
        prop_assert_eq!(g.edge_count(), n * k / 2);
        prop_assert_eq!(g.self_loop_count(), 0);
        prop_assert_eq!(g.parallel_edge_count(), 0);
    }
}
