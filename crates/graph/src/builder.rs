//! Incremental builder for static undirected graphs.

use crate::{Result, UndirectedCsr};

/// Builder for [`UndirectedCsr`] graphs.
///
/// Useful when the number of vertices is known up front but edges arrive
/// incrementally (e.g. from a workload generator or a parsed file).
///
/// # Example
///
/// ```
/// use nonsearch_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1).edge(1, 2);
/// let g = b.build()?;
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), nonsearch_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `nodes` vertices.
    pub fn new(nodes: usize) -> Self {
        GraphBuilder {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Reserves capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) -> &mut Self {
        self.edges.reserve(additional);
        self
    }

    /// Adds an undirected edge between zero-based vertices `u` and `v`.
    ///
    /// Endpoint validity is checked at [`build`](Self::build) time so that
    /// edge insertion stays infallible and chainable.
    pub fn edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge from an iterator of zero-based pairs.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) -> &mut Self {
        self.edges.extend(iter);
        self
    }

    /// Number of edges queued so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Grows the vertex set to at least `nodes` vertices.
    pub fn grow_to(&mut self, nodes: usize) -> &mut Self {
        self.nodes = self.nodes.max(nodes);
        self
    }

    /// Finalizes the CSR graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`](crate::GraphError) if any
    /// queued edge references a vertex `≥ nodes`.
    pub fn build(&self) -> Result<UndirectedCsr> {
        UndirectedCsr::from_edges(self.nodes, self.edges.iter().copied())
    }
}

impl Extend<(usize, usize)> for GraphBuilder {
    fn extend<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }
}

impl FromIterator<(usize, usize)> for GraphBuilder {
    /// Collects edges, sizing the vertex set to the largest endpoint + 1.
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        let edges: Vec<(usize, usize)> = iter.into_iter().collect();
        let nodes = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
        GraphBuilder { nodes, edges }
    }
}

/// Convenience: builds the path graph `0 − 1 − … − (n−1)`.
pub fn path_graph(n: usize) -> UndirectedCsr {
    UndirectedCsr::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("path endpoints are in range")
}

/// Convenience: builds the cycle graph on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle_graph(n: usize) -> UndirectedCsr {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    UndirectedCsr::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
        .expect("cycle endpoints are in range")
}

/// Convenience: builds the star graph with center `0` and `n − 1` leaves.
pub fn star_graph(n: usize) -> UndirectedCsr {
    UndirectedCsr::from_edges(n, (1..n).map(|i| (0, i))).expect("star endpoints are in range")
}

/// Convenience: builds the complete graph on `n` vertices.
pub fn complete_graph(n: usize) -> UndirectedCsr {
    let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v)));
    UndirectedCsr::from_edges(n, edges).expect("complete-graph endpoints are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_connected, GraphProperties};

    #[test]
    fn builder_chains() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(1, 2).edge(2, 3);
        assert_eq!(b.edge_count(), 3);
        let g = b.build().unwrap();
        assert!(g.is_tree());
    }

    #[test]
    fn builder_validates_on_build() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 9);
        assert!(b.build().is_err());
    }

    #[test]
    fn from_iterator_sizes_vertex_set() {
        let b: GraphBuilder = [(0usize, 3usize), (1, 2)].into_iter().collect();
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn extend_appends() {
        let mut b = GraphBuilder::new(3);
        b.extend([(0, 1), (1, 2)]);
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    fn grow_to_never_shrinks() {
        let mut b = GraphBuilder::new(5);
        b.grow_to(2);
        assert_eq!(b.build().unwrap().node_count(), 5);
        b.grow_to(8);
        assert_eq!(b.build().unwrap().node_count(), 8);
    }

    #[test]
    fn canned_graphs() {
        assert!(path_graph(6).is_tree());
        assert!(star_graph(6).is_tree());
        let c = cycle_graph(5);
        assert_eq!(c.edge_count(), 5);
        assert!(is_connected(&c));
        let k4 = complete_graph(4);
        assert_eq!(k4.edge_count(), 6);
        assert!((k4.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = cycle_graph(2);
    }
}
