//! The equivalence events of Lemma 2 and their Monte-Carlo estimation.

use crate::theory::{check_probability, CoreError};
use crate::window::EquivalenceWindow;
use nonsearch_generators::{AttachmentTrace, CooperFrieze, MoriTree, SeedSequence};
use std::fmt;

/// `true` if the Móri-tree event `E_{a,b} = ∩_{a<k≤b} {N_k ≤ a}` holds on
/// the given construction trace (Lemma 2).
///
/// # Panics
///
/// Panics if the trace does not cover the window (tree smaller than `b`).
pub fn mori_window_event_holds(trace: &AttachmentTrace, window: &EquivalenceWindow) -> bool {
    for k in (window.a() + 1)..=window.b() {
        let father = trace
            .father_of_label(k)
            .unwrap_or_else(|| panic!("trace does not cover window vertex {k}"));
        if father.label() > window.a() {
            return false;
        }
    }
    true
}

/// The Cooper–Frieze analogue of the window event, for configurations
/// with one edge per step (`q = p = δ_1`):
///
/// 1. every edge sourced at a window vertex targets a vertex `≤ a`,
/// 2. no edge targets a window vertex, and
/// 3. no window vertex sources more than its single arrival edge
///    (i.e. no Old step chose a window vertex as its initial vertex).
///
/// Together these make the window vertices interchangeable: each is a
/// fresh leaf whose only connection points into the old core.
pub fn cooper_frieze_window_event_holds(cf: &CooperFrieze, window: &EquivalenceWindow) -> bool {
    let trace = cf.trace();
    let mut out_count = vec![0usize; window.len()];
    for rec in trace.iter() {
        let child = rec.child.label();
        let father = rec.father.label();
        if window.contains_label(father) {
            return false; // (2)
        }
        if window.contains_label(child) {
            if father > window.a() {
                return false; // (1)
            }
            out_count[child - window.a() - 1] += 1;
        }
    }
    out_count.iter().all(|&c| c <= 1) // (3)
}

/// A Monte-Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventEstimate {
    /// Fraction of trials on which the event held.
    pub estimate: f64,
    /// Binomial standard error `√(p̂(1−p̂)/trials)`.
    pub std_error: f64,
    /// Number of trials.
    pub trials: usize,
    /// Number of successes.
    pub successes: usize,
}

impl fmt::Display for EventEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({}/{} trials)",
            self.estimate, self.std_error, self.successes, self.trials
        )
    }
}

/// Estimates `P(E_{a,b})` for the Móri tree by direct simulation:
/// `trials` independent trees of size `b` are sampled and the event is
/// checked on each trace.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `p ∉ [0, 1]` or
/// `trials == 0`.
pub fn estimate_mori_event_probability(
    window: &EquivalenceWindow,
    p: f64,
    trials: usize,
    seed: u64,
) -> crate::Result<EventEstimate> {
    check_probability("p", p)?;
    if trials == 0 {
        return Err(CoreError::invalid("trials", 0usize, "a positive count"));
    }
    let seeds = SeedSequence::new(seed);
    let tree_size = window.minimum_tree_size();
    let mut successes = 0usize;
    for t in 0..trials {
        let mut rng = seeds.child_rng(t as u64);
        let tree =
            MoriTree::sample(tree_size, p, &mut rng).expect("window sizes are valid tree sizes");
        if mori_window_event_holds(tree.trace(), window) {
            successes += 1;
        }
    }
    let estimate = successes as f64 / trials as f64;
    let std_error = (estimate * (1.0 - estimate) / trials as f64).sqrt();
    Ok(EventEstimate {
        estimate,
        std_error,
        trials,
        successes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::mori_event_probability_exact;
    use nonsearch_generators::{rng_from_seed, CooperFriezeConfig};

    #[test]
    fn event_checker_agrees_with_definition() {
        let mut rng = rng_from_seed(1);
        let window = EquivalenceWindow::with_bounds(5, 8);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..200 {
            let tree = MoriTree::sample(8, 0.3, &mut rng).unwrap();
            let holds = mori_window_event_holds(tree.trace(), &window);
            let manual = (6..=8).all(|k| tree.father_of_label(k).unwrap().label() <= 5);
            assert_eq!(holds, manual);
            seen_true |= holds;
            seen_false |= !holds;
        }
        assert!(seen_true && seen_false, "both outcomes should occur");
    }

    #[test]
    fn monte_carlo_matches_exact_product() {
        let window = EquivalenceWindow::with_bounds(20, 24);
        for &p in &[0.2, 0.7] {
            let exact = mori_event_probability_exact(20, 24, p).unwrap();
            let est = estimate_mori_event_probability(&window, p, 3000, 42).unwrap();
            assert!(
                (est.estimate - exact).abs() < 4.0 * est.std_error + 0.01,
                "p = {p}: estimated {} vs exact {exact}",
                est.estimate
            );
        }
    }

    #[test]
    fn p_one_event_always_holds() {
        let window = EquivalenceWindow::from_anchor(30);
        let est = estimate_mori_event_probability(&window, 1.0, 200, 7).unwrap();
        assert_eq!(est.successes, 200);
    }

    #[test]
    fn estimate_display() {
        let window = EquivalenceWindow::with_bounds(10, 12);
        let est = estimate_mori_event_probability(&window, 0.5, 100, 3).unwrap();
        assert!(est.to_string().contains("trials"));
    }

    #[test]
    fn validation() {
        let window = EquivalenceWindow::with_bounds(10, 12);
        assert!(estimate_mori_event_probability(&window, 1.5, 10, 0).is_err());
        assert!(estimate_mori_event_probability(&window, 0.5, 0, 0).is_err());
    }

    #[test]
    fn cooper_frieze_event_detects_violations() {
        let cfg = CooperFriezeConfig::balanced(0.7).unwrap();
        let mut rng = rng_from_seed(9);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..300 {
            let cf = CooperFrieze::sample(30, &cfg, &mut rng).unwrap();
            let window = EquivalenceWindow::with_bounds(26, 30);
            let holds = cooper_frieze_window_event_holds(&cf, &window);
            // Manual re-check from the trace.
            let trace = cf.trace();
            let manual = trace.iter().all(|r| {
                let (c, f) = (r.child.label(), r.father.label());
                !(27..=30).contains(&f) && (!(27..=30).contains(&c) || f <= 26)
            }) && (27..=30).all(|w| trace.fathers_of_label(w).len() <= 1);
            assert_eq!(holds, manual);
            seen_true |= holds;
            seen_false |= !holds;
        }
        assert!(seen_true && seen_false, "both outcomes should occur");
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn undersized_trace_panics() {
        let mut rng = rng_from_seed(2);
        let tree = MoriTree::sample(5, 0.5, &mut rng).unwrap();
        let window = EquivalenceWindow::with_bounds(6, 9);
        let _ = mori_window_event_holds(tree.trace(), &window);
    }
}
