//! The Barabási–Albert preferential-attachment model.
//!
//! The classic evolving scale-free model \[BA99\]: each new vertex sends
//! `m` edges to existing vertices chosen proportionally to **total
//! degree**. Included as the baseline the paper's conclusion discusses
//! (its max degree grows like `t^{1/2}`, too large for the strong-model
//! bound to bite).

use crate::{
    AttachmentKind, AttachmentRecord, AttachmentTrace, GeneratorError, Result, UrnSampler,
};
use nonsearch_graph::{EvolvingDigraph, NodeId, UndirectedCsr};
use rand::Rng;

/// A sampled Barabási–Albert graph with construction provenance.
///
/// The seed is a star on `m + 1` vertices (vertices `2..=m+1` each point
/// at vertex 1), after which every arriving vertex draws `m` distinct
/// targets proportionally to total degree. Self-loops never occur;
/// duplicate targets are redrawn.
///
/// # Example
///
/// ```
/// use nonsearch_generators::{rng_from_seed, BarabasiAlbert};
///
/// let mut rng = rng_from_seed(1);
/// let ba = BarabasiAlbert::sample(100, 2, &mut rng)?;
/// assert_eq!(ba.digraph().node_count(), 100);
/// // Seed star has m = 2 edges; each of the 97 later vertices adds 2.
/// assert_eq!(ba.digraph().edge_count(), 2 + 97 * 2);
/// # Ok::<(), nonsearch_generators::GeneratorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BarabasiAlbert {
    digraph: EvolvingDigraph,
    trace: AttachmentTrace,
    m: usize,
}

impl BarabasiAlbert {
    /// Samples a BA graph on `n` vertices with `m ≥ 1` edges per arrival.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `m == 0` and
    /// [`GeneratorError::TooSmall`] if `n < m + 2`.
    pub fn sample<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<BarabasiAlbert> {
        if m == 0 {
            return Err(GeneratorError::invalid("m", 0usize, "a positive integer"));
        }
        if n < m + 2 {
            return Err(GeneratorError::TooSmall {
                requested: n,
                minimum: m + 2,
            });
        }
        let mut digraph = EvolvingDigraph::with_capacity(n, m * n);
        let mut trace = AttachmentTrace::with_capacity(m * n);
        // Urn holds one ticket per edge endpoint → sampling ∝ total degree.
        let mut urn = UrnSampler::with_capacity(2 * m * n);

        let hub = digraph.add_node();
        for _ in 0..m {
            let leaf = digraph.add_node();
            digraph.add_edge(leaf, hub).expect("seed endpoints exist");
            trace.push(AttachmentRecord {
                child: leaf,
                father: hub,
                kind: AttachmentKind::Seed,
            });
            urn.push(leaf);
            urn.push(hub);
        }

        let mut targets: Vec<NodeId> = Vec::with_capacity(m);
        for _ in (m + 1)..n {
            let child = digraph.add_node();
            targets.clear();
            // Draw m distinct targets ∝ degree; duplicates are redrawn,
            // which conditions the law on distinctness (the standard
            // "BA without multi-edges" variant).
            while targets.len() < m {
                let candidate = urn.sample(rng).expect("urn non-empty after seed");
                if !targets.contains(&candidate) {
                    targets.push(candidate);
                }
            }
            for &father in &targets {
                digraph.add_edge(child, father).expect("endpoints exist");
                trace.push(AttachmentRecord {
                    child,
                    father,
                    kind: AttachmentKind::Preferential,
                });
                urn.push(child);
                urn.push(father);
            }
        }

        Ok(BarabasiAlbert { digraph, trace, m })
    }

    /// Edges added per arriving vertex.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The evolving digraph (edges point newer → older).
    pub fn digraph(&self) -> &EvolvingDigraph {
        &self.digraph
    }

    /// The attachment history.
    pub fn trace(&self) -> &AttachmentTrace {
        &self.trace
    }

    /// Builds the unoriented view searching takes place in.
    pub fn undirected(&self) -> UndirectedCsr {
        UndirectedCsr::from_digraph(&self.digraph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use nonsearch_graph::{is_connected, GraphProperties};

    #[test]
    fn shape_invariants() {
        let mut rng = rng_from_seed(1);
        let ba = BarabasiAlbert::sample(200, 3, &mut rng).unwrap();
        let g = ba.digraph();
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.edge_count(), 3 + (200 - 4) * 3);
        let und = ba.undirected();
        assert!(is_connected(&und));
        assert_eq!(und.self_loop_count(), 0);
        // Distinct targets per arrival: no parallel edges from one child.
        assert_eq!(und.parallel_edge_count(), 0);
    }

    #[test]
    fn m1_gives_a_tree() {
        let mut rng = rng_from_seed(2);
        let ba = BarabasiAlbert::sample(150, 1, &mut rng).unwrap();
        assert!(ba.undirected().is_tree());
    }

    #[test]
    fn min_degree_is_m() {
        let mut rng = rng_from_seed(3);
        let ba = BarabasiAlbert::sample(120, 2, &mut rng).unwrap();
        let und = ba.undirected();
        let min = und.nodes().map(|v| und.degree(v)).min().unwrap();
        assert!(min >= 2);
    }

    #[test]
    fn rich_get_richer() {
        // The hub (vertex 1) should end up far above the median degree.
        // The hub degree of a single BA sample is heavy-tailed (it
        // converges in distribution, not in probability), so average a
        // few seeds rather than betting on one stream.
        let seeds = 0..8u64;
        let mut hub_total = 0usize;
        let mut median_max = 0usize;
        for seed in seeds.clone() {
            let ba = BarabasiAlbert::sample(2000, 1, &mut rng_from_seed(seed)).unwrap();
            let und = ba.undirected();
            hub_total += und.degree(NodeId::from_label(1));
            let mut degrees: Vec<usize> = und.nodes().map(|v| und.degree(v)).collect();
            degrees.sort_unstable();
            median_max = median_max.max(degrees[degrees.len() / 2]);
        }
        let hub_mean = hub_total / seeds.clone().count();
        assert!(
            hub_mean > 10 * median_max,
            "mean hub degree {hub_mean} vs max median {median_max}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = BarabasiAlbert::sample(90, 2, &mut rng_from_seed(5)).unwrap();
        let b = BarabasiAlbert::sample(90, 2, &mut rng_from_seed(5)).unwrap();
        assert_eq!(a.digraph(), b.digraph());
    }

    #[test]
    fn validation() {
        let mut rng = rng_from_seed(6);
        assert!(BarabasiAlbert::sample(10, 0, &mut rng).is_err());
        assert!(BarabasiAlbert::sample(3, 2, &mut rng).is_err());
        assert!(BarabasiAlbert::sample(4, 2, &mut rng).is_ok());
    }

    #[test]
    fn trace_has_one_record_per_edge() {
        let mut rng = rng_from_seed(7);
        let ba = BarabasiAlbert::sample(60, 2, &mut rng).unwrap();
        assert_eq!(ba.trace().len(), ba.digraph().edge_count());
    }
}
