//! Reusable per-worker search state: the dense view plus the oracle
//! buffers, reset in O(1) between trials.
//!
//! A Monte-Carlo sweep runs thousands of searches on graphs of one
//! size. Allocating a fresh view (and oracle buffers) per trial made
//! per-request hashing and allocation the hot path's dominant cost;
//! instead, a worker owns one [`SearchScratch`], the `*_in` runners
//! ([`run_weak_in`](crate::run_weak_in),
//! [`run_strong_in`](crate::run_strong_in)) borrow it for the duration
//! of one search, and `begin` resets it by epoch bump — no memory is
//! released or re-acquired once the arrays have grown to the graph
//! size.

use crate::stamped::StampedMap;
use crate::DiscoveredView;
use nonsearch_graph::{NodeId, UndirectedCsr};

/// Reusable buffers for one search at a time: the searcher's
/// [`DiscoveredView`] plus the strong oracle's expansion-order and
/// answer buffers.
///
/// Create one per worker (or per call site) and pass it to
/// [`WeakSearchState::new_in`](crate::WeakSearchState::new_in),
/// [`StrongSearchState::new_in`](crate::StrongSearchState::new_in), or
/// the `*_in` runners. Reuse across trials is observationally
/// identical to fresh state — the engine's trial records are
/// bit-identical either way (asserted by the scratch-reuse tests).
///
/// # Example
///
/// ```
/// use nonsearch_generators::rng_from_seed;
/// use nonsearch_graph::{NodeId, UndirectedCsr};
/// use nonsearch_search::{run_weak_in, BfsFlood, SearchScratch, SearchTask};
///
/// let g = UndirectedCsr::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let task = SearchTask::new(NodeId::new(0), NodeId::new(3));
/// let mut scratch = SearchScratch::new();
/// let mut flood = BfsFlood::new();
/// // Both trials share one allocation; outcomes match fresh-state runs.
/// let a = run_weak_in(&mut scratch, &g, &task, &mut flood, &mut rng_from_seed(1))?;
/// let b = run_weak_in(&mut scratch, &g, &task, &mut flood, &mut rng_from_seed(1))?;
/// assert_eq!(a, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    pub(crate) view: DiscoveredView,
    /// Vertices expanded by a strong-model search, in request order.
    pub(crate) expanded: Vec<NodeId>,
    /// The neighbors revealed by the latest strong request.
    pub(crate) revealed: Vec<NodeId>,
}

impl SearchScratch {
    /// Creates an empty scratch; the arrays grow to the first graph's
    /// size on first use and are reused from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for graphs with `nodes` vertices and
    /// `edges` edges — view tables, arena, and the strong oracle's
    /// buffers — so even the first search allocates nothing after
    /// construction (pair with the searcher-side
    /// [`reserve`](crate::WeakSearcher::reserve) hook).
    pub fn for_graph_size(nodes: usize, edges: usize) -> Self {
        let mut scratch = Self::new();
        scratch.view.reserve_graph(nodes, edges);
        // The strong oracle expands each vertex at most once per search
        // and reveals at most one neighbor per incidence slot.
        scratch.expanded.reserve(nodes);
        scratch.revealed.reserve(2 * edges);
        scratch
    }

    /// The view as left by the last search (empty before any).
    pub fn view(&self) -> &DiscoveredView {
        &self.view
    }

    /// O(1) reset called by the oracles at search start: epoch-bumps
    /// the view and truncates the buffers, keeping all capacity.
    pub(crate) fn begin(&mut self, graph: &UndirectedCsr) {
        self.view.reset();
        self.view
            .reserve_graph(graph.node_count(), graph.edge_count());
        self.expanded.clear();
        self.revealed.clear();
    }
}

/// A dense set of vertices with O(1) `insert`/`contains`/`clear`,
/// backed by an epoch-stamped [`StampedMap`] (see the `stamped` module
/// docs for the trick and its audited wrap path).
///
/// Replaces the `HashSet<NodeId>` bookkeeping in the strong-model
/// searchers and percolation search: membership is one array read, and
/// clearing for the next trial is an epoch bump, not a rehash.
#[derive(Debug, Clone, Default)]
pub struct StampedNodeSet {
    members: StampedMap<()>,
}

impl StampedNodeSet {
    /// Creates an empty set; the backing array grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set whose *next* [`clear`](StampedNodeSet::clear) takes the
    /// epoch-wrap path. Test-only hook: wrap coverage drives the public
    /// API instead of poking private fields.
    #[doc(hidden)]
    pub fn near_wrap() -> Self {
        StampedNodeSet {
            members: StampedMap::near_wrap(),
        }
    }

    /// Grows the backing array to cover `nodes` vertices, so inserts on
    /// a graph of that size never allocate — even on the first trial.
    pub fn reserve(&mut self, nodes: usize) {
        self.members.reserve(nodes);
    }

    /// Number of vertices in the set.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` if `v` is in the set.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.contains(v.index())
    }

    /// Inserts `v`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        self.members.insert(v.index(), ())
    }

    /// Empties the set in O(1) (epoch bump), keeping the allocation.
    pub fn clear(&mut self) {
        self.members.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::NodeId;

    #[test]
    fn stamped_set_behaves_like_a_set() {
        let mut set = StampedNodeSet::new();
        assert!(set.is_empty());
        assert!(set.insert(NodeId::new(5)));
        assert!(!set.insert(NodeId::new(5)));
        assert!(set.insert(NodeId::new(0)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(NodeId::new(5)));
        assert!(!set.contains(NodeId::new(4)));
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(NodeId::new(5)));
        assert!(set.insert(NodeId::new(5)));
    }

    #[test]
    fn stamped_set_epoch_wrap_is_sound() {
        // Built at the wrap boundary: the next clear zero-fills stamps.
        let mut set = StampedNodeSet::near_wrap();
        set.insert(NodeId::new(1));
        assert!(set.contains(NodeId::new(1)));
        set.clear();
        assert!(!set.contains(NodeId::new(1)));
        assert!(set.insert(NodeId::new(1)));
        // The restarted epoch keeps clearing cleanly.
        set.clear();
        assert!(!set.contains(NodeId::new(1)));
    }

    #[test]
    fn stamped_set_reserve_presizes() {
        let mut set = StampedNodeSet::new();
        set.reserve(8);
        assert!(set.is_empty());
        assert!(!set.contains(NodeId::new(7)));
        assert!(set.insert(NodeId::new(7)));
    }

    #[test]
    fn scratch_presizing_and_view_access() {
        let scratch = SearchScratch::for_graph_size(16, 32);
        assert!(scratch.view().is_empty());
    }
}
