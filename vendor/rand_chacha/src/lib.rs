//! Vendored ChaCha random number generators.
//!
//! The build environment has no crates.io access, so this crate provides
//! the [`ChaCha8Rng`] / [`ChaCha12Rng`] / [`ChaCha20Rng`] types the
//! workspace uses, backed by a genuine ChaCha block function (RFC 8439
//! quarter-round schedule). Output is platform-independent and stable:
//! the word stream is the ChaCha keystream interpreted little-endian, so
//! every seed reproduces bit-for-bit everywhere.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha keystream generator with `R` double-rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaChaCore<const ROUNDS: usize> {
    /// Key words 0..8, as set by the seed.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Stream id (words 14–15 of the state); fixed to zero.
    stream: u64,
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_key(key: [u32; 8]) -> Self {
        ChaChaCore {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }

    /// Runs the block function for the current counter into `buffer`.
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaCore<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaCore<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaCore::from_key(key)
    }
}

impl<const ROUNDS: usize> PartialEq for ChaChaCore<ROUNDS> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.counter == other.counter
            && self.stream == other.stream
            && self.index == other.index
    }
}

/// ChaCha with 8 rounds: the workspace's deterministic workhorse RNG.
pub type ChaCha8Rng = ChaChaCore<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaCore<12>;
/// ChaCha with 20 rounds (RFC 8439 strength).
pub type ChaCha20Rng = ChaChaCore<20>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_rfc8439_block_one() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00:00:00:09:00:00:00:4a:00:00:00:00.
        // Our stream layout packs nonce words into `stream`, which this
        // stub fixes at zero, so instead check the all-zero-key vector
        // from the original ChaCha spec (counter 0, nonce 0):
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let mut block = [0u8; 64];
        rng.fill_bytes(&mut block);
        let expected: [u8; 8] = [0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90];
        assert_eq!(&block[..8], &expected);
    }

    #[test]
    fn streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let av: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
