//! A counting global allocator for zero-allocation assertions.
//!
//! The search hot path promises *zero* steady-state heap allocations;
//! this crate makes that checkable rather than aspirational. Both the
//! `crates/search/tests/alloc_free.rs` suite and the `oracle_ops`
//! bench install the same counter, so the test's assertion and the
//! bench record's `steady_state_allocs` field measure the same thing:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let before = allocations();
//! hot_path();
//! assert_eq!(allocations() - before, 0);
//! ```
//!
//! The count is **per thread**: a libtest harness (or criterion) runs
//! coordinator threads that may allocate at any moment — parking, I/O,
//! timeout machinery — and a process-global counter would make
//! zero-allocation windows flaky. Counting in a const-initialized
//! thread-local (no lazy init, no destructor, so the allocator hooks
//! never re-enter the allocator) pins the measurement to the thread
//! doing the work.

#![warn(missing_docs)]

// lint: allow(unsafe-confinement): this crate IS the blessed GlobalAlloc shim — a forbid(unsafe_code) here would contradict its one job
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

/// Counts every heap acquisition (`alloc` and `realloc`; `dealloc` is
/// free and uncounted) on the allocating thread before delegating to
/// the system allocator.
pub struct CountingAllocator;

// SAFETY: delegates verbatim to `System`. The counter is a
// const-initialized, destructor-free thread-local `Cell`, so bumping
// it performs no allocation (no re-entrancy) and is safe during
// thread teardown.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations performed **by the calling thread** so far
/// (monotone per thread).
pub fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The crate's own test binary does not install the allocator (no
    // `#[global_allocator]` here), so only the counter contract is
    // checkable; the installing binaries assert real counts.
    #[test]
    fn counter_is_monotone_and_thread_local() {
        let a = allocations();
        bump();
        let b = allocations();
        assert_eq!(b, a + 1);
        // A sibling thread's count starts at its own zero.
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(allocations(), 0)).join().unwrap();
        });
    }
}
