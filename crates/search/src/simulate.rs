//! Simulation of strong-model algorithms in the weak model.
//!
//! Paper, §2: *"Any algorithm operating in the strong model can be
//! simulated in the weak model by replacing each request about vertex `u`
//! with requests about all edges incident to `u`, which gives a slowdown
//! factor of at most the maximum degree."* This adapter implements that
//! simulation literally, which is how Theorem 1's strong-model bound
//! `Ω(n^{1/2−p−ε})` follows from the weak-model bound and Móri's
//! `t^p` maximum degree.

use crate::{DiscoveredView, FrontierCursors, SearchTask, StrongSearcher, WeakSearcher};
use nonsearch_graph::{EdgeId, NodeId};
use rand::RngCore;

/// Wraps a [`StrongSearcher`] as a [`WeakSearcher`].
///
/// Each strong request on `u` is expanded into weak requests on every
/// unresolved incident edge of `u`, so the weak request count is at most
/// `max_degree` times the strong request count — never more, because
/// already-resolved edges are skipped.
///
/// The expansion walks `u`'s incident list lazily through a pooled
/// [`FrontierCursors`] instead of snapshotting the unresolved edges into
/// a queue: resolution is monotone and `u`'s incident image is fixed at
/// discovery, so the forward-only cursor emits exactly the edges the
/// queue would have (slot order, unresolved at emission time) without a
/// per-expansion buffer to fill.
///
/// # Example
///
/// ```
/// use nonsearch_generators::{rng_from_seed, MoriTree};
/// use nonsearch_graph::NodeId;
/// use nonsearch_search::{run_weak, SimulatedStrong, StrongHighDegree, SearchTask};
///
/// let mut rng = rng_from_seed(11);
/// let tree = MoriTree::sample(128, 0.4, &mut rng)?;
/// let graph = tree.undirected();
/// let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(128));
/// let mut sim = SimulatedStrong::new(StrongHighDegree::new());
/// let outcome = run_weak(&graph, &task, &mut sim, &mut rng)?;
/// assert!(outcome.found);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedStrong<S> {
    inner: S,
    /// Forward-only scan position over the expanding vertex's incident
    /// list (and, across the whole search, over any vertex expanded
    /// earlier — expansion never revisits slots).
    edges: FrontierCursors,
    /// The vertex currently being expanded, to report back to `inner`.
    expanding: Option<NodeId>,
    /// Neighbors revealed while expanding, passed to `inner.observe`.
    revealed: Vec<NodeId>,
    /// Strong-model requests issued so far (the simulated cost).
    strong_requests: usize,
}

impl<S: StrongSearcher> SimulatedStrong<S> {
    /// Wraps `inner` for weak-model execution.
    pub fn new(inner: S) -> Self {
        SimulatedStrong {
            inner,
            edges: FrontierCursors::new(),
            expanding: None,
            revealed: Vec::new(),
            strong_requests: 0,
        }
    }

    /// The wrapped strong searcher.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of strong-model requests simulated so far; the weak
    /// request count divided by this is the realized slowdown factor.
    pub fn strong_requests(&self) -> usize {
        self.strong_requests
    }

    fn finish_expansion(&mut self) {
        if let Some(u) = self.expanding.take() {
            self.inner.observe(u, &self.revealed);
            // Clear, don't take: the buffer keeps its capacity for the
            // next expansion, so steady state allocates nothing.
            self.revealed.clear();
        }
    }
}

impl<S: StrongSearcher> WeakSearcher for SimulatedStrong<S> {
    fn name(&self) -> &'static str {
        "simulated-strong"
    }

    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        loop {
            // Continue the current expansion: the cursor resumes where
            // the last request left off and skips edges resolved in the
            // meantime (by the answer itself, or by symmetry).
            if let Some(u) = self.expanding {
                if let Some(e) = self.edges.next_unexplored(view, u) {
                    return Some((u, e));
                }
                // The strong request is fully expanded: report it.
                self.finish_expansion();
            }
            let u = self.inner.next_request(task, view, rng)?;
            self.strong_requests += 1;
            self.expanding = Some(u);
            // An expansion with nothing to ask (every neighbor already
            // known) is finished — and reported — on the next lap.
        }
    }

    fn observe(&mut self, _request: (NodeId, EdgeId), revealed: NodeId) {
        self.revealed.push(revealed);
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.edges.reset();
        self.expanding = None;
        self.revealed.clear();
        self.strong_requests = 0;
    }

    fn reserve(&mut self, nodes: usize, edges: usize) {
        self.edges.reserve(nodes);
        // One revealed neighbor per incidence slot of the expanding
        // vertex, so max degree — bounded by the total slot count.
        self.revealed.reserve(2 * edges);
        self.inner.reserve(nodes, edges);
    }

    fn frontier_rescans(&self) -> u64 {
        self.edges.rescans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_strong, run_weak, StrongBfs, StrongHighDegree};
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    fn path(n: usize) -> UndirectedCsr {
        UndirectedCsr::from_edges(n, (1..n).map(|i| (i - 1, i))).unwrap()
    }

    #[test]
    fn simulation_finds_what_strong_finds() {
        let g = path(12);
        let task = crate::SearchTask::new(NodeId::new(0), NodeId::new(11));
        let strong = run_strong(&g, &task, &mut StrongBfs::new(), &mut rng()).unwrap();
        let weak = run_weak(
            &g,
            &task,
            &mut SimulatedStrong::new(StrongBfs::new()),
            &mut rng(),
        )
        .unwrap();
        assert!(strong.found && weak.found);
    }

    #[test]
    fn slowdown_bounded_by_max_degree() {
        // Star with 9 leaves: max degree 9.
        let g = UndirectedCsr::from_edges(10, (1..10).map(|i| (0, i))).unwrap();
        let task = crate::SearchTask::new(NodeId::new(1), NodeId::new(9));
        let mut sim = SimulatedStrong::new(StrongHighDegree::new());
        let weak = run_weak(&g, &task, &mut sim, &mut rng()).unwrap();
        assert!(weak.found);
        let max_degree = 9;
        assert!(
            weak.requests <= sim.strong_requests().max(1) * max_degree,
            "weak {} vs strong {} × Δ {}",
            weak.requests,
            sim.strong_requests(),
            max_degree
        );
    }

    #[test]
    fn skips_edges_resolved_by_symmetry() {
        // Triangle: after expanding two vertices, the third vertex's
        // edges are already resolved, so a strong request on it costs 0.
        let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let task = crate::SearchTask::new(NodeId::new(0), NodeId::new(2));
        let mut sim = SimulatedStrong::new(StrongBfs::new());
        let weak = run_weak(&g, &task, &mut sim, &mut rng()).unwrap();
        assert!(weak.found);
        assert!(weak.requests <= 3);
    }

    #[test]
    fn reset_clears_simulation_state() {
        let g = path(6);
        let task = crate::SearchTask::new(NodeId::new(0), NodeId::new(5));
        let mut sim = SimulatedStrong::new(StrongBfs::new());
        let first = run_weak(&g, &task, &mut sim, &mut rng()).unwrap();
        let second = run_weak(&g, &task, &mut sim, &mut rng()).unwrap();
        assert_eq!(first, second);
    }
}
