//! A minimal, dependency-free JSON value: serializer and parser.
//!
//! The workspace's `serde` is an offline no-op stub, so the structured
//! results subsystem carries its own JSON. The surface is deliberately
//! small: [`JsonValue`], its `Display` serialization (deterministic —
//! object keys keep insertion order, floats use Rust's shortest
//! round-trip formatting), and a strict recursive-descent [`parse`] used
//! by `xp validate` and the determinism tests.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A finite float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved on both ends.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: Vec<(K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer. Unlike
    /// [`JsonValue::as_f64`] this is exact for the full 63-bit range,
    /// which matters for round-tripping root seeds.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}
impl From<i64> for JsonValue {
    fn from(i: i64) -> JsonValue {
        JsonValue::Int(i)
    }
}
impl From<usize> for JsonValue {
    fn from(u: usize) -> JsonValue {
        JsonValue::Int(u as i64)
    }
}
impl From<u64> for JsonValue {
    fn from(u: u64) -> JsonValue {
        if u <= i64::MAX as u64 {
            JsonValue::Int(u as i64)
        } else {
            JsonValue::Float(u as f64)
        }
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> JsonValue {
        JsonValue::Float(x)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(o: Option<T>) -> JsonValue {
        o.map_or(JsonValue::Null, Into::into)
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> JsonValue {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(i) => write!(f, "{i}"),
            JsonValue::Float(x) if !x.is_finite() => f.write_str("null"),
            JsonValue::Float(x) => {
                // Rust's shortest round-trip form; add `.0` so integral
                // floats stay recognizably floats.
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') || s.contains("inf") {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        let parsed = if is_float {
            text.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite())
                .map(JsonValue::Float)
        } else {
            text.parse::<i64>().map(JsonValue::Int).ok().or_else(|| {
                // Integer overflowing i64: keep it as a float.
                text.parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite())
                    .map(JsonValue::Float)
            })
        };
        parsed.ok_or_else(|| self.err(&format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired;
                            // the writer never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_deterministically() {
        let v = JsonValue::object(vec![
            ("type", JsonValue::from("cell")),
            ("n", JsonValue::from(1024usize)),
            ("mean", JsonValue::from(12.5)),
            ("whole", JsonValue::from(3.0)),
            ("ok", JsonValue::from(true)),
            ("note", JsonValue::Null),
            ("tags", JsonValue::from(vec!["a", "b"])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"type":"cell","n":1024,"mean":12.5,"whole":3.0,"ok":true,"note":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_string(), r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn round_trips() {
        let v = JsonValue::object(vec![
            ("i", JsonValue::Int(-42)),
            ("x", JsonValue::Float(0.1)),
            ("big", JsonValue::Float(1e300)),
            ("s", JsonValue::from("héllo ✓")),
            (
                "nested",
                JsonValue::object(vec![("empty", JsonValue::Array(vec![]))]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_literals() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , true , false , null ] } ").unwrap();
        assert_eq!(
            v,
            JsonValue::object(vec![(
                "a",
                JsonValue::Array(vec![
                    JsonValue::Int(1),
                    JsonValue::Float(2.5),
                    JsonValue::Bool(true),
                    JsonValue::Bool(false),
                    JsonValue::Null,
                ])
            )])
        );
        assert_eq!(v.get("a").and_then(|a| a.as_f64()), None);
        assert_eq!(parse("-17").unwrap().as_f64(), Some(-17.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"\\x\"",
            "\"",
            "[1",
            "{\"a\":1,}",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn object_get_and_accessors() {
        let v = parse(r#"{"name":"xp","n":3}"#).unwrap();
        assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("xp"));
        assert_eq!(v.get("n").and_then(|x| x.as_f64()), Some(3.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn u64_conversion_saturates_to_float() {
        assert_eq!(JsonValue::from(3u64), JsonValue::Int(3));
        assert!(matches!(JsonValue::from(u64::MAX), JsonValue::Float(_)));
    }
}
