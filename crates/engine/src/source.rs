//! Where a trial's graph comes from: generated on the fly, or served
//! from a persistent corpus.
//!
//! Every Monte-Carlo cell in this workspace consumes one sampled graph
//! per trial. Historically that always meant *generate-per-trial*:
//! derive the trial's RNG stream and run a generator. [`GraphSource`]
//! abstracts the supply so the same experiment code can instead be
//! *corpus-backed* — trials are assigned stored, pre-generated graphs
//! round-robin — which amortizes generation across every experiment
//! that shares the ensemble (see the `nonsearch_corpus` crate).
//!
//! Graphs are handed out as `Arc<UndirectedCsr>`: a generate-backed
//! source allocates per trial, while a corpus-backed source shares one
//! cached instance across every trial (and thread) that reads it.

use nonsearch_generators::SeedSequence;
use nonsearch_graph::UndirectedCsr;
use std::sync::Arc;

/// Supplies the graph for each trial of a cell.
///
/// Implementations must be deterministic: the same `(n, trial, seeds)`
/// arguments always produce the same graph, so cell aggregates stay
/// bit-identical for any worker count.
pub trait GraphSource: Sync {
    /// The graph for `trial` of a cell at size `n`.
    ///
    /// `seeds` is the trial's own seed sequence (see
    /// [`trial_seeds`](crate::trial_seeds)). Generate-backed sources
    /// draw the graph from `seeds.child_rng(0)` — the workspace-wide
    /// convention, which keeps child indices `1..` free for searcher
    /// streams — while corpus-backed sources ignore `seeds` and map
    /// `trial` onto their stored ensemble.
    fn trial_graph(&self, n: usize, trial: usize, seeds: &SeedSequence) -> Arc<UndirectedCsr>;

    /// Human-readable description for banners and run records, e.g.
    /// `generate:mori(p=0.6,m=1)` or `corpus:/path/to/dir`.
    fn describe(&self) -> String;

    /// Whether trial graphs come from persistent storage rather than a
    /// generator. Phase timers use this to attribute graph-fetch time
    /// to the `load` phase (corpus-backed) instead of `generate`;
    /// nothing deterministic may depend on it. Defaults to `false`.
    fn is_stored(&self) -> bool {
        false
    }
}

impl<S: GraphSource + ?Sized> GraphSource for &S {
    fn trial_graph(&self, n: usize, trial: usize, seeds: &SeedSequence) -> Arc<UndirectedCsr> {
        (**self).trial_graph(n, trial, seeds)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn is_stored(&self) -> bool {
        (**self).is_stored()
    }
}

/// A [`GraphSource`] built from a sampling closure — the adapter used
/// by `GraphModel` implementations and by tests.
pub struct FnSource<F> {
    label: String,
    sample: F,
}

impl<F> FnSource<F>
where
    F: Fn(usize, &SeedSequence) -> UndirectedCsr + Sync,
{
    /// Wraps `sample(n, trial_seeds)` as a generate-backed source.
    pub fn new(label: impl Into<String>, sample: F) -> FnSource<F> {
        FnSource {
            label: label.into(),
            sample,
        }
    }
}

impl<F> GraphSource for FnSource<F>
where
    F: Fn(usize, &SeedSequence) -> UndirectedCsr + Sync,
{
    fn trial_graph(&self, n: usize, _trial: usize, seeds: &SeedSequence) -> Arc<UndirectedCsr> {
        Arc::new((self.sample)(n, seeds))
    }

    fn describe(&self) -> String {
        format!("generate:{}", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::NodeId;

    fn path_source() -> impl GraphSource {
        FnSource::new("path", |n, _seeds| {
            UndirectedCsr::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("valid path")
        })
    }

    #[test]
    fn fn_source_samples_and_describes() {
        let src = path_source();
        let seeds = SeedSequence::new(1);
        let g = src.trial_graph(5, 0, &seeds);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(src.describe(), "generate:path");
    }

    #[test]
    fn references_forward() {
        let src = path_source();
        let by_ref: &dyn GraphSource = &src;
        let seeds = SeedSequence::new(2);
        assert_eq!(by_ref.trial_graph(3, 1, &seeds).node_count(), 3);
        assert_eq!((&by_ref).describe(), "generate:path");
    }
}
