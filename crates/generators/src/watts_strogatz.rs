//! The Watts–Strogatz small-world model.
//!
//! A ring lattice with `k` neighbors per vertex whose edges are rewired
//! independently with probability `beta`. Included as the classic
//! "small-world without scale-freeness" baseline: low diameter, Poisson-ish
//! degrees — the regime the paper distinguishes from scale-free graphs.

use crate::error::check_probability;
use crate::{GeneratorError, Result};
use nonsearch_graph::UndirectedCsr;
use rand::Rng;
use std::collections::HashSet;

/// Namespace for the Watts–Strogatz sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WattsStrogatz;

impl WattsStrogatz {
    /// Samples a Watts–Strogatz graph on `n` vertices: ring lattice with
    /// `k` nearest neighbors (`k` even, `k < n`), each edge's far endpoint
    /// rewired with probability `beta` to a uniform non-duplicate target.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `k` is odd, zero,
    /// or `≥ n`, or if `beta ∉ [0, 1]`.
    pub fn sample<R: Rng + ?Sized>(
        n: usize,
        k: usize,
        beta: f64,
        rng: &mut R,
    ) -> Result<UndirectedCsr> {
        check_probability("beta", beta)?;
        if k == 0 || k % 2 == 1 {
            return Err(GeneratorError::invalid("k", k, "a positive even integer"));
        }
        if k >= n {
            return Err(GeneratorError::invalid("k", k, "less than n"));
        }
        let mut present: HashSet<(usize, usize)> = HashSet::with_capacity(n * k / 2);
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * k / 2);
        let norm = |u: usize, v: usize| if u < v { (u, v) } else { (v, u) };
        for u in 0..n {
            for j in 1..=(k / 2) {
                let v = (u + j) % n;
                edges.push((u, v));
                present.insert(norm(u, v));
            }
        }
        for edge in edges.iter_mut() {
            if rng.gen::<f64>() >= beta {
                continue;
            }
            let (u, old_v) = *edge;
            // Rewire the far endpoint to a fresh uniform target; skip if
            // the vertex is already saturated.
            if present.len() >= n * (n - 1) / 2 {
                continue;
            }
            const MAX_ATTEMPTS: usize = 10_000;
            let mut rewired = None;
            for _ in 0..MAX_ATTEMPTS {
                let w = rng.gen_range(0..n);
                if w != u && !present.contains(&norm(u, w)) {
                    rewired = Some(w);
                    break;
                }
            }
            if let Some(w) = rewired {
                present.remove(&norm(u, old_v));
                present.insert(norm(u, w));
                *edge = (u, w);
            }
        }
        Ok(UndirectedCsr::from_edges(n, edges).expect("endpoints in range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use nonsearch_graph::{GraphProperties, NodeId};

    #[test]
    fn beta_zero_is_ring_lattice() {
        let mut rng = rng_from_seed(1);
        let g = WattsStrogatz::sample(20, 4, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let mut rng = rng_from_seed(2);
        let g = WattsStrogatz::sample(50, 6, 0.5, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 150);
        assert_eq!(g.self_loop_count(), 0);
        assert_eq!(g.parallel_edge_count(), 0);
    }

    #[test]
    fn rewiring_changes_structure() {
        let lattice = WattsStrogatz::sample(40, 4, 0.0, &mut rng_from_seed(3)).unwrap();
        let rewired = WattsStrogatz::sample(40, 4, 1.0, &mut rng_from_seed(3)).unwrap();
        assert_ne!(lattice, rewired);
        // Minimum degree can drop below k but never below k/2 (each vertex
        // keeps its k/2 outgoing lattice slots).
        let min = rewired.nodes().map(|v| rewired.degree(v)).min().unwrap();
        assert!(min >= 2);
    }

    #[test]
    fn validation() {
        let mut rng = rng_from_seed(4);
        assert!(WattsStrogatz::sample(10, 3, 0.1, &mut rng).is_err());
        assert!(WattsStrogatz::sample(10, 0, 0.1, &mut rng).is_err());
        assert!(WattsStrogatz::sample(10, 10, 0.1, &mut rng).is_err());
        assert!(WattsStrogatz::sample(10, 4, 1.5, &mut rng).is_err());
    }

    #[test]
    fn determinism_per_seed() {
        let a = WattsStrogatz::sample(30, 4, 0.3, &mut rng_from_seed(5)).unwrap();
        let b = WattsStrogatz::sample(30, 4, 0.3, &mut rng_from_seed(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mean_degree_is_k() {
        let mut rng = rng_from_seed(6);
        let g = WattsStrogatz::sample(100, 6, 0.2, &mut rng).unwrap();
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(total, 100 * 6);
        let _ = NodeId::new(0); // silence unused import in some cfgs
    }
}
