//! The deterministic, sharded corpus builder.
//!
//! Graph generation is the dominant cost of large-`n` Monte-Carlo
//! sweeps, so the builder shards it across the engine's worker pool
//! ([`run_ordered`]): one job per stored graph, each writing its own
//! `.nsg` file (plus rewired null-model variants) and returning the
//! manifest entry. Three properties make the output **bit-identical
//! for any `--threads` value**:
//!
//! 1. every graph's RNG stream is derived from `(seed, size_idx,
//!    trial)` alone — the same derivation the certification sweep uses,
//!    which is why a corpus built with an experiment's seed and sizes
//!    serves it the *exact* graphs it would have generated;
//! 2. each job writes only its own files, so no write interleaves; and
//! 3. [`run_ordered`] returns entries in job order, so the manifest's
//!    deterministic portion is byte-stable (the volatile `"build"`
//!    envelope is the one exception, mirroring the engine's run
//!    footer).

use crate::error::CorpusError;
use crate::manifest::{BuildInfo, GraphEntry, Manifest, VariantEntry};
use crate::model_spec::{parse_model, DEFAULT_MODEL_SPEC};
use crate::nsg;
use nonsearch_engine::{git_describe, run_ordered};
use nonsearch_generators::{degree_preserving_rewire, SeedSequence};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Subdirectory of a corpus holding the `.nsg` files.
pub const GRAPHS_DIR: &str = "graphs";

/// What to build: the ensemble's provenance parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildSpec {
    /// Model spec string (see [`parse_model`]).
    pub model_spec: String,
    /// Root seed; also the seed an experiment must run with to get
    /// bit-identical corpus-backed results.
    pub seed: u64,
    /// Size sweep, in the order that defines `size_idx`.
    pub sizes: Vec<usize>,
    /// Graphs stored per size (trials are assigned round-robin, so an
    /// experiment running more trials than this reuses graphs).
    pub trials: usize,
    /// Degree-preserving rewired variants stored per graph.
    pub variants: usize,
    /// Edge-swap chain length per variant, in swaps per edge.
    pub swaps_per_edge: usize,
    /// Worker threads (0 = all cores). Never affects the output bytes.
    pub threads: usize,
}

impl Default for BuildSpec {
    /// Defaults mirror the `theorem1-weak` experiment (model, seed, and
    /// full size sweep), so a default-built corpus is the one that
    /// experiment can consume bit-identically.
    fn default() -> BuildSpec {
        BuildSpec {
            model_spec: DEFAULT_MODEL_SPEC.to_string(),
            seed: 0xE1,
            sizes: vec![512, 1024, 2048, 4096, 8192, 16384],
            trials: 12,
            variants: 1,
            swaps_per_edge: 10,
            threads: 0,
        }
    }
}

/// What a finished build wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// Graphs stored (originals; variants add `variants ×` this).
    pub graphs: usize,
    /// All `.nsg` files written (originals + variants).
    pub files: usize,
    /// Total `.nsg` bytes written.
    pub bytes: u64,
    /// Wall-clock build time in milliseconds.
    pub wall_ms: u64,
    /// Path of the manifest.
    pub manifest_path: PathBuf,
}

/// Builds a corpus at `dir` according to `spec`.
///
/// Creates `dir` and `dir/graphs/` if missing, overwrites any previous
/// corpus files, and writes `manifest.json` last — so a manifest's
/// presence implies a complete corpus.
///
/// # Errors
///
/// Returns [`CorpusError`] for unparseable model specs, filesystem
/// failures, or variant rewiring on non-simple graphs.
pub fn build(dir: &Path, spec: &BuildSpec) -> Result<BuildReport, CorpusError> {
    // lint: allow(clock-env): build wall-time for the report footer only; graph bytes derive from seeds alone
    let start = Instant::now();
    let model = parse_model(&spec.model_spec)?;
    let graphs_dir = dir.join(GRAPHS_DIR);
    std::fs::create_dir_all(&graphs_dir).map_err(|e| CorpusError::io(&graphs_dir, e))?;
    // Invalidate any previous corpus *before* overwriting its files: an
    // interrupted rebuild must leave a manifest-less directory (clean
    // open failure), never a stale manifest over mixed-generation files.
    let old_manifest = dir.join(crate::manifest::MANIFEST_FILE);
    if old_manifest.exists() {
        std::fs::remove_file(&old_manifest).map_err(|e| CorpusError::io(&old_manifest, e))?;
    }

    let jobs = spec.sizes.len() * spec.trials;
    let root = SeedSequence::new(spec.seed);
    // Job seeds are re-derived from (size_idx, trial) inside the job —
    // run_ordered's own flat-index streams are ignored — so the corpus
    // reproduces exactly what certify's nested derivation generates.
    let entries: Vec<Result<(GraphEntry, u64), CorpusError>> =
        run_ordered(jobs, spec.threads, &root, |job, _seeds| {
            let size_idx = job / spec.trials;
            let trial = job % spec.trials;
            let n = spec.sizes[size_idx];
            let trial_seeds = root.subsequence(size_idx as u64).subsequence(trial as u64);

            let mut graph_rng = trial_seeds.child_rng(0);
            let graph = model.sample_graph(n, &mut graph_rng);
            let stem = format!("s{size_idx:04}_t{trial:04}");
            let file = format!("{GRAPHS_DIR}/{stem}.nsg");
            let path = dir.join(&file);
            let checksum = nsg::write_graph_file(&path, &graph)?;
            let mut bytes = file_len(&path)?;

            let mut variants = Vec::with_capacity(spec.variants);
            let variant_seeds = trial_seeds.subsequence(1);
            for v in 0..spec.variants {
                let mut rng = variant_seeds.child_rng(v as u64);
                let (rewired, _) = degree_preserving_rewire(&graph, spec.swaps_per_edge, &mut rng)?;
                let vfile = format!("{GRAPHS_DIR}/{stem}_v{v:02}.nsg");
                let vpath = dir.join(&vfile);
                let vchecksum = nsg::write_graph_file(&vpath, &rewired)?;
                bytes += file_len(&vpath)?;
                variants.push(VariantEntry {
                    file: vfile,
                    checksum: vchecksum,
                });
            }

            Ok((
                GraphEntry {
                    size_idx,
                    n,
                    trial,
                    file,
                    nodes: graph.node_count(),
                    edges: graph.edge_count(),
                    checksum,
                    variants,
                },
                bytes,
            ))
        });

    let mut graphs = Vec::with_capacity(jobs);
    let mut total_bytes = 0u64;
    for entry in entries {
        let (entry, bytes) = entry?;
        total_bytes += bytes;
        graphs.push(entry);
    }

    let wall_ms = start.elapsed().as_millis() as u64;
    let manifest = Manifest {
        model: model.name(),
        model_spec: spec.model_spec.clone(),
        seed: spec.seed,
        trials: spec.trials,
        variants: spec.variants,
        swaps_per_edge: spec.swaps_per_edge,
        sizes: spec.sizes.clone(),
        graphs,
        build: Some(BuildInfo {
            git: git_describe(),
            threads: spec.threads,
            wall_ms,
        }),
    };
    manifest.write_to(dir)?;

    Ok(BuildReport {
        graphs: jobs,
        files: manifest.file_count(),
        bytes: total_bytes,
        wall_ms,
        manifest_path: dir.join(crate::manifest::MANIFEST_FILE),
    })
}

fn file_len(path: &Path) -> Result<u64, CorpusError> {
    Ok(std::fs::metadata(path)
        .map_err(|e| CorpusError::io(path, e))?
        .len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::MANIFEST_FILE;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("corpus_build_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tiny_spec() -> BuildSpec {
        BuildSpec {
            model_spec: "mori:p=0.6,m=1".into(),
            seed: 7,
            sizes: vec![32, 64],
            trials: 3,
            variants: 1,
            swaps_per_edge: 4,
            threads: 1,
        }
    }

    #[test]
    fn build_writes_everything_the_manifest_promises() {
        let dir = temp_dir("promises");
        let report = build(&dir, &tiny_spec()).unwrap();
        assert_eq!(report.graphs, 6);
        assert_eq!(report.files, 12); // one variant each
        assert!(report.bytes > 0);
        assert!(report.manifest_path.ends_with(MANIFEST_FILE));

        let manifest = Manifest::read_from(&dir).unwrap();
        assert_eq!(manifest.graphs.len(), 6);
        assert_eq!(manifest.model, "mori(p=0.6,m=1)");
        for entry in &manifest.graphs {
            let g = nsg::read_graph_file(&dir.join(&entry.file)).unwrap();
            assert_eq!(g.node_count(), entry.nodes);
            assert_eq!(g.edge_count(), entry.edges);
            for v in &entry.variants {
                let null = nsg::read_graph_file(&dir.join(&v.file)).unwrap();
                assert_eq!(null.node_count(), entry.nodes);
                assert_eq!(null.edge_count(), entry.edges);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graphs_match_the_certify_seed_derivation() {
        // The contract behind `--corpus` bit-identity: stored graph
        // (size_idx, trial) is exactly the generate-per-trial sample.
        let dir = temp_dir("derivation");
        let spec = tiny_spec();
        build(&dir, &spec).unwrap();
        let manifest = Manifest::read_from(&dir).unwrap();
        let model = parse_model(&spec.model_spec).unwrap();
        let root = SeedSequence::new(spec.seed);
        for entry in &manifest.graphs {
            let trial_seeds = root
                .subsequence(entry.size_idx as u64)
                .subsequence(entry.trial as u64);
            let expected = model.sample_graph(entry.n, &mut trial_seeds.child_rng(0));
            let stored = nsg::read_graph_file(&dir.join(&entry.file)).unwrap();
            assert_eq!(stored, expected, "s{} t{}", entry.size_idx, entry.trial);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn builds_are_byte_identical_across_thread_counts() {
        let spec1 = tiny_spec();
        let spec8 = BuildSpec {
            threads: 8,
            ..spec1.clone()
        };
        let dir1 = temp_dir("t1");
        let dir8 = temp_dir("t8");
        build(&dir1, &spec1).unwrap();
        build(&dir8, &spec8).unwrap();

        let m1 = Manifest::read_from(&dir1).unwrap();
        let m8 = Manifest::read_from(&dir8).unwrap();
        // Deterministic portion identical; only the build envelope may
        // differ (it records the thread count).
        assert_eq!(m1.to_json(false).to_string(), m8.to_json(false).to_string());
        for entry in &m1.graphs {
            let a = std::fs::read(dir1.join(&entry.file)).unwrap();
            let b = std::fs::read(dir8.join(&entry.file)).unwrap();
            assert_eq!(a, b, "{}", entry.file);
            for v in &entry.variants {
                let a = std::fs::read(dir1.join(&v.file)).unwrap();
                let b = std::fs::read(dir8.join(&v.file)).unwrap();
                assert_eq!(a, b, "{}", v.file);
            }
        }
        std::fs::remove_dir_all(&dir1).ok();
        std::fs::remove_dir_all(&dir8).ok();
    }

    #[test]
    fn variants_preserve_degree_sequences() {
        let dir = temp_dir("variants");
        build(&dir, &tiny_spec()).unwrap();
        let manifest = Manifest::read_from(&dir).unwrap();
        let entry = &manifest.graphs[0];
        let original = nsg::read_graph_file(&dir.join(&entry.file)).unwrap();
        let rewired = nsg::read_graph_file(&dir.join(&entry.variants[0].file)).unwrap();
        assert_eq!(
            nonsearch_graph::degree_sequence(&original),
            nonsearch_graph::degree_sequence(&rewired)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_model_spec_fails_before_touching_disk() {
        let dir = temp_dir("badspec");
        let spec = BuildSpec {
            model_spec: "martian".into(),
            ..tiny_spec()
        };
        assert!(build(&dir, &spec).is_err());
        assert!(!dir.exists());
    }
}
