//! Error type for corpus construction, persistence, and access.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// Errors produced by the corpus store.
#[derive(Debug)]
#[non_exhaustive]
pub enum CorpusError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// A `.nsg` file (or byte buffer) violated the binary format.
    Format {
        /// Human-readable cause.
        reason: String,
    },
    /// A stored checksum did not match the bytes on disk.
    Checksum {
        /// The offending file.
        path: PathBuf,
        /// Checksum recorded in the manifest or header.
        expected: u64,
        /// Checksum of the actual bytes.
        actual: u64,
    },
    /// `manifest.json` was missing a field or carried the wrong shape.
    Manifest {
        /// Human-readable cause.
        reason: String,
    },
    /// A model specification string could not be parsed.
    ModelSpec {
        /// The spec as given.
        spec: String,
        /// Human-readable cause.
        reason: String,
    },
    /// The corpus cannot serve a request (missing size, unknown variant).
    Unsupported {
        /// Human-readable cause.
        reason: String,
    },
    /// Building a null-model variant failed (e.g. the model samples
    /// non-simple graphs, which the edge-swap chain rejects).
    Rewire {
        /// The generator's error.
        source: nonsearch_generators::GeneratorError,
    },
}

impl CorpusError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: std::io::Error) -> CorpusError {
        CorpusError::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn format(reason: impl Into<String>) -> CorpusError {
        CorpusError::Format {
            reason: reason.into(),
        }
    }

    pub(crate) fn manifest(reason: impl Into<String>) -> CorpusError {
        CorpusError::Manifest {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            CorpusError::Format { reason } => write!(f, "malformed .nsg data: {reason}"),
            CorpusError::Checksum {
                path,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch for {}: manifest says {expected:016x}, file is {actual:016x}",
                path.display()
            ),
            CorpusError::Manifest { reason } => write!(f, "malformed manifest: {reason}"),
            CorpusError::ModelSpec { spec, reason } => {
                write!(f, "cannot parse model spec {spec:?}: {reason}")
            }
            CorpusError::Unsupported { reason } => write!(f, "corpus cannot serve: {reason}"),
            CorpusError::Rewire { source } => {
                write!(f, "cannot build null-model variant: {source}")
            }
        }
    }
}

impl Error for CorpusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CorpusError::Io { source, .. } => Some(source),
            CorpusError::Rewire { source } => Some(source),
            _ => None,
        }
    }
}

impl From<nonsearch_generators::GeneratorError> for CorpusError {
    fn from(source: nonsearch_generators::GeneratorError) -> CorpusError {
        CorpusError::Rewire { source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CorpusError::format("magic mismatch");
        assert!(e.to_string().contains("magic mismatch"));

        let e = CorpusError::Checksum {
            path: PathBuf::from("g.nsg"),
            expected: 0xAB,
            actual: 0xCD,
        };
        assert!(e.to_string().contains("g.nsg"));
        assert!(e.to_string().contains("00000000000000ab"));

        let e = CorpusError::ModelSpec {
            spec: "wat:1".into(),
            reason: "unknown model".into(),
        };
        assert!(e.to_string().contains("wat:1"));
    }

    #[test]
    fn io_errors_chain_their_source() {
        let e = CorpusError::io(
            "missing.nsg",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.source().is_some());
        assert!(e.to_string().contains("missing.nsg"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CorpusError>();
    }
}
