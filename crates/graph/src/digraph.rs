//! Append-only directed multigraph used by the evolving-graph generators.

use crate::{EdgeId, GraphError, NodeId, Result};
use serde::{Deserialize, Serialize};

/// Source and target of a directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeEndpoints {
    /// Origin of the edge (the newer vertex in attachment models).
    pub source: NodeId,
    /// Destination of the edge (the chosen older vertex).
    pub target: NodeId,
}

/// An append-only directed multigraph.
///
/// Vertices and edges can only be added, never removed — exactly the shape
/// of the paper's evolving models, where "at each time step, a new vertex
/// and an out-going edge are added". Self-loops and parallel edges are
/// permitted; both arise when Móri trees are merged into
/// `m`-out graphs.
///
/// Degrees are maintained incrementally so that preferential-attachment
/// generators can sample in O(1) without rescanning.
///
/// # Example
///
/// ```
/// use nonsearch_graph::EvolvingDigraph;
///
/// let mut g = EvolvingDigraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(b, a)?;
/// assert_eq!(g.endpoints(e)?.target, a);
/// assert_eq!(g.in_degree(a), 1);
/// assert_eq!(g.out_degree(b), 1);
/// # Ok::<(), nonsearch_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvolvingDigraph {
    edges: Vec<EdgeEndpoints>,
    out_adj: Vec<Vec<EdgeId>>,
    in_degree: Vec<u32>,
    out_degree: Vec<u32>,
}

impl EvolvingDigraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` vertices
    /// and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        EvolvingDigraph {
            edges: Vec::with_capacity(edges),
            out_adj: Vec::with_capacity(nodes),
            in_degree: Vec::with_capacity(nodes),
            out_degree: Vec::with_capacity(nodes),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.out_adj.is_empty()
    }

    /// Appends a new isolated vertex and returns its id.
    ///
    /// Vertices are numbered in arrival order, so the `t`-th call returns
    /// the vertex the paper labels `t`.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.out_adj.len());
        self.out_adj.push(Vec::new());
        self.in_degree.push(0);
        self.out_degree.push(0);
        id
    }

    /// Appends `count` new isolated vertices, returning the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId::new(self.out_adj.len());
        for _ in 0..count {
            self.add_node();
        }
        first
    }

    /// Adds a directed edge `source → target` and returns its id.
    ///
    /// Self-loops (`source == target`) and parallel edges are allowed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not
    /// exist.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId) -> Result<EdgeId> {
        self.check_node(source)?;
        self.check_node(target)?;
        let id = EdgeId::new(self.edges.len());
        self.edges.push(EdgeEndpoints { source, target });
        self.out_adj[source.index()].push(id);
        self.out_degree[source.index()] += 1;
        self.in_degree[target.index()] += 1;
        Ok(id)
    }

    /// Returns the endpoints of edge `e`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] if `e` does not exist.
    pub fn endpoints(&self, e: EdgeId) -> Result<EdgeEndpoints> {
        self.edges
            .get(e.index())
            .copied()
            .ok_or(GraphError::EdgeOutOfBounds {
                edge: e,
                edge_count: self.edges.len(),
            })
    }

    /// In-degree of `v` (number of edges pointing *to* `v`).
    ///
    /// The paper's rephrased Móri and Cooper–Frieze models perform
    /// preferential attachment proportional to **indegree**, which this
    /// accessor serves in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_degree[v.index()] as usize
    }

    /// Out-degree of `v` (number of edges leaving `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_degree[v.index()] as usize
    }

    /// Total (undirected) degree of `v`: in-degree plus out-degree, which
    /// counts a self-loop twice — the standard undirected convention.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn total_degree(&self, v: NodeId) -> usize {
        self.in_degree(v) + self.out_degree(v)
    }

    /// Ids of the edges leaving `v`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_adj[v.index()]
    }

    /// Iterator over all vertices in arrival order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterator over `(EdgeId, EdgeEndpoints)` in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, EdgeEndpoints)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, ep)| (EdgeId::new(i), *ep))
    }

    /// Sum of all in-degrees, i.e. the number of edges. Exposed because the
    /// Móri normalizer `p·S + (1−p)·t` needs the running total.
    #[inline]
    pub fn total_in_degree(&self) -> usize {
        self.edges.len()
    }

    /// Number of self-loops.
    pub fn self_loop_count(&self) -> usize {
        self.edges
            .iter()
            .filter(|ep| ep.source == ep.target)
            .count()
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node: v,
                node_count: self.node_count(),
            })
        }
    }

    /// Merges consecutive blocks of `m` vertices into single vertices.
    ///
    /// This is exactly the paper's construction of the `m`-out Móri graph
    /// `G_t^{(m)}`: *"take the Móri tree of size nm and, for each
    /// 1 ≤ i ≤ n, merge vertices m(i−1)+1 to mi into a new vertex i"*.
    /// Edges are preserved (including any that become self-loops or
    /// parallel edges), and edge ids keep their insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if the graph is empty.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or if `m` does not divide the vertex count.
    pub fn merge_blocks(&self, m: usize) -> Result<EvolvingDigraph> {
        assert!(m > 0, "block size must be positive");
        if self.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        assert_eq!(
            self.node_count() % m,
            0,
            "block size {m} must divide vertex count {}",
            self.node_count()
        );
        let n = self.node_count() / m;
        let mut merged = EvolvingDigraph::with_capacity(n, self.edge_count());
        merged.add_nodes(n);
        for (_, ep) in self.edges() {
            let s = NodeId::new(ep.source.index() / m);
            let t = NodeId::new(ep.target.index() / m);
            merged
                .add_edge(s, t)
                .expect("merged endpoints are in range by construction");
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> EvolvingDigraph {
        // 2→1, 3→2, ..., n→(n−1): the "uniform attachment chain".
        let mut g = EvolvingDigraph::new();
        g.add_node();
        for t in 1..n {
            let v = g.add_node();
            g.add_edge(v, NodeId::new(t - 1)).unwrap();
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g = EvolvingDigraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn nodes_are_numbered_in_arrival_order() {
        let mut g = EvolvingDigraph::new();
        assert_eq!(g.add_node().label(), 1);
        assert_eq!(g.add_node().label(), 2);
        assert_eq!(g.add_nodes(3).label(), 3);
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn degrees_update_incrementally() {
        let g = path(5);
        assert_eq!(g.in_degree(NodeId::new(0)), 1);
        assert_eq!(g.out_degree(NodeId::new(0)), 0);
        assert_eq!(g.in_degree(NodeId::new(4)), 0);
        assert_eq!(g.out_degree(NodeId::new(4)), 1);
        for v in 1..4 {
            assert_eq!(g.total_degree(NodeId::new(v)), 2);
        }
        assert_eq!(g.total_in_degree(), 4);
    }

    #[test]
    fn self_loop_counts_twice_in_total_degree() {
        let mut g = EvolvingDigraph::new();
        let v = g.add_node();
        g.add_edge(v, v).unwrap();
        assert_eq!(g.total_degree(v), 2);
        assert_eq!(g.self_loop_count(), 1);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = EvolvingDigraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.in_degree(b), 2);
        assert_eq!(g.out_edges(a).len(), 2);
    }

    #[test]
    fn add_edge_rejects_unknown_nodes() {
        let mut g = EvolvingDigraph::new();
        let a = g.add_node();
        let ghost = NodeId::new(7);
        let err = g.add_edge(a, ghost).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
        // A failed insertion must not corrupt counters.
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(a), 0);
    }

    #[test]
    fn endpoints_roundtrip() {
        let mut g = EvolvingDigraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(b, a).unwrap();
        let ep = g.endpoints(e).unwrap();
        assert_eq!(
            ep,
            EdgeEndpoints {
                source: b,
                target: a
            }
        );
        assert!(g.endpoints(EdgeId::new(5)).is_err());
    }

    #[test]
    fn edge_iteration_in_insertion_order() {
        let g = path(4);
        let targets: Vec<usize> = g.edges().map(|(_, ep)| ep.target.index()).collect();
        assert_eq!(targets, vec![0, 1, 2]);
    }

    #[test]
    fn merge_blocks_path() {
        // Path on 6 vertices merged with m=2 → 3 vertices.
        // Edges (1-based): 2→1, 3→2, 4→3, 5→4, 6→5
        // Blocks: {1,2}→1, {3,4}→2, {5,6}→3.
        // Merged edges: 1→1 (loop), 2→1, 2→2 (loop), 3→2, 3→3 (loop).
        let g = path(6);
        let merged = g.merge_blocks(2).unwrap();
        assert_eq!(merged.node_count(), 3);
        assert_eq!(merged.edge_count(), 5);
        assert_eq!(merged.self_loop_count(), 3);
        assert_eq!(merged.total_in_degree(), 5);
    }

    #[test]
    fn merge_blocks_m1_is_identity() {
        let g = path(5);
        let merged = g.merge_blocks(1).unwrap();
        assert_eq!(merged, g);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn merge_blocks_requires_divisibility() {
        let _ = path(5).merge_blocks(2);
    }

    #[test]
    fn merge_blocks_empty_errors() {
        let g = EvolvingDigraph::new();
        assert!(matches!(g.merge_blocks(2), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn serde_roundtrip_via_clone_eq() {
        let g = path(8);
        let cloned = g.clone();
        assert_eq!(g, cloned);
    }
}
