//! Workspace-wide determinism: every stochastic pipeline is bit-for-bit
//! reproducible from its seed.

use nonsearch::core::{certify, CertifyConfig, MergedMoriModel};
use nonsearch::generators::{
    rng_from_seed, CooperFrieze, CooperFriezeConfig, KleinbergGrid, MergedMori,
};
use nonsearch::graph::{GraphRecord, NodeId};
use nonsearch::search::{
    percolation_search, run_weak, PercolationConfig, SearchTask, SearcherKind,
};

#[test]
fn generators_reproduce_from_seeds() {
    let a = MergedMori::sample(300, 2, 0.5, &mut rng_from_seed(1)).unwrap();
    let b = MergedMori::sample(300, 2, 0.5, &mut rng_from_seed(1)).unwrap();
    assert_eq!(a.digraph(), b.digraph());

    let cfg = CooperFriezeConfig::balanced(0.5).unwrap();
    let a = CooperFrieze::sample(300, &cfg, &mut rng_from_seed(2)).unwrap();
    let b = CooperFrieze::sample(300, &cfg, &mut rng_from_seed(2)).unwrap();
    assert_eq!(a.digraph(), b.digraph());

    let a = KleinbergGrid::sample(12, 2.0, 1, &mut rng_from_seed(3)).unwrap();
    let b = KleinbergGrid::sample(12, 2.0, 1, &mut rng_from_seed(3)).unwrap();
    assert_eq!(a.graph(), b.graph());
}

#[test]
fn searches_reproduce_from_seeds() {
    let mori = MergedMori::sample(500, 1, 0.5, &mut rng_from_seed(4)).unwrap();
    let graph = mori.undirected();
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(500)).with_budget(50_000);
    for kind in SearcherKind::all() {
        let mut s1 = kind.build();
        let o1 = run_weak(&graph, &task, &mut *s1, &mut rng_from_seed(9)).unwrap();
        let mut s2 = kind.build();
        let o2 = run_weak(&graph, &task, &mut *s2, &mut rng_from_seed(9)).unwrap();
        assert_eq!(o1, o2, "{kind} is nondeterministic");
    }
}

#[test]
fn percolation_reproduces_from_seeds() {
    let mori = MergedMori::sample(400, 2, 0.5, &mut rng_from_seed(5)).unwrap();
    let graph = mori.undirected();
    let config = PercolationConfig {
        replication_walk: 30,
        query_walk: 30,
        edge_probability: 0.3,
    };
    let a = percolation_search(
        &graph,
        NodeId::from_label(7),
        NodeId::from_label(390),
        &config,
        &mut rng_from_seed(6),
    )
    .unwrap();
    let b = percolation_search(
        &graph,
        NodeId::from_label(7),
        NodeId::from_label(390),
        &config,
        &mut rng_from_seed(6),
    )
    .unwrap();
    assert_eq!(a, b);
}

#[test]
fn certification_is_schedule_independent() {
    // certify parallelizes across threads; seeds are per-cell, so the
    // report must not depend on interleaving. Run twice and compare.
    let model = MergedMoriModel { p: 0.5, m: 1 };
    let config = CertifyConfig {
        sizes: vec![128, 256],
        trials: 8,
        seed: 21,
        searchers: vec![SearcherKind::HighDegree, SearcherKind::RandomWalk],
        ..CertifyConfig::default()
    };
    let a = certify(&model, &config);
    let b = certify(&model, &config);
    for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
        for (px, py) in x.points.iter().zip(&y.points) {
            assert_eq!(px.mean_requests, py.mean_requests);
            assert_eq!(px.success_rate, py.success_rate);
        }
    }
}

#[test]
fn graph_serialization_roundtrips_across_crates() {
    let mori = MergedMori::sample(200, 3, 0.7, &mut rng_from_seed(8)).unwrap();
    let graph = mori.undirected();
    let record = GraphRecord::from_graph(&graph);
    let back = record.to_graph().unwrap();
    assert_eq!(graph, back);
    // And the rebuilt graph supports searching identically.
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(200)).with_budget(50_000);
    let mut s1 = SearcherKind::BfsFlood.build();
    let mut s2 = SearcherKind::BfsFlood.build();
    let o1 = run_weak(&graph, &task, &mut *s1, &mut rng_from_seed(10)).unwrap();
    let o2 = run_weak(&back, &task, &mut *s2, &mut rng_from_seed(10)).unwrap();
    assert_eq!(o1, o2);
}
