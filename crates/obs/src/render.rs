//! Text renderers for the metrics substrate: an ASCII view of the
//! log₂ request histogram for `xp report`, and a Prometheus-style
//! text exposition of [`Metrics`] — the stats format the future
//! `nonsearchd` daemon will serve from its `/metrics` endpoint, kept
//! here so the CLI and the daemon render identical output.

use crate::{Log2Histogram, Metrics};

/// Renders the nonzero buckets of a log₂ histogram as right-aligned
/// range labels with `#` bars scaled so the fullest bucket spans
/// `width` columns. An empty histogram renders as a single
/// `(no samples)` line. Bucket `0` is labeled `0`; bucket `k ≥ 1`
/// is labeled `[2^(k-1), 2^k)`.
pub fn render_log2_histogram(histogram: &Log2Histogram, width: usize) -> String {
    let buckets = histogram.trimmed();
    let max = buckets.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "  (no samples)\n".to_string();
    }
    let width = width.max(1) as u64;
    let mut out = String::new();
    for (k, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let label = if k == 0 {
            "0".to_string()
        } else {
            format!("[{}, {})", 1u128 << (k - 1), 1u128 << k)
        };
        // Ceiling division so any nonzero bucket shows at least one mark.
        let bar_len = ((count * width).div_ceil(max)) as usize;
        out.push_str(&format!(
            "  {label:>24} {count:>8} {}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Serializes a [`Metrics`] bundle in the Prometheus text exposition
/// format (version 0.0.4): one `counter` family per field and the
/// trial-request histogram as cumulative `le`-labeled buckets.
///
/// The histogram's `_sum` is reported as `metrics.requests`: the
/// engine records exactly one sample per trial whose value is that
/// trial's request total, so the sample sum equals the global request
/// counter by construction, and `_count` is the trial count. Bucket
/// `k ≥ 1` covers `[2^(k-1), 2^k)`; with integer samples its inclusive
/// upper bound is `2^k − 1`, which is the `le` value emitted.
pub fn prometheus_text(metrics: &Metrics) -> String {
    let mut out = String::new();
    let counters: [(&str, &str, u64); 6] = [
        (
            "nonsearch_trials_total",
            "Trials folded into this bundle.",
            metrics.trials,
        ),
        (
            "nonsearch_requests_total",
            "Oracle requests served (weak + strong).",
            metrics.requests,
        ),
        (
            "nonsearch_discoveries_total",
            "Vertices discovered across all searches.",
            metrics.discoveries,
        ),
        (
            "nonsearch_edge_resolutions_total",
            "Edges whose second endpoint became known.",
            metrics.edge_resolutions,
        ),
        (
            "nonsearch_frontier_rescans_total",
            "Resolved edges skipped by frontier cursor scans.",
            metrics.frontier_rescans,
        ),
        (
            "nonsearch_scratch_resets_total",
            "Pooled scratch views reset for a fresh search.",
            metrics.scratch_resets,
        ),
    ];
    for (name, help, value) in counters {
        out.push_str(&format!("# HELP {name} {help}\n"));
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name} {value}\n"));
    }
    let name = "nonsearch_trial_requests";
    out.push_str(&format!("# HELP {name} Per-trial oracle request totals.\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (k, &count) in metrics.trial_requests.trimmed().iter().enumerate() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        let le = if k == 0 { 0u128 } else { (1u128 << k) - 1 };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    out.push_str(&format!("{name}_sum {}\n", metrics.requests));
    out.push_str(&format!("{name}_count {}\n", metrics.trials));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_render_scales_to_width() {
        let mut h = Log2Histogram::new();
        for _ in 0..40 {
            h.record(5); // bucket 3: [4, 8)
        }
        h.record(0);
        h.record(1000); // bucket 10: [512, 1024)
        let text = render_log2_histogram(&h, 20);
        assert!(text.contains("[4, 8)"), "{text}");
        assert!(text.contains("[512, 1024)"), "{text}");
        assert!(text.contains(&"#".repeat(20)), "{text}");
        // The singleton buckets still get a visible mark.
        for line in text.lines() {
            assert!(line.contains('#'), "bar-less line: {line}");
        }
        // Zero-count buckets between nonzero ones are skipped.
        assert!(!text.contains("[8, 16)"), "{text}");
    }

    #[test]
    fn empty_histogram_renders_placeholder() {
        let text = render_log2_histogram(&Log2Histogram::new(), 40);
        assert_eq!(text, "  (no samples)\n");
    }

    #[test]
    fn prometheus_counters_and_histogram_agree() {
        let mut m = Metrics {
            trials: 3,
            requests: 10 + 20 + 2,
            discoveries: 7,
            edge_resolutions: 5,
            frontier_rescans: 1,
            scratch_resets: 3,
            ..Metrics::new()
        };
        m.observe_trial_requests(10);
        m.observe_trial_requests(20);
        m.observe_trial_requests(2);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE nonsearch_trials_total counter"));
        assert!(text.contains("nonsearch_trials_total 3\n"));
        assert!(text.contains("nonsearch_requests_total 32\n"));
        // 2 ∈ [2,4) → le=3; 10 ∈ [8,16) → le=15; 20 ∈ [16,32) → le=31.
        assert!(text.contains("nonsearch_trial_requests_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("nonsearch_trial_requests_bucket{le=\"15\"} 2\n"));
        assert!(text.contains("nonsearch_trial_requests_bucket{le=\"31\"} 3\n"));
        assert!(text.contains("nonsearch_trial_requests_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("nonsearch_trial_requests_sum 32\n"));
        assert!(text.contains("nonsearch_trial_requests_count 3\n"));
    }

    #[test]
    fn prometheus_empty_bundle_is_well_formed() {
        let text = prometheus_text(&Metrics::new());
        assert!(text.contains("nonsearch_trials_total 0\n"));
        assert!(text.contains("nonsearch_trial_requests_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("nonsearch_trial_requests_count 0\n"));
    }
}
