//! Amortized-O(1) frontier bookkeeping shared by the greedy searchers.

use crate::DiscoveredView;
use nonsearch_graph::{EdgeId, NodeId};

/// Per-vertex cursors over incident edge lists, stored dense.
///
/// Edge resolution is monotone (a resolved edge never becomes unresolved),
/// so a forward-only cursor per vertex finds each vertex's next
/// unexplored edge in O(1) amortized instead of rescanning the whole
/// incident list on every request. All the O(log n)-per-step searchers
/// ([`HighDegreeGreedy`](crate::HighDegreeGreedy) and friends) share this.
///
/// The cursors live in a flat array indexed by [`NodeId`] with an epoch
/// stamp per entry (the same trick as
/// [`DiscoveredView`](crate::DiscoveredView); see the `discovered`
/// module docs), so [`reset`](FrontierCursors::reset) is O(1) and a
/// searcher reused across trials performs no per-request hashing or
/// allocation once the array has grown to the graph size.
#[derive(Debug, Clone)]
pub struct FrontierCursors {
    epoch: u32,
    stamp: Vec<u32>,
    cursor: Vec<usize>,
}

impl Default for FrontierCursors {
    fn default() -> Self {
        FrontierCursors {
            epoch: 1,
            stamp: Vec::new(),
            cursor: Vec::new(),
        }
    }
}

impl FrontierCursors {
    /// Creates empty cursors.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next unresolved incident edge of `v`, advancing the cursor
    /// past resolved edges. Returns `None` when `v` is exhausted (or not
    /// discovered).
    pub fn next_unexplored(&mut self, view: &DiscoveredView, v: NodeId) -> Option<EdgeId> {
        let info = view.vertex(v)?;
        let i = v.index();
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
            self.cursor.resize(i + 1, 0);
        }
        let mut cursor = if self.stamp[i] == self.epoch {
            self.cursor[i]
        } else {
            0
        };
        let incident = info.incident();
        let mut found = None;
        while cursor < incident.len() {
            let e = incident[cursor];
            if !view.is_resolved(e) {
                found = Some(e);
                break;
            }
            cursor += 1;
        }
        self.stamp[i] = self.epoch;
        self.cursor[i] = cursor;
        found
    }

    /// Rewinds all cursors in O(1) via an epoch bump (for searcher reuse
    /// across runs); the backing array keeps its allocation.
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SearchScratch, WeakSearchState};
    use nonsearch_graph::UndirectedCsr;

    #[test]
    fn cursor_advances_past_resolved_edges() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut scratch = SearchScratch::new();
        let mut state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();

        let e0 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e0).unwrap();
        let e1 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        assert_ne!(e0, e1);
        state.request(NodeId::new(0), e1).unwrap();
        let e2 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e2).unwrap();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_none());
    }

    #[test]
    fn undiscovered_vertex_yields_none() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let mut scratch = SearchScratch::new();
        let state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(1))
            .is_none());
    }

    #[test]
    fn reset_rewinds() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let mut scratch = SearchScratch::new();
        let state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_some());
        cursors.reset();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_some());
    }

    #[test]
    fn epoch_wrap_rewinds_too() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let mut scratch = SearchScratch::new();
        let state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();
        cursors.next_unexplored(state.view(), NodeId::new(0));
        cursors.epoch = u32::MAX;
        cursors.stamp[0] = u32::MAX;
        cursors.cursor[0] = 1; // pretend the cursor had advanced
        cursors.reset();
        assert_eq!(cursors.epoch, 1);
        // A wrapped reset must rewind to slot 0, not resume at 1.
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_some());
    }
}
