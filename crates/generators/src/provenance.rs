//! Construction provenance for evolving models.
//!
//! The paper's lower-bound machinery reasons about the *construction
//! process*, not just the resulting graph: the event `E_{a,b}` of Lemma 2
//! asks where every window vertex's **father** (`N_k`, the destination of
//! its outgoing edge) landed. Generators therefore record an
//! [`AttachmentTrace`] alongside the graph so that analysis code can check
//! such events on each sample without re-deriving them from topology.

use nonsearch_graph::NodeId;
use serde::{Deserialize, Serialize};

/// How an attachment target was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttachmentKind {
    /// Part of the fixed seed graph (e.g. the initial edge `2 → 1`).
    Seed,
    /// Drawn from the preferential (degree-weighted) component.
    Preferential,
    /// Drawn from the uniform component.
    Uniform,
}

/// One attachment decision: `child` chose `father` via `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttachmentRecord {
    /// The newly attached vertex (the edge source).
    pub child: NodeId,
    /// The chosen older vertex `N_child` (the edge destination).
    pub father: NodeId,
    /// Which mixture component produced the choice.
    pub kind: AttachmentKind,
}

/// The full attachment history of an evolving graph, in time order.
///
/// For tree models there is exactly one record per non-root vertex; for
/// multi-edge models (merged Móri, Cooper–Frieze) there is one record per
/// edge.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttachmentTrace {
    records: Vec<AttachmentRecord>,
}

impl AttachmentTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        AttachmentTrace {
            records: Vec::with_capacity(capacity),
        }
    }

    /// Appends a record (construction-time use).
    pub fn push(&mut self, record: AttachmentRecord) {
        self.records.push(record);
    }

    /// Number of recorded attachments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no attachments were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in time order.
    pub fn records(&self) -> &[AttachmentRecord] {
        &self.records
    }

    /// Iterator over records in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, AttachmentRecord> {
        self.records.iter()
    }

    /// The father `N_k` of the vertex with one-based label `k`, if the
    /// trace contains exactly one record for it (tree models).
    ///
    /// For multi-edge traces this returns the *first* father.
    pub fn father_of_label(&self, k: usize) -> Option<NodeId> {
        let child = NodeId::from_label(k);
        self.records
            .iter()
            .find(|r| r.child == child)
            .map(|r| r.father)
    }

    /// All fathers of the vertex with one-based label `k`, in time order.
    pub fn fathers_of_label(&self, k: usize) -> Vec<NodeId> {
        let child = NodeId::from_label(k);
        self.records
            .iter()
            .filter(|r| r.child == child)
            .map(|r| r.father)
            .collect()
    }

    /// Fraction of non-seed records drawn from the preferential component.
    ///
    /// Returns `None` if there are no non-seed records.
    pub fn preferential_fraction(&self) -> Option<f64> {
        let non_seed: Vec<_> = self
            .records
            .iter()
            .filter(|r| r.kind != AttachmentKind::Seed)
            .collect();
        if non_seed.is_empty() {
            return None;
        }
        let pref = non_seed
            .iter()
            .filter(|r| r.kind == AttachmentKind::Preferential)
            .count();
        Some(pref as f64 / non_seed.len() as f64)
    }
}

impl<'a> IntoIterator for &'a AttachmentTrace {
    type Item = &'a AttachmentRecord;
    type IntoIter = std::slice::Iter<'a, AttachmentRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl FromIterator<AttachmentRecord> for AttachmentTrace {
    fn from_iter<I: IntoIterator<Item = AttachmentRecord>>(iter: I) -> Self {
        AttachmentTrace {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(child: usize, father: usize, kind: AttachmentKind) -> AttachmentRecord {
        AttachmentRecord {
            child: NodeId::from_label(child),
            father: NodeId::from_label(father),
            kind,
        }
    }

    #[test]
    fn trace_accumulates_in_order() {
        let mut t = AttachmentTrace::new();
        assert!(t.is_empty());
        t.push(rec(2, 1, AttachmentKind::Seed));
        t.push(rec(3, 1, AttachmentKind::Preferential));
        t.push(rec(4, 3, AttachmentKind::Uniform));
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[2].child, NodeId::from_label(4));
    }

    #[test]
    fn father_lookup() {
        let t: AttachmentTrace = [
            rec(2, 1, AttachmentKind::Seed),
            rec(3, 2, AttachmentKind::Uniform),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.father_of_label(3), Some(NodeId::from_label(2)));
        assert_eq!(t.father_of_label(9), None);
    }

    #[test]
    fn multi_edge_fathers() {
        let t: AttachmentTrace = [
            rec(3, 1, AttachmentKind::Preferential),
            rec(3, 2, AttachmentKind::Uniform),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.fathers_of_label(3).len(), 2);
        assert_eq!(t.father_of_label(3), Some(NodeId::from_label(1)));
    }

    #[test]
    fn preferential_fraction_ignores_seed() {
        let t: AttachmentTrace = [
            rec(2, 1, AttachmentKind::Seed),
            rec(3, 1, AttachmentKind::Preferential),
            rec(4, 1, AttachmentKind::Uniform),
            rec(5, 1, AttachmentKind::Preferential),
        ]
        .into_iter()
        .collect();
        let f = t.preferential_fraction().unwrap();
        assert!((f - 2.0 / 3.0).abs() < 1e-12);

        let seed_only: AttachmentTrace = [rec(2, 1, AttachmentKind::Seed)].into_iter().collect();
        assert!(seed_only.preferential_fraction().is_none());
    }

    #[test]
    fn iteration() {
        let t: AttachmentTrace = [rec(2, 1, AttachmentKind::Seed)].into_iter().collect();
        assert_eq!(t.iter().count(), 1);
        assert_eq!((&t).into_iter().count(), 1);
    }
}
