//! Property-based tests: oracle accounting and searcher invariants on
//! random connected graphs.

use nonsearch_generators::{rng_from_seed, MergedMori};
use nonsearch_graph::{NodeId, UndirectedCsr};
use nonsearch_search::{
    run_strong, run_weak, SearchTask, SearcherKind, StrongBfs, StrongSearchState, SuccessCriterion,
    WeakSearchState,
};
use proptest::prelude::*;

/// A connected multigraph via the merged Móri generator.
fn connected_graph(n: usize, m: usize, p: f64, seed: u64) -> UndirectedCsr {
    MergedMori::sample(n, m, p, &mut rng_from_seed(seed))
        .unwrap()
        .undirected()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_searcher_finds_every_target_on_connected_graphs(
        n in 2usize..80,
        m in 1usize..3,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
        target_sel in 0usize..1000,
    ) {
        let graph = connected_graph(n, m, p, seed);
        let target = NodeId::new(target_sel % n);
        let task = SearchTask::new(NodeId::from_label(1), target)
            .with_budget(200 * n * m);
        let mut rng = rng_from_seed(seed ^ 0xABCD);
        for kind in SearcherKind::all() {
            let mut searcher = kind.build();
            let outcome = run_weak(&graph, &task, &mut *searcher, &mut rng).unwrap();
            prop_assert!(
                outcome.found,
                "{kind} missed {target:?} on n={n}, m={m}, p={p}"
            );
        }
    }

    #[test]
    fn request_counts_are_monotone_in_discovery(
        n in 2usize..60,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
    ) {
        // Discovered vertices ≤ requests + 1 always (each request reveals
        // at most one new vertex).
        let graph = connected_graph(n, 1, p, seed);
        let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n))
            .with_budget(100 * n);
        let mut rng = rng_from_seed(seed ^ 0xBEEF);
        for kind in SearcherKind::all() {
            let mut searcher = kind.build();
            let o = run_weak(&graph, &task, &mut *searcher, &mut rng).unwrap();
            prop_assert!(o.discovered <= o.requests + 1, "{kind}");
        }
    }

    #[test]
    fn neighbor_criterion_never_costs_more(
        n in 3usize..60,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
    ) {
        let graph = connected_graph(n, 1, p, seed);
        // Deterministic searcher ⇒ comparable runs.
        let strict_task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n))
            .with_budget(100 * n);
        let relaxed_task = strict_task.with_criterion(SuccessCriterion::ReachNeighbor);
        for kind in [SearcherKind::BfsFlood, SearcherKind::HighDegree, SearcherKind::Dfs] {
            let mut a = kind.build();
            let strict =
                run_weak(&graph, &strict_task, &mut *a, &mut rng_from_seed(1)).unwrap();
            let mut b = kind.build();
            let relaxed =
                run_weak(&graph, &relaxed_task, &mut *b, &mut rng_from_seed(1)).unwrap();
            prop_assert!(relaxed.requests <= strict.requests, "{kind}");
        }
    }

    #[test]
    fn weak_oracle_counts_every_request(
        n in 2usize..40,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
        steps in 1usize..50,
    ) {
        let graph = connected_graph(n, 1, p, seed);
        let mut state = WeakSearchState::new(&graph, NodeId::from_label(1)).unwrap();
        let mut issued = 0usize;
        let mut rng = rng_from_seed(seed);
        use rand::Rng;
        for _ in 0..steps {
            // Pick any discovered vertex with positive degree.
            let order = state.view().discovered().to_vec();
            let v = order[rng.gen_range(0..order.len())];
            let info = state.view().vertex(v).unwrap();
            if info.degree() == 0 {
                continue;
            }
            let e = info.incident()[rng.gen_range(0..info.degree())];
            state.request(v, e).unwrap();
            issued += 1;
            prop_assert_eq!(state.requests(), issued);
        }
    }

    #[test]
    fn strong_oracle_reveals_whole_neighborhoods(
        n in 2usize..40,
        m in 1usize..3,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
    ) {
        let graph = connected_graph(n, m, p, seed);
        let mut state = StrongSearchState::new(&graph, NodeId::from_label(1)).unwrap();
        let revealed = state.request(NodeId::from_label(1)).unwrap();
        prop_assert_eq!(revealed.len(), graph.degree(NodeId::from_label(1)));
        for v in revealed {
            prop_assert!(state.view().contains(v));
            prop_assert_eq!(state.view().degree_of(v), Some(graph.degree(v)));
        }
    }

    #[test]
    fn strong_and_weak_bfs_agree_on_reachability(
        n in 2usize..60,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
        target_sel in 0usize..1000,
    ) {
        let graph = connected_graph(n, 1, p, seed);
        let target = NodeId::new(target_sel % n);
        let task = SearchTask::new(NodeId::from_label(1), target)
            .with_budget(100 * n);
        let weak = run_weak(
            &graph,
            &task,
            &mut *SearcherKind::BfsFlood.build(),
            &mut rng_from_seed(0),
        )
        .unwrap();
        let strong =
            run_strong(&graph, &task, &mut StrongBfs::new(), &mut rng_from_seed(0))
                .unwrap();
        prop_assert_eq!(weak.found, strong.found);
        // The strong oracle is at least as informative per request.
        prop_assert!(strong.requests <= weak.requests.max(1));
    }
}
