//! The weak local-knowledge oracle and the weak-searcher interface.

use crate::{DiscoveredView, SearchError, SearchScratch, SearchTask};
use nonsearch_graph::{EdgeId, NodeId, UndirectedCsr};
use rand::RngCore;

/// Oracle state for a weak-model search over one graph.
///
/// Wraps the true graph, the searcher's [`DiscoveredView`] (borrowed
/// from a reusable [`SearchScratch`]), and the request counter.
/// Algorithms cannot touch the graph directly; every bit of information
/// flows through [`request`](WeakSearchState::request), which costs one
/// unit.
///
/// # Example
///
/// ```
/// use nonsearch_graph::{NodeId, UndirectedCsr};
/// use nonsearch_search::{SearchScratch, WeakSearchState};
///
/// let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2)])?;
/// let mut scratch = SearchScratch::new();
/// let mut state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0))?;
/// let e = state.view().vertex(NodeId::new(0)).unwrap().incident()[0];
/// let v = state.request(NodeId::new(0), e)?;
/// assert_eq!(v, NodeId::new(1));
/// assert_eq!(state.requests(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct WeakSearchState<'s, 'g> {
    graph: &'g UndirectedCsr,
    scratch: &'s mut SearchScratch,
    requests: usize,
}

impl<'s, 'g> WeakSearchState<'s, 'g> {
    /// Starts a search at `start` using `scratch`'s view: the searcher
    /// knows `start`, its degree and its incident edge handles, at no
    /// request cost. The scratch is reset (O(1) epoch bump) first, so
    /// reuse across trials is observationally identical to fresh state.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::TaskOutOfBounds`] if `start` is not in the
    /// graph.
    pub fn new_in(
        scratch: &'s mut SearchScratch,
        graph: &'g UndirectedCsr,
        start: NodeId,
    ) -> crate::Result<Self> {
        if start.index() >= graph.node_count() {
            return Err(SearchError::TaskOutOfBounds {
                vertex: start,
                node_count: graph.node_count(),
            });
        }
        scratch.begin(graph);
        scratch
            .view
            .insert_vertex_from_slots(start, graph.incident(start));
        Ok(WeakSearchState {
            graph,
            scratch,
            requests: 0,
        })
    }

    /// The searcher's current knowledge.
    pub fn view(&self) -> &DiscoveredView {
        &self.scratch.view
    }

    /// Requests issued so far — the paper's cost measure.
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// Issues the weak-model request `(u, e)`: reveals the identity of
    /// the far endpoint of `e` and that vertex's incident edge list.
    /// Costs one request, *including* redundant re-requests.
    ///
    /// # Errors
    ///
    /// * [`SearchError::UndiscoveredVertex`] if `u` is not discovered.
    /// * [`SearchError::UnknownIncidence`] if `e` is not incident to `u`.
    pub fn request(&mut self, u: NodeId, e: EdgeId) -> crate::Result<NodeId> {
        let Some(info) = self.scratch.view.vertex(u) else {
            return Err(SearchError::UndiscoveredVertex { vertex: u });
        };
        if !info.incident().contains(&e) {
            return Err(SearchError::UnknownIncidence { vertex: u, edge: e });
        }
        self.requests += 1;
        let (a, b) = self
            .graph
            .edge_endpoints(e)
            .expect("edge handle came from the graph");
        let other = if a == u { b } else { a };
        self.scratch.view.resolve_edge(u, e, other);
        self.scratch
            .view
            .insert_vertex_from_slots(other, self.graph.incident(other));
        Ok(other)
    }
}

/// A weak-model search algorithm.
///
/// Implementations see only the [`DiscoveredView`] (plus the task) and
/// emit `(vertex, edge)` requests; returning `None` abandons the search.
/// The runner invokes [`WeakSearcher::observe`] with the oracle's answer
/// so stateful algorithms (walks) can advance.
pub trait WeakSearcher {
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the next request, or `None` to give up.
    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)>;

    /// Observes the answer to the previous request (default: ignore).
    fn observe(&mut self, _request: (NodeId, EdgeId), _revealed: NodeId) {}

    /// Resets internal state so the searcher can be reused for a new run.
    fn reset(&mut self) {}

    /// Pre-sizes internal buffers for a graph with `nodes` vertices and
    /// `edges` edges, so even a first trial allocates nothing (default:
    /// ignore). The runners call this right after
    /// [`reset`](WeakSearcher::reset); a no-op once large enough.
    fn reserve(&mut self, _nodes: usize, _edges: usize) {}

    /// Cumulative count of resolved frontier slots this searcher's
    /// cursors have skipped past (see
    /// [`FrontierCursors::rescans`](crate::FrontierCursors::rescans)).
    /// Default `0` for searchers that keep no cursors; metrics
    /// consumers take before/after deltas per trial.
    fn frontier_rescans(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::UndirectedCsr;

    fn path3() -> UndirectedCsr {
        UndirectedCsr::from_edges(3, [(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn start_is_free_and_known() {
        let g = path3();
        let mut scratch = SearchScratch::new();
        let s = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(1)).unwrap();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.view().len(), 1);
        assert_eq!(s.view().degree_of(NodeId::new(1)), Some(2));
    }

    #[test]
    fn request_reveals_far_endpoint_and_its_edges() {
        let g = path3();
        let mut scratch = SearchScratch::new();
        let mut s = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let e0 = s.view().vertex(NodeId::new(0)).unwrap().incident()[0];
        let v = s.request(NodeId::new(0), e0).unwrap();
        assert_eq!(v, NodeId::new(1));
        assert_eq!(s.view().degree_of(NodeId::new(1)), Some(2));
        assert_eq!(s.requests(), 1);
        // The edge is resolved in both directions.
        assert_eq!(
            s.view().other_endpoint(NodeId::new(0), e0),
            Some(NodeId::new(1))
        );
    }

    #[test]
    fn redundant_requests_still_cost() {
        let g = path3();
        let mut scratch = SearchScratch::new();
        let mut s = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let e0 = s.view().vertex(NodeId::new(0)).unwrap().incident()[0];
        s.request(NodeId::new(0), e0).unwrap();
        s.request(NodeId::new(0), e0).unwrap();
        assert_eq!(s.requests(), 2);
    }

    #[test]
    fn protocol_violations_are_errors() {
        let g = path3();
        let mut scratch = SearchScratch::new();
        let mut s = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        // Vertex 2 not discovered.
        let any_edge = EdgeId::new(1);
        assert!(matches!(
            s.request(NodeId::new(2), any_edge),
            Err(SearchError::UndiscoveredVertex { .. })
        ));
        // Edge 1 is not incident to vertex 0.
        assert!(matches!(
            s.request(NodeId::new(0), EdgeId::new(1)),
            Err(SearchError::UnknownIncidence { .. })
        ));
        // Errors cost nothing.
        assert_eq!(s.requests(), 0);
    }

    #[test]
    fn bad_start_rejected() {
        let g = path3();
        let mut scratch = SearchScratch::new();
        assert!(matches!(
            WeakSearchState::new_in(&mut scratch, &g, NodeId::new(9)),
            Err(SearchError::TaskOutOfBounds { .. })
        ));
    }

    #[test]
    fn self_loop_request_returns_self() {
        let g = UndirectedCsr::from_edges(1, [(0, 0)]).unwrap();
        let mut scratch = SearchScratch::new();
        let mut s = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let e = s.view().vertex(NodeId::new(0)).unwrap().incident()[0];
        let v = s.request(NodeId::new(0), e).unwrap();
        assert_eq!(v, NodeId::new(0));
    }

    #[test]
    fn scratch_reuse_starts_clean() {
        let g = path3();
        let mut scratch = SearchScratch::new();
        {
            let mut s = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
            let e0 = s.view().vertex(NodeId::new(0)).unwrap().incident()[0];
            s.request(NodeId::new(0), e0).unwrap();
            assert_eq!(s.view().len(), 2);
        }
        // Second search on the same scratch sees none of the first.
        let s = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(2)).unwrap();
        assert_eq!(s.view().len(), 1);
        assert!(!s.view().contains(NodeId::new(0)));
        assert_eq!(s.requests(), 0);
    }
}
