//! E5 — Lemma 2: the window `[[a+1, b]]` is equivalent conditional on
//! `E_{a,b}`.
//!
//! Exact verification by enumeration for small trees (distribution
//! literally invariant under window transpositions), plus a statistical
//! symmetry test on sampled larger trees.

use nonsearch_analysis::Table;
use nonsearch_bench::{banner, trials};
use nonsearch_core::{exact_window_exchangeability, sampled_window_symmetry, EquivalenceWindow};

fn main() {
    banner(
        "E5 / Lemma 2 (vertex equivalence)",
        "conditional on E_{a,b}, window vertices are interchangeable: \
         exact check on small trees, z-test on sampled trees",
    );

    println!("exact enumeration check (trees of size b ≤ 9):");
    let mut exact_table =
        Table::with_columns(&["p", "window", "event mass", "max discrepancy", "verdict"]);
    for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        for (a, b) in [(4usize, 7usize), (5, 8), (6, 9)] {
            let w = EquivalenceWindow::with_bounds(a, b);
            let check = exact_window_exchangeability(&w, p).expect("small trees enumerate");
            exact_table.row(vec![
                format!("{p:.2}"),
                format!("[[{}..{}]]", a + 1, b),
                format!("{:.5}", check.event_mass),
                format!("{:.2e}", check.max_discrepancy),
                if check.is_exchangeable(1e-12) {
                    "exchangeable".into()
                } else {
                    "BROKEN".into()
                },
            ]);
        }
    }
    println!("{exact_table}");

    println!("sampled symmetry check (father-label means must match across positions):");
    let mut sampled_table = Table::with_columns(&[
        "p",
        "anchor a",
        "window |V|",
        "accepted",
        "max |z|",
        "verdict",
    ]);
    let sample_trials = trials(5_000);
    for &p in &[0.3, 0.6, 0.9] {
        for &a in &[50usize, 200] {
            let w = EquivalenceWindow::from_anchor(a);
            let report = sampled_window_symmetry(&w, p, sample_trials, 0xE5)
                .expect("event has constant probability, some trials accept");
            sampled_table.row(vec![
                format!("{p:.2}"),
                a.to_string(),
                w.len().to_string(),
                format!("{}/{}", report.accepted, report.attempted),
                format!("{:.2}", report.max_z),
                if report.max_z < 4.0 {
                    "consistent".into()
                } else {
                    "suspicious".into()
                },
            ]);
        }
    }
    println!("{sampled_table}");
    println!("(|z| is a max over O(|V|²) comparisons; values under ~4 are");
    println!("what exchangeability predicts at these sample sizes.)");
}
