//! Numeric lower bounds: Lemma 1 and the theorems' concrete values.

use crate::theory::{check_probability, mori_event_probability_exact, CoreError};
use crate::window::EquivalenceWindow;
use std::fmt;

/// Lemma 1: if a set `V` of vertices is equivalent conditional on `E`,
/// any weak-model search for a `v ∈ V` costs at least `|V|·P(E)/2`
/// expected requests.
///
/// Intuition: conditional on `E`, the searcher cannot distinguish the
/// `|V|` window vertices, so in expectation it must touch half of them
/// before hitting the right one.
pub fn lemma1_lower_bound(window_size: usize, event_probability: f64) -> f64 {
    window_size as f64 * event_probability / 2.0
}

/// The concrete Theorem 1 lower bound for finding vertex `n` in the Móri
/// model with parameter `p` (weak model): `|V|·P(E_{a,b})/2` with
/// `a = n−1` and the Lemma 3 window. Grows as `Ω(√n)`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `n < 3` or `p ∉ [0, 1]`.
pub fn theorem1_weak_bound(n: usize, p: f64) -> crate::Result<f64> {
    check_probability("p", p)?;
    if n < 3 {
        return Err(CoreError::invalid("n", n, "a target index ≥ 3"));
    }
    let window = EquivalenceWindow::for_target(n);
    let prob = mori_event_probability_exact(window.a(), window.b(), p)?;
    Ok(lemma1_lower_bound(window.len(), prob))
}

/// The Theorem 2 shape for Cooper–Frieze models: the same `|V|·P(E)/2`
/// with a window of `Θ(√n)` equivalent vertices. The event probability
/// is model-dependent; this helper takes a measured/estimated `P(E)` and
/// applies Lemma 1 with the Lemma 3 window size.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `n < 3` or
/// `event_probability ∉ [0, 1]`.
pub fn theorem2_weak_bound(n: usize, event_probability: f64) -> crate::Result<f64> {
    check_probability("event_probability", event_probability)?;
    if n < 3 {
        return Err(CoreError::invalid("n", n, "a target index ≥ 3"));
    }
    let window = EquivalenceWindow::for_target(n);
    Ok(lemma1_lower_bound(window.len(), event_probability))
}

/// Comparison of a theoretical lower bound against a measured mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundComparison {
    /// Problem size.
    pub n: usize,
    /// The Lemma 1 lower bound.
    pub bound: f64,
    /// The measured expected request count (best algorithm).
    pub measured: f64,
}

impl BoundComparison {
    /// `true` if the measurement respects the bound (sanity: a correct
    /// lower bound can never exceed a correct measurement).
    pub fn holds(&self) -> bool {
        self.measured >= self.bound
    }

    /// Measured-to-bound ratio (≥ 1 when the bound holds).
    pub fn slack(&self) -> f64 {
        self.measured / self.bound
    }
}

impl fmt::Display for BoundComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={}: bound {:.1} ≤ measured {:.1} (slack {:.2}×, {})",
            self.n,
            self.bound,
            self.measured,
            self.slack(),
            if self.holds() { "ok" } else { "VIOLATED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_arithmetic() {
        assert_eq!(lemma1_lower_bound(100, 0.5), 25.0);
        assert_eq!(lemma1_lower_bound(0, 0.9), 0.0);
    }

    #[test]
    fn theorem1_bound_grows_like_sqrt() {
        let p = 0.6;
        let b1 = theorem1_weak_bound(1_000, p).unwrap();
        let b2 = theorem1_weak_bound(100_000, p).unwrap();
        let ratio = b2 / b1;
        assert!((ratio - 10.0).abs() < 1.0, "ratio = {ratio}");
    }

    #[test]
    fn theorem1_bound_is_positive_and_below_window() {
        for &p in &[0.1, 0.5, 1.0] {
            let n = 10_000;
            let b = theorem1_weak_bound(n, p).unwrap();
            let window = EquivalenceWindow::for_target(n);
            assert!(b > 0.0);
            assert!(b <= window.len() as f64 / 2.0 + 1e-12);
        }
    }

    #[test]
    fn higher_p_gives_larger_event_probability_and_bound() {
        let lo = theorem1_weak_bound(10_000, 0.1).unwrap();
        let hi = theorem1_weak_bound(10_000, 0.9).unwrap();
        assert!(hi > lo);
    }

    #[test]
    fn theorem2_applies_lemma1() {
        let b = theorem2_weak_bound(10_001, 0.5).unwrap();
        // Window for target 10001 has ⌊√9999⌋ = 99 members.
        assert!((b - 99.0 * 0.5 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(theorem1_weak_bound(2, 0.5).is_err());
        assert!(theorem1_weak_bound(100, 1.5).is_err());
        assert!(theorem2_weak_bound(100, -0.1).is_err());
    }

    #[test]
    fn comparison_reporting() {
        let c = BoundComparison {
            n: 1000,
            bound: 10.0,
            measured: 25.0,
        };
        assert!(c.holds());
        assert!((c.slack() - 2.5).abs() < 1e-12);
        assert!(c.to_string().contains("ok"));
        let bad = BoundComparison {
            n: 1000,
            bound: 30.0,
            measured: 25.0,
        };
        assert!(!bad.holds());
        assert!(bad.to_string().contains("VIOLATED"));
    }
}
