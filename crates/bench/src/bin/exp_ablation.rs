//! E13 — ablations over the search-model knobs DESIGN.md calls out:
//! oracle strength, success criterion, and start-vertex policy.

use nonsearch_analysis::Table;
use nonsearch_bench::{
    banner, strong_cell, sweep, trials, weak_cell_with_policy, StartPolicy, StrongKind,
};
use nonsearch_core::MergedMoriModel;
use nonsearch_generators::SeedSequence;
use nonsearch_search::{SearcherKind, SuccessCriterion};

fn main() {
    banner(
        "E13 / ablations",
        "none of the model knobs (oracle strength, success criterion, \
         start policy) changes the Ω(√n)-shaped cost of finding vertex n",
    );

    let model = MergedMoriModel { p: 0.6, m: 1 };
    let sizes = sweep(&[1024, 4096, 16384]);
    let trial_count = trials(10);
    let seeds = SeedSequence::new(0xE13);

    // Knob 1: weak vs strong vs simulated-strong oracle.
    println!("oracle strength (high-degree strategy):");
    let mut t1 = Table::with_columns(&["oracle", "n", "mean requests", "success"]);
    for (si, &n) in sizes.iter().enumerate() {
        let weak = weak_cell_with_policy(
            &model,
            n,
            SearcherKind::HighDegree,
            SuccessCriterion::DiscoverTarget,
            StartPolicy::OldestHub,
            trial_count,
            30,
            &seeds.subsequence(si as u64),
        );
        t1.row(vec![
            "weak".into(),
            n.to_string(),
            format!("{:.1}", weak.mean),
            format!("{:.2}", weak.success),
        ]);
        let sim = weak_cell_with_policy(
            &model,
            n,
            SearcherKind::SimStrongHighDegree,
            SuccessCriterion::DiscoverTarget,
            StartPolicy::OldestHub,
            trial_count,
            30,
            &seeds.subsequence(100 + si as u64),
        );
        t1.row(vec![
            "simulated-strong".into(),
            n.to_string(),
            format!("{:.1}", sim.mean),
            format!("{:.2}", sim.success),
        ]);
        let strong = strong_cell(
            &model,
            n,
            StrongKind::HighDegree,
            trial_count,
            &seeds.subsequence(200 + si as u64),
        );
        t1.row(vec![
            "strong (native)".into(),
            n.to_string(),
            format!("{:.1}", strong.mean),
            format!("{:.2}", strong.success),
        ]);
    }
    println!("{t1}");

    // Knob 2: success criterion.
    println!("success criterion (high-degree strategy, weak oracle):");
    let mut t2 = Table::with_columns(&["criterion", "n", "mean requests", "success"]);
    for (si, &n) in sizes.iter().enumerate() {
        for (criterion, name) in [
            (SuccessCriterion::DiscoverTarget, "discover target"),
            (SuccessCriterion::ReachNeighbor, "reach neighbor"),
        ] {
            let cell = weak_cell_with_policy(
                &model,
                n,
                SearcherKind::HighDegree,
                criterion,
                StartPolicy::OldestHub,
                trial_count,
                30,
                &seeds.subsequence(300 + si as u64),
            );
            t2.row(vec![
                name.into(),
                n.to_string(),
                format!("{:.1}", cell.mean),
                format!("{:.2}", cell.success),
            ]);
        }
    }
    println!("{t2}");

    // Knob 3: start policy.
    println!("start vertex policy (high-degree strategy, weak oracle):");
    let mut t3 = Table::with_columns(&["start", "n", "mean requests", "success"]);
    for (si, &n) in sizes.iter().enumerate() {
        for policy in [
            StartPolicy::OldestHub,
            StartPolicy::Uniform,
            StartPolicy::NearTarget,
        ] {
            let cell = weak_cell_with_policy(
                &model,
                n,
                SearcherKind::HighDegree,
                SuccessCriterion::DiscoverTarget,
                policy,
                trial_count,
                30,
                &seeds.subsequence(400 + si as u64),
            );
            t3.row(vec![
                policy.name().into(),
                n.to_string(),
                format!("{:.1}", cell.mean),
                format!("{:.2}", cell.success),
            ]);
        }
    }
    println!("{t3}");
    println!("expected shape: every row grows with n at the same √n-like rate;");
    println!("neighbor criterion and strong oracle shave constants, not the");
    println!("exponent — and starting next to the target barely helps, because");
    println!("label adjacency is not graph adjacency in these models.");
}
