//! Deliberate violation: wall clock outside the obs seam.

pub fn stamp() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
