//! `nonsearch_corpus` — the persistent graph-ensemble store.
//!
//! The paper's claims quantify over *ensembles* of random scale-free
//! graphs, yet generate-per-trial experiments pay the (dominant, for
//! large `n`) generation cost on every run and can never share samples.
//! This crate persists ensembles once and serves them to every
//! experiment:
//!
//! * [`nsg`] — a compact little-endian binary CSR format (`.nsg`) with
//!   header, versioning, and FNV-1a checksums; the reader loads
//!   straight into `nonsearch_graph` CSR buffers
//!   ([`UndirectedCsr::from_raw_parts`](nonsearch_graph::UndirectedCsr::from_raw_parts)),
//!   preserving the exact incidence-slot order — or, via
//!   [`nsg::map_graph_file`] and [`MappedFile`], *borrows* them
//!   zero-copy out of a memory-mapped file
//!   ([`UndirectedCsr::from_csr_bytes`](nonsearch_graph::UndirectedCsr::from_csr_bytes)),
//!   so corpora larger than RAM serve graphs at page-cache cost.
//! * [`Manifest`] — `manifest.json` indexes generator params, root
//!   seed, per-graph files/checksums, and the volatile build envelope.
//! * [`build`] — the deterministic builder: generation sharded across
//!   the engine's worker pool, per-graph seed streams derived from
//!   `(seed, size_idx, trial)` exactly as the certification sweep
//!   derives them, output bit-identical for any `--threads`.
//! * [`degree_preserving_rewire`](nonsearch_generators::degree_preserving_rewire)
//!   variants — each stored graph can carry `k` rewired null models
//!   (same degree sequence, randomized wiring).
//! * [`Corpus`] / [`CorpusSource`] — the corpus-backed
//!   [`GraphSource`](nonsearch_engine::GraphSource): trials map onto
//!   stored graphs round-robin, with cached shared loads.
//! * [`cli`] — the `xp corpus build | info | verify` subcommands.
//! * Self-healing ([`Corpus::open_healing`], `corpus verify --heal`) —
//!   a corrupt stored file is quarantined to `quarantine/` and
//!   **regenerated** from the manifest's model spec and seed
//!   derivation, byte-identical to the original, then re-checked
//!   against the manifest checksum; [`force_heap_fallback`] is the
//!   chaos seam proving the mmap fallback is invisible.
//!
//! # Example
//!
//! ```
//! use nonsearch_corpus::{build, BuildSpec, Corpus};
//! use nonsearch_engine::GraphSource;
//! use nonsearch_generators::SeedSequence;
//!
//! let dir = std::env::temp_dir().join(format!("corpus_doc_{}", std::process::id()));
//! let spec = BuildSpec {
//!     sizes: vec![32],
//!     trials: 2,
//!     variants: 1,
//!     threads: 1,
//!     ..BuildSpec::default()
//! };
//! build(&dir, &spec)?;
//!
//! let corpus = Corpus::open(&dir)?;
//! assert_eq!(corpus.manifest().graphs.len(), 2);
//! let source = corpus.source();
//! let g = source.trial_graph(32, 0, &SeedSequence::new(0));
//! assert_eq!(g.node_count(), 32);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), nonsearch_corpus::CorpusError>(())
//! ```

// `unsafe` is denied crate-wide and allowed only in `mmap`, the
// hand-rolled `mmap(2)` FFI wrapper behind zero-copy graph loads.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod cli;
mod error;
mod manifest;
mod mmap;
mod model_spec;
pub mod nsg;
mod store;

pub use builder::{build, BuildReport, BuildSpec, GRAPHS_DIR};
pub use error::CorpusError;
pub use manifest::{BuildInfo, GraphEntry, Manifest, VariantEntry, MANIFEST_FILE};
pub use mmap::{force_heap_fallback, MappedFile};
pub use model_spec::{parse_model, BoxedModel, DEFAULT_MODEL_SPEC};
pub use store::{Corpus, CorpusSource, LoadMode, VerifyReport, QUARANTINE_DIR};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, CorpusError>;
