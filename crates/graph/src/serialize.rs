//! Persistence: a serde-friendly record type and a plain-text edge-list
//! format (`n` on the first line, then one `u v` pair per line, zero-based).

use crate::{GraphError, Result, UndirectedCsr};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};

/// A serializable snapshot of an undirected multigraph.
///
/// `GraphRecord` is the interchange form: it derives serde traits so graphs
/// can be embedded in experiment manifests, and converts losslessly to and
/// from [`UndirectedCsr`] (edge order, and therefore edge ids, are
/// preserved).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphRecord {
    /// Number of vertices.
    pub nodes: usize,
    /// Zero-based undirected edges in id order.
    pub edges: Vec<(usize, usize)>,
}

impl GraphRecord {
    /// Snapshots `graph` into a record.
    pub fn from_graph(graph: &UndirectedCsr) -> GraphRecord {
        GraphRecord {
            nodes: graph.node_count(),
            edges: graph
                .edges()
                .map(|(_, (u, v))| (u.index(), v.index()))
                .collect(),
        }
    }

    /// Rebuilds the CSR graph from this record.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an edge references a
    /// vertex `≥ nodes`.
    pub fn to_graph(&self) -> Result<UndirectedCsr> {
        UndirectedCsr::from_edges(self.nodes, self.edges.iter().copied())
    }
}

impl From<&UndirectedCsr> for GraphRecord {
    fn from(g: &UndirectedCsr) -> Self {
        GraphRecord::from_graph(g)
    }
}

/// Writes `graph` as a plain-text edge list.
///
/// Format: first line `n`, then one `u v` pair per line (zero-based),
/// in edge-id order.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_edge_list<W: Write>(graph: &UndirectedCsr, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{}", graph.node_count())?;
    for (_, (u, v)) in graph.edges() {
        writeln!(writer, "{} {}", u.index(), v.index())?;
    }
    Ok(())
}

/// Reads a graph from the plain-text edge-list format produced by
/// [`write_edge_list`]. A `&mut` reference to a reader also works.
///
/// Blank lines and lines starting with `#` are ignored.
///
/// # Errors
///
/// Returns [`GraphError::ParseEdgeList`] for malformed content; I/O errors
/// surface as `ParseEdgeList` with the underlying message.
pub fn read_edge_list<R: Read>(reader: R) -> Result<UndirectedCsr> {
    let buf = BufReader::new(reader);
    let mut nodes: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line.map_err(|e| GraphError::ParseEdgeList {
            line: lineno + 1,
            reason: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        if nodes.is_none() {
            let n = fields
                .next()
                .expect("non-empty line has a field")
                .parse::<usize>()
                .map_err(|e| GraphError::ParseEdgeList {
                    line: lineno + 1,
                    reason: format!("bad vertex count: {e}"),
                })?;
            if fields.next().is_some() {
                return Err(GraphError::ParseEdgeList {
                    line: lineno + 1,
                    reason: "header line must contain a single integer".into(),
                });
            }
            nodes = Some(n);
            continue;
        }
        let parse = |field: Option<&str>| -> Result<usize> {
            field
                .ok_or_else(|| GraphError::ParseEdgeList {
                    line: lineno + 1,
                    reason: "expected two fields".into(),
                })?
                .parse::<usize>()
                .map_err(|e| GraphError::ParseEdgeList {
                    line: lineno + 1,
                    reason: format!("bad endpoint: {e}"),
                })
        };
        let u = parse(fields.next())?;
        let v = parse(fields.next())?;
        if fields.next().is_some() {
            return Err(GraphError::ParseEdgeList {
                line: lineno + 1,
                reason: "expected exactly two fields".into(),
            });
        }
        edges.push((u, v));
    }
    let nodes = nodes.ok_or(GraphError::ParseEdgeList {
        line: 0,
        reason: "missing header line with vertex count".into(),
    })?;
    UndirectedCsr::from_edges(nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UndirectedCsr {
        UndirectedCsr::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 0)]).unwrap()
    }

    #[test]
    fn record_roundtrip() {
        let g = sample();
        let rec = GraphRecord::from_graph(&g);
        let back = rec.to_graph().unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn record_rejects_bad_edges() {
        let rec = GraphRecord {
            nodes: 2,
            edges: vec![(0, 5)],
        };
        assert!(rec.to_graph().is_err());
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn text_format_shape() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "2\n0 1\n");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\n3\n# edges follow\n0 1\n\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_inputs_error_with_line() {
        let e = read_edge_list("3\n0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, GraphError::ParseEdgeList { line: 2, .. }));

        let e = read_edge_list("x\n".as_bytes()).unwrap_err();
        assert!(matches!(e, GraphError::ParseEdgeList { line: 1, .. }));

        let e = read_edge_list("3\n0 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(e, GraphError::ParseEdgeList { line: 2, .. }));

        let e = read_edge_list("".as_bytes()).unwrap_err();
        assert!(matches!(e, GraphError::ParseEdgeList { line: 0, .. }));
    }

    #[test]
    fn out_of_range_edge_rejected() {
        assert!(read_edge_list("2\n0 7\n".as_bytes()).is_err());
    }

    fn text_roundtrip_of(g: &UndirectedCsr) -> UndirectedCsr {
        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        read_edge_list(buf.as_slice()).unwrap()
    }

    #[test]
    fn empty_graph_roundtrips_in_both_forms() {
        let g = UndirectedCsr::from_edges(0, []).unwrap();
        assert_eq!(text_roundtrip_of(&g), g);
        let rec = GraphRecord::from_graph(&g);
        assert_eq!(rec.nodes, 0);
        assert!(rec.edges.is_empty());
        assert_eq!(rec.to_graph().unwrap(), g);
    }

    #[test]
    fn single_isolated_node_roundtrips() {
        let g = UndirectedCsr::from_edges(1, []).unwrap();
        let back = text_roundtrip_of(&g);
        assert_eq!(back.node_count(), 1);
        assert_eq!(back.edge_count(), 0);
        assert_eq!(GraphRecord::from_graph(&g).to_graph().unwrap(), g);
    }

    #[test]
    fn roundtrip_preserves_self_loop_free_invariant() {
        use crate::GraphProperties;
        // A simple (loop-free) graph must come back loop-free; a graph
        // with a loop must come back with exactly that loop.
        let simple = UndirectedCsr::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(simple.self_loop_count(), 0);
        assert_eq!(text_roundtrip_of(&simple).self_loop_count(), 0);

        let looped = sample();
        assert_eq!(looped.self_loop_count(), 1);
        assert_eq!(text_roundtrip_of(&looped).self_loop_count(), 1);
    }

    #[test]
    fn max_degree_star_roundtrips_with_hub_intact() {
        let hub_degree = 40;
        let g =
            UndirectedCsr::from_edges(hub_degree + 1, (1..=hub_degree).map(|i| (0, i))).unwrap();
        let back = text_roundtrip_of(&g);
        assert_eq!(back, g);
        let (hub, d) = back.max_degree().unwrap();
        assert_eq!(hub.index(), 0);
        assert_eq!(d, hub_degree);
    }

    #[test]
    fn serialize_errors_are_std_errors_with_displays() {
        // Both failure paths of this module surface as GraphError, which
        // must satisfy the same Error + Display contract as graph::error.
        let parse_err = read_edge_list("3\n0\n".as_bytes()).unwrap_err();
        let rec_err = GraphRecord {
            nodes: 1,
            edges: vec![(0, 3)],
        }
        .to_graph()
        .unwrap_err();
        for e in [parse_err, rec_err] {
            let boxed: Box<dyn std::error::Error> = Box::new(e);
            assert!(!boxed.to_string().is_empty());
        }
    }
}
