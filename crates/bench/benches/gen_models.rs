//! Generator throughput: vertices/second for each graph model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonsearch_generators::{
    power_law_degree_sequence, rng_from_seed, BarabasiAlbert, ConfigModel, CooperFrieze,
    CooperFriezeConfig, KleinbergGrid, MergedMori, MoriTree, PowerLawConfig, SimplificationPolicy,
    UniformAttachment,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("mori_tree_p05", n), &n, |b, &n| {
            let mut rng = rng_from_seed(1);
            b.iter(|| MoriTree::sample(n, 0.5, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("merged_mori_m3", n), &n, |b, &n| {
            let mut rng = rng_from_seed(2);
            b.iter(|| MergedMori::sample(n, 3, 0.5, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cooper_frieze", n), &n, |b, &n| {
            let cfg = CooperFriezeConfig::balanced(0.7).unwrap();
            let mut rng = rng_from_seed(3);
            b.iter(|| CooperFrieze::sample(n, &cfg, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("barabasi_albert_m2", n), &n, |b, &n| {
            let mut rng = rng_from_seed(4);
            b.iter(|| BarabasiAlbert::sample(n, 2, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("uniform_attachment", n), &n, |b, &n| {
            let mut rng = rng_from_seed(5);
            b.iter(|| UniformAttachment::sample(n, 1, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("config_model_k23", n), &n, |b, &n| {
            let cfg = PowerLawConfig::new(2.3, 1).unwrap();
            let mut rng = rng_from_seed(6);
            b.iter(|| {
                let degrees = power_law_degree_sequence(n, &cfg, &mut rng).unwrap();
                ConfigModel::sample(&degrees, SimplificationPolicy::Multigraph, &mut rng).unwrap()
            });
        });
    }
    group.bench_function("kleinberg_grid_64_r2", |b| {
        let mut rng = rng_from_seed(7);
        b.iter(|| KleinbergGrid::sample(64, 2.0, 1, &mut rng).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
