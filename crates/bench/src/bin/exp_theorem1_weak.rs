//! E1 — Theorem 1, weak model: any local search for vertex `n` in the
//! (merged) Móri model needs `Ω(n^{1/2})` expected requests.
//!
//! Sweeps `p × m × n`, races the searcher suite, fits each algorithm's
//! scaling exponent and prints the per-size Lemma 1 lower bound next to
//! the best measured mean.

use nonsearch_analysis::Table;
use nonsearch_bench::{banner, quick, sweep, trials};
use nonsearch_core::{certify, theorem1_weak_bound, CertifyConfig, MergedMoriModel};
use nonsearch_search::{SearcherKind, SuccessCriterion};

fn main() {
    banner(
        "E1 / Theorem 1 (weak model)",
        "expected requests to find vertex n in Móri(p, m) is Ω(n^0.5); \
         measured best-algorithm exponent should be ≥ ~0.5",
    );

    let sizes = sweep(&[512, 1024, 2048, 4096, 8192, 16384]);
    let trial_count = trials(12);
    let p_values = if quick() {
        vec![0.6]
    } else {
        vec![0.3, 0.6, 1.0]
    };
    let m_values = if quick() { vec![1] } else { vec![1, 3] };

    for &p in &p_values {
        for &m in &m_values {
            let model = MergedMoriModel { p, m };
            let config = CertifyConfig {
                sizes: sizes.clone(),
                trials: trial_count,
                seed: 0xE1,
                searchers: SearcherKind::informed().to_vec(),
                criterion: SuccessCriterion::DiscoverTarget,
                budget_multiplier: 30,
            };
            let report = certify(&model, &config);
            println!("{report}");

            let mut bound_table =
                Table::with_columns(&["n", "lemma1 bound", "best measured", "slack"]);
            let best = report.best_algorithm().expect("suite is non-empty");
            for pt in &best.points {
                let bound = theorem1_weak_bound(pt.n, p).expect("valid n, p");
                bound_table.row(vec![
                    pt.n.to_string(),
                    format!("{bound:.1}"),
                    format!("{:.1}", pt.mean_requests),
                    format!("{:.1}x", pt.mean_requests / bound),
                ]);
            }
            println!("lower bound vs best ({}):", best.kind.name());
            println!("{bound_table}");
            if let Some(expo) = report.best_exponent() {
                println!("fitted exponent of best algorithm: {expo:.3} (theory: ≥ 0.5)\n");
            }
        }
    }
}
