//! Corpus-backed trial setup vs regenerate-per-trial.
//!
//! The corpus's reason to exist is amortizing generation: a trial's
//! setup cost drops from "run the generator" to "load (once) and share
//! an `Arc`". This bench measures the paths for BA(m=2) at
//! n ∈ {1 000, 10 000} — regeneration, cold/warm heap decodes, and the
//! cold/warm zero-copy `mmap` lanes — and, beyond criterion's console
//! output, writes a `BENCH_corpus_load.json` record so the repo's perf
//! trajectory captures the win over time (CI uploads `BENCH_*`
//! artifacts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonsearch_core::{BarabasiAlbertModel, ModelSource};
use nonsearch_corpus::{build, nsg, BuildSpec, Corpus, LoadMode};
use nonsearch_engine::{git_describe, json::JsonValue, GraphSource};
use nonsearch_generators::SeedSequence;
use std::path::PathBuf;
use std::time::Instant;

const SIZES: [usize; 2] = [1_000, 10_000];
const TRIALS: usize = 3;

fn corpus_dir() -> PathBuf {
    std::env::temp_dir().join(format!("bench_corpus_load_{}", std::process::id()))
}

fn build_bench_corpus() -> Corpus {
    let dir = corpus_dir();
    std::fs::remove_dir_all(&dir).ok();
    let spec = BuildSpec {
        model_spec: "ba:m=2".into(),
        seed: 0xBEAC,
        sizes: SIZES.to_vec(),
        trials: TRIALS,
        variants: 0,
        swaps_per_edge: 0,
        threads: 0,
    };
    build(&dir, &spec).expect("bench corpus builds");
    Corpus::open(&dir).expect("bench corpus opens")
}

fn bench_corpus_load(c: &mut Criterion) {
    let corpus = build_bench_corpus();
    let model = BarabasiAlbertModel { m: 2 };
    let generate = ModelSource::new(&model);
    let seeds = SeedSequence::new(0xBEAC);

    let mut group = c.benchmark_group("corpus_load");
    group.sample_size(10);
    for &n in &SIZES {
        group.bench_with_input(BenchmarkId::new("regenerate", n), &n, |b, &n| {
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                generate.trial_graph(n, trial, &seeds.subsequence(trial as u64))
            });
        });
        group.bench_with_input(BenchmarkId::new("corpus_cold", n), &n, |b, &n| {
            // Cold: decode the .nsg file from disk every time.
            let entry = corpus
                .manifest()
                .graphs
                .iter()
                .find(|g| g.n == n)
                .expect("size stored");
            let path = corpus.dir().join(&entry.file);
            b.iter(|| nsg::read_graph_file(&path).expect("stored graph reads"));
        });
        group.bench_with_input(BenchmarkId::new("mmap_cold", n), &n, |b, &n| {
            // Cold zero-copy: map + validate the file every time; no
            // CSR vectors are allocated.
            let entry = corpus
                .manifest()
                .graphs
                .iter()
                .find(|g| g.n == n)
                .expect("size stored");
            let path = corpus.dir().join(&entry.file);
            b.iter(|| nsg::map_graph_file(&path).expect("stored graph maps"));
        });
        group.bench_with_input(BenchmarkId::new("corpus_warm", n), &n, |b, &n| {
            let source = corpus.source();
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                source.trial_graph(n, trial, &seeds)
            });
        });
        group.bench_with_input(BenchmarkId::new("mmap_warm", n), &n, |b, &n| {
            let mapped = Corpus::open_with(corpus.dir(), LoadMode::Mmap).expect("corpus opens");
            let source = mapped.source();
            // Warm: map every stored trial once up front, so the lane
            // times the steady state (Arc clone of a mapped view), not
            // first-map validation — mmap_cold already measures that.
            for trial in 0..TRIALS {
                source.trial_graph(n, trial, &seeds);
            }
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                source.trial_graph(n, trial, &seeds)
            });
        });
    }
    group.finish();

    write_bench_record(&corpus, &generate, &seeds);
    std::fs::remove_dir_all(corpus_dir()).ok();
}

/// Times each setup path directly and records nanoseconds/graph in
/// `BENCH_corpus_load.json` (one JSON document, `"type":"bench"`).
fn write_bench_record(
    corpus: &Corpus,
    generate: &ModelSource<'_, BarabasiAlbertModel>,
    seeds: &SeedSequence,
) {
    let reps = 10u32;
    let time_per_rep = |f: &mut dyn FnMut()| -> u64 {
        f(); // warm-up
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        (start.elapsed().as_nanos() / reps as u128) as u64
    };

    let mut cells: Vec<JsonValue> = Vec::new();
    for &n in &SIZES {
        let mut trial = 0usize;
        let regenerate_ns = time_per_rep(&mut || {
            trial += 1;
            let _ = generate.trial_graph(n, trial, &seeds.subsequence(trial as u64));
        });
        let entry = corpus
            .manifest()
            .graphs
            .iter()
            .find(|g| g.n == n)
            .expect("size stored");
        let path = corpus.dir().join(&entry.file);
        let cold_ns = time_per_rep(&mut || {
            let _ = nsg::read_graph_file(&path).expect("stored graph reads");
        });
        let mmap_cold_ns = time_per_rep(&mut || {
            let _ = nsg::map_graph_file(&path).expect("stored graph maps");
        });
        let source = corpus.source();
        let mut trial = 0usize;
        let warm_ns = time_per_rep(&mut || {
            trial += 1;
            let _ = source.trial_graph(n, trial, seeds);
        });
        let mapped = Corpus::open_with(corpus.dir(), LoadMode::Mmap).expect("corpus opens");
        let mapped_source = mapped.source();
        // Steady state: every stored trial mapped once before timing
        // (the heap lane above is equally warm — criterion's lanes
        // already populated its cache).
        for trial in 0..TRIALS {
            mapped_source.trial_graph(n, trial, seeds);
        }
        let mut trial = 0usize;
        let mmap_warm_ns = time_per_rep(&mut || {
            trial += 1;
            let _ = mapped_source.trial_graph(n, trial, seeds);
        });
        let zero_copy = mapped
            .load(0, None)
            .map(|g| g.is_borrowed())
            .unwrap_or(false);
        cells.push(JsonValue::object(vec![
            ("n", JsonValue::from(n)),
            ("regenerate_ns", JsonValue::from(regenerate_ns)),
            ("corpus_cold_ns", JsonValue::from(cold_ns)),
            ("mmap_cold_ns", JsonValue::from(mmap_cold_ns)),
            ("corpus_warm_ns", JsonValue::from(warm_ns)),
            ("mmap_warm_ns", JsonValue::from(mmap_warm_ns)),
            ("zero_copy", JsonValue::from(zero_copy)),
            (
                "speedup_cold",
                JsonValue::from(regenerate_ns as f64 / cold_ns.max(1) as f64),
            ),
            (
                "speedup_mmap_cold",
                JsonValue::from(regenerate_ns as f64 / mmap_cold_ns.max(1) as f64),
            ),
            (
                "speedup_warm",
                JsonValue::from(regenerate_ns as f64 / warm_ns.max(1) as f64),
            ),
            (
                "speedup_mmap_warm",
                JsonValue::from(regenerate_ns as f64 / mmap_warm_ns.max(1) as f64),
            ),
        ]));
    }
    let record = JsonValue::object(vec![
        ("type", JsonValue::from("bench")),
        ("bench", JsonValue::from("corpus_load")),
        ("model", JsonValue::from("barabasi-albert(m=2)")),
        ("git", JsonValue::from(git_describe())),
        ("cells", JsonValue::Array(cells)),
    ]);
    let out = "BENCH_corpus_load.json";
    std::fs::write(out, format!("{record}\n")).expect("bench record writes");
    println!("wrote {out}");
}

criterion_group!(benches, bench_corpus_load);
criterion_main!(benches);
