//! Kleinberg's navigable small-world lattice.
//!
//! The paper's introduction contrasts scale-free graphs with Kleinberg's
//! model \[Kle00\], where a greedy distributed algorithm routes in
//! `O(log² n)` steps when long-range links follow the inverse-square law
//! (`r = 2` on a 2-D grid) and provably cannot for other exponents. We
//! implement the 2-D variant: an `s × s` grid with nearest-neighbor edges
//! plus `q` long-range links per vertex, each landing on `v` with
//! probability proportional to `d(u, v)^{−r}` (Manhattan distance).

use crate::{CumulativeSampler, GeneratorError, Result};
use nonsearch_graph::{EvolvingDigraph, NodeId, UndirectedCsr};
use rand::Rng;

/// A position on the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridCoord {
    /// Row, in `0..side`.
    pub row: usize,
    /// Column, in `0..side`.
    pub col: usize,
}

impl GridCoord {
    /// Manhattan (lattice) distance to `other`.
    pub fn manhattan(self, other: GridCoord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

/// A sampled Kleinberg small-world grid.
///
/// Vertex `v` sits at row `v.index() / side`, column `v.index() % side`.
/// The graph contains the `2·s·(s−1)` undirected lattice edges plus
/// `q` long-range edges per vertex (stored undirected; searching in this
/// workspace is always undirected, mirroring the paper's convention).
///
/// # Example
///
/// ```
/// use nonsearch_generators::{rng_from_seed, KleinbergGrid};
///
/// let mut rng = rng_from_seed(3);
/// let grid = KleinbergGrid::sample(10, 2.0, 1, &mut rng)?;
/// assert_eq!(grid.graph().node_count(), 100);
/// let (u, v) = (nonsearch_graph::NodeId::new(0), nonsearch_graph::NodeId::new(99));
/// assert_eq!(grid.manhattan(u, v), 18);
/// # Ok::<(), nonsearch_generators::GeneratorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KleinbergGrid {
    graph: UndirectedCsr,
    side: usize,
    r: f64,
    links_per_node: usize,
}

impl KleinbergGrid {
    /// Samples an `side × side` grid with clustering exponent `r ≥ 0` and
    /// `links_per_node` long-range links per vertex.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::TooSmall`] if `side < 2` and
    /// [`GeneratorError::InvalidParameter`] if `r` is negative or not
    /// finite.
    pub fn sample<R: Rng + ?Sized>(
        side: usize,
        r: f64,
        links_per_node: usize,
        rng: &mut R,
    ) -> Result<KleinbergGrid> {
        if side < 2 {
            return Err(GeneratorError::TooSmall {
                requested: side,
                minimum: 2,
            });
        }
        if !r.is_finite() || r < 0.0 {
            return Err(GeneratorError::invalid("r", r, "a finite value ≥ 0"));
        }
        let n = side * side;
        let mut digraph = EvolvingDigraph::with_capacity(n, 2 * n + links_per_node * n);
        digraph.add_nodes(n);

        // Lattice edges: right and down neighbor of each cell.
        for row in 0..side {
            for col in 0..side {
                let u = NodeId::new(row * side + col);
                if col + 1 < side {
                    let v = NodeId::new(row * side + col + 1);
                    digraph.add_edge(u, v).expect("lattice endpoints exist");
                }
                if row + 1 < side {
                    let v = NodeId::new((row + 1) * side + col);
                    digraph.add_edge(u, v).expect("lattice endpoints exist");
                }
            }
        }

        // Distance distribution: a diamond of radius ℓ holds exactly 4ℓ
        // cells, so drawing ℓ ∝ 4ℓ^{1−r}, then a uniform diamond cell,
        // then rejecting off-grid cells yields P(v) ∝ d(u,v)^{−r} over
        // in-grid cells — Kleinberg's law restricted to the lattice.
        let max_dist = 2 * (side - 1);
        let weights: Vec<f64> = (1..=max_dist)
            .map(|l| 4.0 * (l as f64).powf(1.0 - r))
            .collect();
        let dist_sampler = CumulativeSampler::new(&weights).expect("positive weights");

        for index in 0..n {
            let u = NodeId::new(index);
            let (row, col) = (index / side, index % side);
            for _ in 0..links_per_node {
                let v = Self::sample_long_range(side, row, col, &dist_sampler, rng)?;
                digraph.add_edge(u, v).expect("long-range endpoints exist");
            }
        }

        Ok(KleinbergGrid {
            graph: UndirectedCsr::from_digraph(&digraph),
            side,
            r,
            links_per_node,
        })
    }

    fn sample_long_range<R: Rng + ?Sized>(
        side: usize,
        row: usize,
        col: usize,
        dist_sampler: &CumulativeSampler,
        rng: &mut R,
    ) -> Result<NodeId> {
        const MAX_ATTEMPTS: usize = 100_000;
        for _ in 0..MAX_ATTEMPTS {
            let l = dist_sampler.sample(rng) + 1; // distance ℓ ≥ 1
            let t = rng.gen_range(0..4 * l);
            let (quadrant, o) = (t / l, (t % l) as isize);
            let li = l as isize;
            let (r0, c0) = (row as isize, col as isize);
            let (nr, nc) = match quadrant {
                0 => (r0 + o, c0 + li - o),
                1 => (r0 + li - o, c0 - o),
                2 => (r0 - o, c0 - li + o),
                _ => (r0 - li + o, c0 + o),
            };
            if nr >= 0 && nc >= 0 && (nr as usize) < side && (nc as usize) < side {
                return Ok(NodeId::new(nr as usize * side + nc as usize));
            }
        }
        Err(GeneratorError::RejectionBudgetExhausted {
            attempts: MAX_ATTEMPTS,
        })
    }

    /// The undirected graph (lattice plus long-range edges).
    pub fn graph(&self) -> &UndirectedCsr {
        &self.graph
    }

    /// Grid side length `s` (the graph has `s²` vertices).
    pub fn side(&self) -> usize {
        self.side
    }

    /// The clustering exponent `r`.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Long-range links added per vertex.
    pub fn links_per_node(&self) -> usize {
        self.links_per_node
    }

    /// Lattice position of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn coord(&self, v: NodeId) -> GridCoord {
        assert!(v.index() < self.side * self.side, "vertex out of bounds");
        GridCoord {
            row: v.index() / self.side,
            col: v.index() % self.side,
        }
    }

    /// The vertex at position `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the grid.
    pub fn node_at(&self, c: GridCoord) -> NodeId {
        assert!(
            c.row < self.side && c.col < self.side,
            "coordinate out of bounds"
        );
        NodeId::new(c.row * self.side + c.col)
    }

    /// Manhattan distance between two vertices.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of bounds.
    pub fn manhattan(&self, u: NodeId, v: NodeId) -> usize {
        self.coord(u).manhattan(self.coord(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use nonsearch_graph::{is_connected, GraphProperties};

    #[test]
    fn grid_shape() {
        let mut rng = rng_from_seed(1);
        let g = KleinbergGrid::sample(8, 2.0, 1, &mut rng).unwrap();
        assert_eq!(g.graph().node_count(), 64);
        // 2·s·(s−1) lattice edges + q·n long-range edges.
        assert_eq!(g.graph().edge_count(), 2 * 8 * 7 + 64);
        assert!(is_connected(g.graph()));
    }

    #[test]
    fn zero_long_range_links() {
        let mut rng = rng_from_seed(2);
        let g = KleinbergGrid::sample(5, 2.0, 0, &mut rng).unwrap();
        assert_eq!(g.graph().edge_count(), 2 * 5 * 4);
    }

    #[test]
    fn coords_roundtrip() {
        let mut rng = rng_from_seed(3);
        let g = KleinbergGrid::sample(6, 1.0, 0, &mut rng).unwrap();
        for i in 0..36 {
            let v = NodeId::new(i);
            assert_eq!(g.node_at(g.coord(v)), v);
        }
    }

    #[test]
    fn manhattan_distance_examples() {
        let mut rng = rng_from_seed(4);
        let g = KleinbergGrid::sample(4, 2.0, 0, &mut rng).unwrap();
        let corner = g.node_at(GridCoord { row: 0, col: 0 });
        let opposite = g.node_at(GridCoord { row: 3, col: 3 });
        assert_eq!(g.manhattan(corner, opposite), 6);
        assert_eq!(g.manhattan(corner, corner), 0);
    }

    #[test]
    fn long_range_links_never_self_loop() {
        let mut rng = rng_from_seed(5);
        let g = KleinbergGrid::sample(6, 0.0, 2, &mut rng).unwrap();
        assert_eq!(g.graph().self_loop_count(), 0);
    }

    #[test]
    fn larger_r_gives_shorter_links() {
        let mut rng = rng_from_seed(6);
        let mean_link_len = |r: f64, rng: &mut rand_chacha::ChaCha8Rng| {
            let g = KleinbergGrid::sample(20, r, 1, rng).unwrap();
            // Long-range edges are the last n edges inserted.
            let n = g.graph().node_count();
            let m = g.graph().edge_count();
            let total: usize = (m - n..m)
                .map(|i| {
                    let (u, v) = g
                        .graph()
                        .edge_endpoints(nonsearch_graph::EdgeId::new(i))
                        .unwrap();
                    g.manhattan(u, v)
                })
                .sum();
            total as f64 / n as f64
        };
        let uniform = mean_link_len(0.0, &mut rng);
        let steep = mean_link_len(3.0, &mut rng);
        assert!(
            steep < uniform,
            "r=3 links ({steep:.2}) should be shorter than r=0 links ({uniform:.2})"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = KleinbergGrid::sample(7, 2.0, 1, &mut rng_from_seed(7)).unwrap();
        let b = KleinbergGrid::sample(7, 2.0, 1, &mut rng_from_seed(7)).unwrap();
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn validation() {
        let mut rng = rng_from_seed(8);
        assert!(KleinbergGrid::sample(1, 2.0, 1, &mut rng).is_err());
        assert!(KleinbergGrid::sample(5, -1.0, 1, &mut rng).is_err());
        assert!(KleinbergGrid::sample(5, f64::NAN, 1, &mut rng).is_err());
    }
}
