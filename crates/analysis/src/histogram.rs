//! Logarithmically binned histograms for heavy-tailed data.
//!
//! Linear binning drowns power-law tails in noise; log binning (bin edges
//! growing geometrically) is the standard presentation for degree
//! distributions.

/// One bin of a logarithmic histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogBin {
    /// Inclusive lower edge.
    pub lo: usize,
    /// Exclusive upper edge.
    pub hi: usize,
    /// Number of observations in `[lo, hi)`.
    pub count: usize,
    /// Count divided by bin width — comparable across bins.
    pub density: f64,
}

impl LogBin {
    /// Geometric center of the bin, the conventional x-coordinate when
    /// plotting.
    pub fn center(&self) -> f64 {
        (self.lo as f64 * (self.hi.saturating_sub(1)).max(self.lo) as f64).sqrt()
    }
}

/// Bins positive observations into geometrically growing buckets
/// `[1, g), [g, g²), …` with growth factor `growth > 1`.
///
/// Zero observations are ignored (log bins start at 1). Returns an empty
/// vector if no positive observations exist.
///
/// # Panics
///
/// Panics if `growth ≤ 1` or non-finite.
///
/// # Example
///
/// ```
/// use nonsearch_analysis::log_binned_histogram;
///
/// let data = [1usize, 1, 2, 3, 5, 8, 13, 21, 34];
/// let bins = log_binned_histogram(&data, 2.0);
/// let total: usize = bins.iter().map(|b| b.count).sum();
/// assert_eq!(total, 9);
/// ```
pub fn log_binned_histogram(data: &[usize], growth: f64) -> Vec<LogBin> {
    assert!(
        growth.is_finite() && growth > 1.0,
        "growth factor must exceed 1"
    );
    let max = match data.iter().copied().filter(|&x| x > 0).max() {
        Some(m) => m,
        None => return Vec::new(),
    };
    // Build edges 1, ⌈g⌉, ⌈g²⌉, … ensuring strict growth.
    let mut edges: Vec<usize> = vec![1];
    let mut edge = 1.0f64;
    while *edges.last().expect("non-empty") <= max {
        edge *= growth;
        let next = (edge.ceil() as usize).max(edges.last().unwrap() + 1);
        edges.push(next);
    }
    let mut bins: Vec<LogBin> = edges
        .windows(2)
        .map(|w| LogBin {
            lo: w[0],
            hi: w[1],
            count: 0,
            density: 0.0,
        })
        .collect();
    for &x in data {
        if x == 0 {
            continue;
        }
        // Find the bin with lo ≤ x < hi.
        let idx = bins.partition_point(|b| b.hi <= x);
        bins[idx].count += 1;
    }
    for b in &mut bins {
        b.density = b.count as f64 / (b.hi - b.lo) as f64;
    }
    bins.retain(|b| b.count > 0);
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_all_positive_data() {
        let data: Vec<usize> = (1..=1000).collect();
        let bins = log_binned_histogram(&data, 2.0);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 1000);
        // Bins are disjoint and ordered.
        for w in bins.windows(2) {
            assert!(w[0].hi <= w[1].lo);
        }
    }

    #[test]
    fn zeros_are_ignored() {
        let bins = log_binned_histogram(&[0, 0, 1, 2], 2.0);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn empty_or_all_zero_gives_no_bins() {
        assert!(log_binned_histogram(&[], 2.0).is_empty());
        assert!(log_binned_histogram(&[0, 0], 2.0).is_empty());
    }

    #[test]
    fn density_normalizes_width() {
        // 8 observations of value 1 (bin [1,2), width 1) and 8 spread over
        // [8, 16) (width 8): same count, 8× different density.
        let mut data = vec![1usize; 8];
        data.extend(8..16);
        let bins = log_binned_histogram(&data, 2.0);
        let first = bins.iter().find(|b| b.lo == 1).unwrap();
        let last = bins.iter().find(|b| b.lo == 8).unwrap();
        assert_eq!(first.count, 8);
        assert_eq!(last.count, 8);
        assert!((first.density / last.density - 8.0).abs() < 1e-12);
    }

    #[test]
    fn growth_factor_respected() {
        let data: Vec<usize> = (1..=100).collect();
        let coarse = log_binned_histogram(&data, 4.0);
        let fine = log_binned_histogram(&data, 1.5);
        assert!(coarse.len() < fine.len());
    }

    #[test]
    #[should_panic(expected = "growth factor")]
    fn bad_growth_panics() {
        let _ = log_binned_histogram(&[1, 2], 1.0);
    }

    #[test]
    fn center_is_within_bin() {
        let bins = log_binned_histogram(&(1..=64).collect::<Vec<_>>(), 2.0);
        for b in bins {
            let c = b.center();
            assert!(c >= b.lo as f64 - 1e-9);
            assert!(c < b.hi as f64 + 1e-9);
        }
    }
}
