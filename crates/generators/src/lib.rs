//! Random graph generators for the `nonsearch` project.
//!
//! Implements every graph model the paper uses, compares against, or
//! contrasts with:
//!
//! * [`MoriTree`] / [`MergedMori`] — the Móri model `G_t` and its merged
//!   `m`-out variant `G_t^{(m)}`, mixing preferential (by **indegree**) and
//!   uniform attachment with parameter `p`. These are the subjects of the
//!   paper's Theorem 1.
//! * [`CooperFrieze`] — the Cooper–Frieze general web-graph model
//!   (Theorem 2), rephrased with indegree as in the paper.
//! * [`BarabasiAlbert`], [`UniformAttachment`] — the classic evolving
//!   baselines.
//! * [`ConfigModel`] + [`power_law_degree_sequence`] — the "pure random
//!   graph" family of Molloy–Reed, the substrate for Adamic et al.'s
//!   high-degree search analysis.
//! * [`KleinbergGrid`] — Kleinberg's navigable small-world lattice, the
//!   positive contrast the paper's introduction is framed against.
//! * [`ErdosRenyi`], [`WattsStrogatz`] — additional classical baselines.
//! * [`degree_preserving_rewire`] — the Maslov–Sneppen double-edge-swap
//!   null model: same degree sequence, randomized wiring, used to
//!   isolate what structure (beyond degrees) contributes to
//!   (non-)searchability.
//!
//! All generators are deterministic given a seed (ChaCha8 streams via
//! [`rng_from_seed`]), and evolving models record full construction
//! [`provenance`](AttachmentTrace) so that the equivalence events of the
//! paper's Lemma 2 can be checked on the generated sample.
//!
//! # Example
//!
//! ```
//! use nonsearch_generators::{rng_from_seed, MoriTree};
//!
//! let mut rng = rng_from_seed(7);
//! let tree = MoriTree::sample(100, 0.6, &mut rng)?;
//! assert_eq!(tree.digraph().node_count(), 100);
//! // A Móri graph is a tree: every non-root vertex has one out-edge.
//! assert_eq!(tree.digraph().edge_count(), 99);
//! # Ok::<(), nonsearch_generators::GeneratorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barabasi_albert;
mod config_model;
mod cooper_frieze;
mod edge_swap;
mod erdos_renyi;
mod error;
mod kleinberg;
mod mori;
mod power_law;
mod provenance;
mod seeded;
mod uniform_attachment;
mod watts_strogatz;
mod weights;

pub use barabasi_albert::BarabasiAlbert;
pub use config_model::{ConfigModel, SimplificationPolicy};
pub use cooper_frieze::{CooperFrieze, CooperFriezeConfig, StepKind};
pub use edge_swap::{degree_preserving_rewire, SwapStats};
pub use erdos_renyi::ErdosRenyi;
pub use error::GeneratorError;
pub use kleinberg::{GridCoord, KleinbergGrid};
pub use mori::{MergedMori, MoriTree};
pub use power_law::{power_law_degree_sequence, PowerLawConfig};
pub use provenance::{AttachmentKind, AttachmentRecord, AttachmentTrace};
pub use seeded::{rng_from_seed, SeedSequence};
pub use uniform_attachment::UniformAttachment;
pub use watts_strogatz::WattsStrogatz;
pub use weights::{CumulativeSampler, DiscreteDistribution, UrnSampler};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, GeneratorError>;
