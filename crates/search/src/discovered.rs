//! The searcher's partial view of the graph.

use nonsearch_graph::{EdgeId, NodeId};
use std::collections::HashMap;

/// What the searcher knows about one discovered vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredVertex {
    degree: usize,
    incident: Vec<EdgeId>,
}

impl DiscoveredVertex {
    /// The vertex degree (length of its incident edge list).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The incident edge handles, as revealed on discovery.
    pub fn incident(&self) -> &[EdgeId] {
        &self.incident
    }
}

/// What the searcher knows about one edge handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EdgeKnowledge {
    /// First endpoint at which the edge was seen.
    first: NodeId,
    /// The opposite endpoint, once known.
    other: Option<NodeId>,
}

/// The searcher's accumulated knowledge: discovered vertices (with degree
/// and incident edge lists) and partially resolved edges.
///
/// Edges carry global identities, so when both endpoints of a handle have
/// been discovered the view infers the connection without spending a
/// request — a conservative choice for lower-bound experiments (the
/// searcher is never given *less* than the model allows).
#[derive(Debug, Clone, Default)]
pub struct DiscoveredView {
    order: Vec<NodeId>,
    vertices: HashMap<NodeId, DiscoveredVertex>,
    edges: HashMap<EdgeId, EdgeKnowledge>,
}

impl DiscoveredView {
    /// An empty view (no vertices discovered yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of discovered vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if nothing has been discovered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `true` if `v` has been discovered.
    pub fn contains(&self, v: NodeId) -> bool {
        self.vertices.contains_key(&v)
    }

    /// Discovered vertices in discovery order (start vertex first).
    pub fn discovered(&self) -> &[NodeId] {
        &self.order
    }

    /// Knowledge about `v`, if discovered.
    pub fn vertex(&self, v: NodeId) -> Option<&DiscoveredVertex> {
        self.vertices.get(&v)
    }

    /// Degree of `v`, if discovered.
    pub fn degree_of(&self, v: NodeId) -> Option<usize> {
        self.vertices.get(&v).map(|d| d.degree)
    }

    /// The opposite endpoint of `e` as seen from `u`, if already known.
    ///
    /// Known means: revealed by a request, or inferable because the edge
    /// handle appeared in two discovered incident lists.
    pub fn other_endpoint(&self, u: NodeId, e: EdgeId) -> Option<NodeId> {
        let k = self.edges.get(&e)?;
        match (k.first, k.other) {
            (a, Some(b)) if a == u => Some(b),
            (a, Some(b)) if b == u => Some(a),
            _ => None,
        }
    }

    /// `true` if both endpoints of `e` are known.
    pub fn is_resolved(&self, e: EdgeId) -> bool {
        self.edges.get(&e).is_some_and(|k| k.other.is_some())
    }

    /// Incident edges of `v` whose far endpoint is still unknown.
    ///
    /// Returns an empty vector for undiscovered vertices.
    pub fn unexplored_edges_of(&self, v: NodeId) -> Vec<EdgeId> {
        match self.vertices.get(&v) {
            None => Vec::new(),
            Some(info) => info
                .incident
                .iter()
                .copied()
                .filter(|e| !self.is_resolved(*e))
                .collect(),
        }
    }

    /// `true` if `v` is discovered and has at least one unresolved edge.
    pub fn has_unexplored(&self, v: NodeId) -> bool {
        match self.vertices.get(&v) {
            None => false,
            Some(info) => info.incident.iter().any(|e| !self.is_resolved(*e)),
        }
    }

    /// Records the discovery of `v` with its incident edge list.
    ///
    /// Called by the oracles; idempotent for already-known vertices.
    pub(crate) fn insert_vertex(&mut self, v: NodeId, incident: Vec<EdgeId>) {
        if self.vertices.contains_key(&v) {
            return;
        }
        for &e in &incident {
            match self.edges.get_mut(&e) {
                None => {
                    self.edges.insert(
                        e,
                        EdgeKnowledge {
                            first: v,
                            other: None,
                        },
                    );
                }
                Some(k) if k.other.is_none() => {
                    // Second sighting resolves the edge; a self-loop lists
                    // the same handle twice in one incident list.
                    k.other = Some(v);
                }
                Some(_) => {}
            }
        }
        self.order.push(v);
        self.vertices.insert(
            v,
            DiscoveredVertex {
                degree: incident.len(),
                incident,
            },
        );
    }

    /// Records the answer to a request on `(u, e)`: the far endpoint is
    /// `other`.
    pub(crate) fn resolve_edge(&mut self, u: NodeId, e: EdgeId, other: NodeId) {
        match self.edges.get_mut(&e) {
            Some(k) => {
                if k.other.is_none() {
                    k.other = Some(other);
                    // Keep `first` as the vertex it was seen at; if the
                    // recorded first endpoint is not `u`, the pair is
                    // still {first, other} = {other, u} consistent.
                    if k.first != u && k.other != Some(u) {
                        // Edge was first seen at `other` before this
                        // request: nothing further to record.
                    }
                }
            }
            None => {
                self.edges.insert(
                    e,
                    EdgeKnowledge {
                        first: u,
                        other: Some(other),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: usize) -> EdgeId {
        EdgeId::new(i)
    }
    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn insert_and_query() {
        let mut view = DiscoveredView::new();
        assert!(view.is_empty());
        view.insert_vertex(v(0), vec![e(0), e(1)]);
        assert_eq!(view.len(), 1);
        assert!(view.contains(v(0)));
        assert_eq!(view.degree_of(v(0)), Some(2));
        assert_eq!(view.vertex(v(0)).unwrap().incident(), &[e(0), e(1)]);
        assert_eq!(view.degree_of(v(1)), None);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(0), vec![e(0)]);
        view.insert_vertex(v(0), vec![e(0), e(1)]);
        assert_eq!(view.degree_of(v(0)), Some(1));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn explicit_resolution() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(0), vec![e(0)]);
        assert!(!view.is_resolved(e(0)));
        assert_eq!(view.unexplored_edges_of(v(0)), vec![e(0)]);
        view.resolve_edge(v(0), e(0), v(1));
        assert!(view.is_resolved(e(0)));
        assert_eq!(view.other_endpoint(v(0), e(0)), Some(v(1)));
        assert_eq!(view.other_endpoint(v(1), e(0)), Some(v(0)));
        assert!(view.unexplored_edges_of(v(0)).is_empty());
    }

    #[test]
    fn double_sighting_resolves_implicitly() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(0), vec![e(5)]);
        view.insert_vertex(v(3), vec![e(5), e(6)]);
        assert!(view.is_resolved(e(5)));
        assert_eq!(view.other_endpoint(v(0), e(5)), Some(v(3)));
        assert!(!view.is_resolved(e(6)));
        assert!(view.has_unexplored(v(3)));
        assert!(!view.has_unexplored(v(0)));
    }

    #[test]
    fn self_loop_resolves_within_one_list() {
        let mut view = DiscoveredView::new();
        // A self-loop contributes two slots with the same handle.
        view.insert_vertex(v(2), vec![e(0), e(0), e(1)]);
        assert!(view.is_resolved(e(0)));
        assert_eq!(view.other_endpoint(v(2), e(0)), Some(v(2)));
        assert!(!view.is_resolved(e(1)));
    }

    #[test]
    fn unknown_edges_are_unknown() {
        let view = DiscoveredView::new();
        assert_eq!(view.other_endpoint(v(0), e(0)), None);
        assert!(!view.is_resolved(e(0)));
        assert!(view.unexplored_edges_of(v(0)).is_empty());
        assert!(!view.has_unexplored(v(0)));
    }

    #[test]
    fn discovery_order_is_preserved() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(4), vec![]);
        view.insert_vertex(v(1), vec![]);
        view.insert_vertex(v(9), vec![]);
        assert_eq!(view.discovered(), &[v(4), v(1), v(9)]);
    }
}
