//! E13 — ablations over the search-model knobs: oracle strength,
//! success criterion, and start-vertex policy.
//!
//! Thin wrapper over the registered `xp ablation` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("ablation");
}
