//! Equivalence machinery: event checking, exact probabilities and the
//! small-tree enumerator.

use criterion::{criterion_group, criterion_main, Criterion};
use nonsearch_core::{
    enumerate_mori_trees, estimate_mori_event_probability, mori_event_probability_exact,
    mori_window_event_holds, EquivalenceWindow,
};
use nonsearch_generators::{rng_from_seed, MoriTree};

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence");
    group.sample_size(10);

    group.bench_function("exact_event_probability_a_1e6", |b| {
        let w = EquivalenceWindow::from_anchor(1_000_000);
        b.iter(|| mori_event_probability_exact(w.a(), w.b(), 0.5).unwrap());
    });

    group.bench_function("event_check_on_trace_b_10k", |b| {
        let w = EquivalenceWindow::from_anchor(10_000 - 100);
        let tree = MoriTree::sample(10_000, 0.5, &mut rng_from_seed(1)).unwrap();
        b.iter(|| mori_window_event_holds(tree.trace(), &w));
    });

    group.bench_function("monte_carlo_event_200_trials", |b| {
        let w = EquivalenceWindow::from_anchor(200);
        b.iter(|| estimate_mori_event_probability(&w, 0.5, 200, 3).unwrap());
    });

    group.bench_function("enumerate_trees_n9", |b| {
        b.iter(|| enumerate_mori_trees(9, 0.5).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_equivalence);
criterion_main!(benches);
