//! E5 — Lemma 2: the window `[[a+1, b]]` is equivalent conditional on
//! `E_{a,b}`.
//!
//! Thin wrapper over the registered `xp lemma2-equiv` experiment; the
//! implementation lives in `nonsearch_bench::experiments`.

fn main() {
    nonsearch_bench::experiments::run_legacy("lemma2-equiv");
}
