//! Fixed-shape per-worker phase timers.
//!
//! A trial's wall time decomposes into a handful of phases the engine
//! cares about separately: getting the graph (generated fresh or loaded
//! from a corpus), running the searchers, harvesting counters, and the
//! consumer-side merge fold. [`PhaseTimes`] is the `Metrics` analogue
//! for those durations — a plain bundle of `u64` nanosecond
//! accumulators, updated by integer adds from monotonic-clock
//! (`Instant`) readings, merged field-wise in the reorder-buffer
//! consumer. Unlike `Metrics` the sums are wall-clock data: they are
//! *not* deterministic across runs and must only ever ride volatile
//! record types (`"type":"resource"`), never determinism-gated cell
//! lines.

use std::time::Instant;

/// Nanosecond accumulators for the engine's trial phases.
///
/// All fields are plain `u64` nanosecond totals; recording is an
/// integer add and merging is field-wise addition, so the phase block
/// rides the allocation-free trial hot path for free. Per-worker
/// blocks summed across workers can exceed the cell's wall time —
/// workers run concurrently — so consumers of these numbers must treat
/// them as *CPU-side busy time per phase*, bounded by
/// `wall × (workers + 1)` (the `+ 1` is the consumer thread, which
/// owns the merge phase).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseTimes {
    /// Generating trial graphs on the fly (generate-backed sources).
    pub generate_ns: u64,
    /// Loading trial graphs from a stored corpus (corpus-backed
    /// sources; zero on generate-per-trial runs).
    pub load_ns: u64,
    /// Running the searchers against the oracle.
    pub search_ns: u64,
    /// Harvesting per-trial counter deltas into `Metrics`.
    pub harvest_ns: u64,
    /// The consumer's strict-trial-order fold (aggregates + metrics).
    pub merge_ns: u64,
}

impl PhaseTimes {
    /// An all-zero block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every phase of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.generate_ns += other.generate_ns;
        self.load_ns += other.load_ns;
        self.search_ns += other.search_ns;
        self.harvest_ns += other.harvest_ns;
        self.merge_ns += other.merge_ns;
    }

    /// Total nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.generate_ns + self.load_ns + self.search_ns + self.harvest_ns + self.merge_ns
    }

    /// The phases with their canonical record-field names, in the
    /// fixed serialization order record writers use.
    pub fn named(&self) -> [(&'static str, u64); 5] {
        [
            ("phase_generate_ns", self.generate_ns),
            ("phase_load_ns", self.load_ns),
            ("phase_search_ns", self.search_ns),
            ("phase_harvest_ns", self.harvest_ns),
            ("phase_merge_ns", self.merge_ns),
        ]
    }
}

/// Elapsed nanoseconds since `start`, saturated into a `u64`.
///
/// The helper every instrumentation site uses so the clamp cannot
/// drift: `Instant` reads are monotonic, allocation-free, and never
/// consulted by any RNG stream, so timing a phase cannot perturb a
/// deterministic aggregate.
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = PhaseTimes {
            generate_ns: 10,
            load_ns: 1,
            search_ns: 100,
            harvest_ns: 5,
            merge_ns: 2,
        };
        let b = PhaseTimes {
            generate_ns: 1,
            load_ns: 2,
            search_ns: 3,
            harvest_ns: 4,
            merge_ns: 5,
        };
        a.merge(&b);
        assert_eq!(a.generate_ns, 11);
        assert_eq!(a.load_ns, 3);
        assert_eq!(a.search_ns, 103);
        assert_eq!(a.harvest_ns, 9);
        assert_eq!(a.merge_ns, 7);
        assert_eq!(a.total_ns(), 11 + 3 + 103 + 9 + 7);
    }

    #[test]
    fn named_covers_every_field_once() {
        let p = PhaseTimes {
            generate_ns: 1,
            load_ns: 2,
            search_ns: 3,
            harvest_ns: 4,
            merge_ns: 5,
        };
        let named = p.named();
        assert_eq!(named.len(), 5);
        let sum: u64 = named.iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, p.total_ns());
        let mut names: Vec<&str> = named.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5, "duplicate field names");
        for (name, _) in named {
            assert!(name.starts_with("phase_"), "{name}");
            assert!(name.ends_with("_ns"), "{name}");
        }
    }

    #[test]
    fn elapsed_ns_is_monotone() {
        let t0 = Instant::now();
        let a = elapsed_ns(t0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = elapsed_ns(t0);
        assert!(b > a);
        assert!(b >= 2_000_000, "slept 2ms but measured {b}ns");
    }
}
