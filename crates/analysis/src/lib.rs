//! Measurement toolkit for the `nonsearch` project.
//!
//! Everything needed to turn sampled graphs and search runs into the
//! numbers the paper's claims are about:
//!
//! * [`SampleStats`] — summary statistics with confidence intervals.
//! * [`StreamingStats`] — the same moments in O(1) memory (Welford), for
//!   the trial engine's large sweeps; shard accumulators merge.
//! * [`LinearFit`] / [`fit_log_log`] — OLS regression, including the
//!   log–log fits used to estimate *scaling exponents* (the `0.5` in
//!   `Ω(n^{1/2})` is recovered as a log–log slope).
//! * [`DegreeDistribution`] + [`fit_power_law_mle`] — empirical degree
//!   CCDFs and discrete maximum-likelihood power-law exponents, for
//!   verifying the models are scale-free.
//! * [`average_distance`] / [`diameter_exact`] — sampled average shortest
//!   paths and diameters, for the paper's "logarithmic diameter vs
//!   polynomial search" contrast.
//! * [`Table`] — aligned text tables, so every experiment binary prints
//!   rows the way the paper's evaluation would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod correlation;
mod degree_dist;
mod distance;
mod histogram;
mod power_law_fit;
mod regression;
mod stats;
mod streaming;
mod table;

pub use correlation::{
    age_degree_correlation, degree_assortativity, mean_neighbor_degree_curve, pearson,
};
pub use degree_dist::DegreeDistribution;
pub use distance::{
    average_distance, diameter_exact, diameter_lower_bound_double_sweep, eccentricity,
    DistanceError,
};
pub use histogram::{log_binned_histogram, LogBin};
pub use power_law_fit::{fit_power_law_mle, PowerLawFit};
pub use regression::{fit_linear, fit_log_log, LinearFit};
pub use stats::SampleStats;
pub use streaming::StreamingStats;
pub use table::Table;
