//! A comment- and string-literal-aware Rust line scanner.
//!
//! The rules in [`crate::rules`] must never fire on the *word*
//! `HashMap` inside a doc comment or on `"u32::MAX"` inside a string
//! literal — only on actual code. This module does the minimum lexing
//! needed to make that distinction without `syn` or any proc-macro
//! machinery: a character-level state machine that classifies every
//! character of a source file as code, comment, or literal, and
//! produces per-line views:
//!
//! * [`ScannedLine::code`] — the source line with comments, string
//!   literals, and char literals masked to spaces (one space per
//!   masked character, so tokens never fuse across a removed literal);
//! * [`ScannedLine::comment`] — the concatenated comment text of the
//!   line (where `// lint: allow(...)` waivers live);
//! * [`ScannedLine::strings`] — the contents of string literals that
//!   appear on the line (the record-schema rule needs the `"cell"` tag
//!   values);
//! * [`ScannedLine::in_test`] — whether the line sits inside a
//!   `#[cfg(test)]` region (brace-matched on the masked code).
//!
//! The lexer understands line comments, nested block comments, string
//! literals with escapes, raw strings (`r#"…"#` with any hash depth,
//! plus `b`/`br` prefixes), char literals (including escapes), and
//! tells lifetimes (`'a`) apart from char literals (`'a'`).

/// One source line, split into its code / comment / literal parts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScannedLine {
    /// The line's code with every non-code character masked to a space.
    pub code: String,
    /// The concatenated comment text appearing on the line.
    pub comment: String,
    /// Contents of string literals appearing on the line (a literal
    /// spanning lines contributes its text to each line it touches).
    pub strings: Vec<String>,
    /// `true` when the line is inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A whole scanned file: one [`ScannedLine`] per source line.
#[derive(Debug, Clone, Default)]
pub struct ScannedFile {
    /// The file's lines, in order (index 0 is line 1).
    pub lines: Vec<ScannedLine>,
}

enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit { escaped: bool },
}

/// Lexes `source` into per-line code/comment/literal views.
///
/// Total: never panics on any input (malformed or truncated literals
/// simply run to end of file), which the proptests in this crate lean
/// on.
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<ScannedLine> = Vec::new();
    let mut line = ScannedLine::default();
    let mut cur_str = String::new();
    let mut mode = Mode::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A literal spanning the newline contributes what it has so
            // far to this line and keeps accumulating on the next.
            if matches!(mode, Mode::Str | Mode::RawStr(_)) && !cur_str.is_empty() {
                line.strings.push(std::mem::take(&mut cur_str));
            }
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    line.code.push_str("  ");
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    line.code.push_str("  ");
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if let Some((hashes, opener)) = raw_string_start(&chars, i) {
                    // r"…", r#"…"#, br#"…"# — mask the whole opener.
                    for _ in 0..opener {
                        line.code.push(' ');
                    }
                    mode = Mode::RawStr(hashes);
                    i += opener;
                } else if c == '"' {
                    line.code.push(' ');
                    mode = Mode::Str;
                    i += 1;
                } else if c == '\'' {
                    if chars.get(i + 1) == Some(&'\\') {
                        line.code.push(' ');
                        mode = Mode::CharLit { escaped: false };
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'')
                        && !matches!(chars.get(i + 1), Some(&'\'') | Some(&'\n'))
                    {
                        // 'x' — a plain one-character literal.
                        line.code.push_str("   ");
                        i += 3;
                    } else {
                        // A lifetime or loop label: genuine code.
                        line.code.push('\'');
                        i += 1;
                    }
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Only the backslash is consumed when the escape
                    // continues the line (`\<newline>`): the newline
                    // must still break the line on the next iteration.
                    match chars.get(i + 1) {
                        Some(&next) if next != '\n' => {
                            cur_str.push(next);
                            i += 2;
                        }
                        _ => i += 1,
                    }
                    line.code.push(' ');
                } else if c == '"' {
                    line.code.push(' ');
                    line.strings.push(std::mem::take(&mut cur_str));
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur_str.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    let closer = 1 + hashes as usize;
                    for _ in 0..closer {
                        line.code.push(' ');
                    }
                    line.strings.push(std::mem::take(&mut cur_str));
                    mode = Mode::Code;
                    i += closer;
                } else {
                    cur_str.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
            Mode::CharLit { escaped } => {
                line.code.push(' ');
                if escaped {
                    mode = Mode::CharLit { escaped: false };
                } else if c == '\\' {
                    mode = Mode::CharLit { escaped: true };
                } else if c == '\'' {
                    mode = Mode::Code;
                }
                i += 1;
            }
        }
    }
    if matches!(mode, Mode::Str | Mode::RawStr(_)) && !cur_str.is_empty() {
        line.strings.push(cur_str);
    }
    if !line.code.is_empty() || !line.comment.is_empty() || !line.strings.is_empty() {
        lines.push(line);
    }
    let mut file = ScannedFile { lines };
    mark_test_regions(&mut file);
    file
}

/// Does a raw string literal (`r"`, `r#"`, `br##"` …) start at `i`?
/// Returns the hash depth and total opener length when it does.
fn raw_string_start(chars: &[char], start: usize) -> Option<(u32, usize)> {
    if start > 0 && is_ident_char(chars[start - 1]) {
        return None; // part of an identifier like `var` or `br_x`
    }
    let mut i = start;
    if chars.get(i) == Some(&'b') && chars.get(i + 1) == Some(&'r') {
        i += 1; // allow the byte-string prefix, then fall through to `r`
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    let mut hashes = 0u32;
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j + 1 - start))
}

/// Does the `"` at `i` close a raw string of the given hash depth?
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Marks lines inside `#[cfg(test)]` regions by brace-matching the
/// masked code from each attribute to the end of the item it covers.
fn mark_test_regions(file: &mut ScannedFile) {
    let mut i = 0;
    while i < file.lines.len() {
        if !file.lines[i].code.contains("cfg(test)") {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth = 0i64;
        let mut opened = false;
        let mut end = file.lines.len() - 1;
        'outer: for (j, line) in file.lines.iter().enumerate().skip(start) {
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
                if opened && depth <= 0 {
                    end = j;
                    break 'outer;
                }
            }
        }
        for line in &mut file.lines[start..=end] {
            line.in_test = true;
        }
        i = end + 1;
    }
}

/// Does `code` contain `token` as a standalone token — i.e. not glued
/// to identifier characters on either side? (`unsafe` matches
/// `unsafe {` but not `unsafe_code`; `to_string` matches
/// `.to_string()` but not `into_string`.)
pub fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// Byte offset of the first standalone occurrence of `token` in `code`.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let hay = code.as_bytes();
    let needle = token.as_bytes();
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    for start in 0..=(hay.len() - needle.len()) {
        if &hay[start..start + needle.len()] != needle {
            continue;
        }
        if start > 0 && ident(hay[start - 1]) {
            continue;
        }
        let end = start + needle.len();
        if end < hay.len() && ident(hay[end]) {
            continue;
        }
        return Some(start);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments_but_keeps_their_text() {
        let file = scan("let x = 1; // HashMap here\n");
        assert_eq!(file.lines.len(), 1);
        assert!(!file.lines[0].code.contains("HashMap"));
        assert!(file.lines[0].comment.contains("HashMap"));
        assert!(file.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn masks_string_literals_and_captures_them() {
        let file = scan("let tag = \"u32::MAX\";\n");
        assert!(!file.lines[0].code.contains("u32::MAX"));
        assert_eq!(file.lines[0].strings, vec!["u32::MAX".to_string()]);
        // Masking is space-for-space: tokens must not fuse.
        let fused = scan("foo\"bar\"baz\n");
        assert!(fused.lines[0].code.contains("foo"));
        assert!(fused.lines[0].code.contains("baz"));
        assert!(!fused.lines[0].code.contains("foobaz"));
    }

    #[test]
    fn handles_escapes_inside_strings() {
        let file = scan(r#"let s = "a\"b\\c";"#);
        assert_eq!(file.lines[0].strings, vec!["a\"b\\c".to_string()]);
        assert!(file.lines[0].code.ends_with(';'));
    }

    #[test]
    fn handles_raw_strings_with_hashes() {
        let file = scan("let s = r#\"quote \" inside\"#; let t = 1;\n");
        assert_eq!(file.lines[0].strings, vec!["quote \" inside".to_string()]);
        assert!(file.lines[0].code.contains("let t = 1;"));
        let byte = scan("let b = br##\"x\"# y\"##;\n");
        assert_eq!(byte.lines[0].strings, vec!["x\"# y".to_string()]);
    }

    #[test]
    fn raw_string_prefix_requires_a_token_boundary() {
        // `var"` is not a raw string start; the identifier keeps lexing.
        let file = scan("let var\"x\" = 1;\n");
        assert!(file.lines[0].code.contains("let var"));
        assert_eq!(file.lines[0].strings, vec!["x".to_string()]);
    }

    #[test]
    fn handles_nested_block_comments() {
        let file = scan("a /* one /* two */ still comment */ b\n");
        assert!(file.lines[0].code.contains('a'));
        assert!(file.lines[0].code.contains('b'));
        assert!(!file.lines[0].code.contains("still"));
        assert!(file.lines[0].comment.contains("still comment"));
    }

    #[test]
    fn multiline_block_comments_and_strings_span_lines() {
        let file = scan("before /* x\ny */ after\nlet s = \"l1\nl2\";\n");
        assert!(file.lines[0].code.contains("before"));
        assert!(file.lines[1].code.contains("after"));
        assert!(!file.lines[1].code.contains('y'));
        assert_eq!(file.lines[2].strings, vec!["l1".to_string()]);
        assert_eq!(file.lines[3].strings, vec!["l2".to_string()]);
    }

    #[test]
    fn char_literals_are_masked_but_lifetimes_survive() {
        let file = scan("let c = '\"'; let e = '\\n'; fn f<'a>(x: &'a str) {}\n");
        let code = &file.lines[0].code;
        assert!(code.contains("fn f<'a>(x: &'a str)"), "{code:?}");
        assert_eq!(file.lines[0].strings, Vec::<String>::new());
    }

    #[test]
    fn cfg_test_regions_are_brace_matched() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let file = scan(src);
        assert!(!file.lines[0].in_test);
        assert!(file.lines[1].in_test);
        assert!(file.lines[2].in_test);
        assert!(file.lines[3].in_test);
        assert!(file.lines[4].in_test);
        assert!(!file.lines[5].in_test);
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("deny(unsafe_code)", "unsafe"));
        assert!(has_token(".to_string()", "to_string"));
        assert!(!has_token("into_string()", "to_string"));
        assert!(has_token("vec![0; n]", "vec!"));
        assert!(has_token("if self.epoch == u32::MAX {", "u32::MAX"));
        assert!(has_token("env::var_os(\"HOME\")", "env::var_os"));
        assert!(!has_token("env::var_os(x)", "env::var"));
        assert!(!has_token("", "x"));
    }

    #[test]
    fn truncated_literals_do_not_panic() {
        scan("let s = \"unterminated");
        scan("let s = r#\"unterminated");
        scan("let c = '\\");
        scan("/* unterminated");
        scan("'");
    }
}
