//! `xp chaos` — the deterministic fault-injection gate.
//!
//! Runs a registered experiment twice — once clean, once under a seeded
//! [`FaultPlan`] injecting worker panics through the engine's retry
//! policy — and asserts the `"type":"cell"` records are **byte
//! identical**. Then it exercises the corpus self-healing path (corrupt
//! stored `.nsg` files per the plan, heal, re-verify against the
//! original manifest checksums), the forced mmap-to-heap fallback, and
//! the per-cell watchdog. Every injected fault is logged as a
//! `"type":"fault"` JSONL record under `--out`.
//!
//! The whole gate is reproducible: the plan derives each decision from
//! `(plan seed, trial)` / `(plan seed, file index)` alone, so two runs
//! with the same `--plan-seed` inject exactly the same faults.

use crate::experiments::registry;
use nonsearch_corpus::{build, force_heap_fallback, BuildSpec, Corpus, LoadMode};
use nonsearch_engine::{
    install_faults, run_cell_observed, CliOptions, FailurePolicy, FaultHook, FaultInjection,
    InjectedFault, JsonValue, RunWriter, TrialMeasure,
};
use nonsearch_fault::{FaultPlan, StorageFault, TrialFault};
use nonsearch_generators::SeedSequence;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Shared log of injected trial faults: `(trial, attempt, kind)`.
type FaultEvents = Arc<Mutex<Vec<(usize, u32, &'static str)>>>;

/// Default seed of the chaos [`FaultPlan`] (`--plan-seed` overrides).
pub const DEFAULT_PLAN_SEED: u64 = 0xFA17;

/// Inject a panic into every `TRIAL_PANIC_EVERY`-th trial roll (on
/// average) during the byte-identity gate.
const TRIAL_PANIC_EVERY: u64 = 3;

/// Storage faults hit every `STORAGE_FAULT_EVERY`-th file roll (on
/// average) during the corpus-healing phase.
const STORAGE_FAULT_EVERY: u64 = 2;

/// The `xp chaos` help text.
pub fn usage() -> String {
    format!(
        "xp chaos — deterministic fault injection + self-healing gate\n\
         \n\
         usage: xp chaos [EXPERIMENT] [flags]\n\
         \n\
         runs EXPERIMENT (default maxdeg) twice — clean, then under a\n\
         seeded fault plan injecting worker panics with a retry policy —\n\
         and fails unless the cell records are byte-identical. Also\n\
         corrupts + heals a throwaway corpus, forces the mmap-to-heap\n\
         fallback, and exercises the per-cell watchdog.\n\
         \n\
         chaos flags:\n\
         \x20 --plan-seed N   fault-plan seed (default {DEFAULT_PLAN_SEED:#x})\n\
         \x20 --no-heal       propagate injected panics instead of retrying\n\
         \x20                 (the gate then fails — CI's must-fail probe)\n\
         \x20 --dir DIR       keep work files (clean.jsonl, chaos.jsonl,\n\
         \x20                 corpus/) in DIR instead of a scratch dir\n\
         \x20 --out FILE      write \"type\":\"fault\" records to FILE\n\
         shared flags pass through to both experiment runs:\n\
         \x20 --quick, --seed, --threads, --trials, --sizes, ...\n"
    )
}

/// Runs `xp chaos <args>`. Returns the process exit code.
pub fn main(args: &[String]) -> i32 {
    if matches!(
        args.first().map(String::as_str),
        Some("help" | "--help" | "-h")
    ) {
        print!("{}", usage());
        return 0;
    }
    match run(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("xp chaos: {msg}");
            1
        }
    }
}

struct ChaosArgs {
    experiment: String,
    plan_seed: u64,
    heal: bool,
    dir: Option<PathBuf>,
    out: Option<PathBuf>,
    shared: Vec<String>,
}

fn parse(args: &[String]) -> Result<ChaosArgs, String> {
    let mut parsed = ChaosArgs {
        experiment: "maxdeg".to_string(),
        plan_seed: DEFAULT_PLAN_SEED,
        heal: true,
        dir: None,
        out: None,
        shared: Vec::new(),
    };
    // Only the first argument can name the experiment; later bare
    // tokens are values of pass-through flags (e.g. `--trials 6`) and
    // ride along to the engine's strict parser.
    let mut rest = args;
    if let Some(first) = rest.first() {
        if !first.starts_with("--") {
            parsed.experiment = first.clone();
            rest = &rest[1..];
        }
    }
    let mut iter = rest.iter().peekable();
    while let Some(arg) = iter.next() {
        if !arg.starts_with("--") {
            parsed.shared.push(arg.clone());
            continue;
        }
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match &inline {
                Some(v) => Ok(v.clone()),
                None => match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        Ok(iter.next().expect("peeked value exists").clone())
                    }
                    _ => Err(format!("{name} requires a value")),
                },
            }
        };
        match flag {
            "--plan-seed" => {
                let v = value("--plan-seed")?;
                parsed.plan_seed = v.parse().map_err(|e| format!("--plan-seed {v:?}: {e}"))?;
            }
            "--no-heal" => parsed.heal = false,
            "--dir" => parsed.dir = Some(PathBuf::from(value("--dir")?)),
            "--out" => parsed.out = Some(PathBuf::from(value("--out")?)),
            _ => parsed.shared.push(arg.clone()),
        }
    }
    Ok(parsed)
}

fn run(args: &[String]) -> Result<i32, String> {
    let chaos = parse(args)?;
    let reg = registry();
    if reg.find(&chaos.experiment).is_none() {
        return Err(format!(
            "no experiment named {:?}; see `xp list`",
            chaos.experiment
        ));
    }

    let (work, scratch) = match &chaos.dir {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("xp_chaos_{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&work).map_err(|e| format!("{}: {e}", work.display()))?;

    // The fault-record sink (inert without --out, like every experiment).
    let writer_opts = CliOptions {
        out: chaos.out.clone(),
        ..CliOptions::default()
    };
    let mut writer =
        RunWriter::create("chaos", &writer_opts).map_err(|e| format!("fault sink: {e}"))?;

    let clean_path = work.join("clean.jsonl");
    let chaos_path = work.join("chaos.jsonl");
    let gate = trial_fault_gate(&chaos, &reg, &clean_path, &chaos_path, &mut writer)?;
    if gate != 0 {
        return Ok(gate);
    }
    corpus_heal_phase(&chaos, &work, &mut writer)?;
    forced_heap_phase(&work, &mut writer)?;
    watchdog_phase(chaos.plan_seed, &mut writer)?;

    let summary = writer
        .finish(chaos.plan_seed)
        .map_err(|e| format!("fault sink: {e}"))?;
    for path in &summary.paths {
        println!("[chaos] fault records: {}", path.display());
    }
    if scratch {
        std::fs::remove_dir_all(&work).ok();
    } else {
        println!("[chaos] clean cells: {}", clean_path.display());
        println!("[chaos] chaos cells: {}", chaos_path.display());
    }
    println!(
        "[chaos] OK — all phases held under plan seed {:#x}",
        chaos.plan_seed
    );
    Ok(0)
}

/// Phase 1 — the byte-identity gate: clean run vs a run whose trials
/// panic per the plan and are retried. Healing on, the cell records
/// must match byte for byte; healing off, the injected panic propagates
/// and the gate fails (the CI must-fail probe).
fn trial_fault_gate(
    chaos: &ChaosArgs,
    reg: &nonsearch_engine::Registry,
    clean_path: &Path,
    chaos_path: &Path,
    writer: &mut RunWriter,
) -> Result<i32, String> {
    let run_opts = |out: &Path| -> Result<CliOptions, String> {
        let mut args = chaos.shared.clone();
        args.push("--out".to_string());
        args.push(out.display().to_string());
        CliOptions::from_args(args).map_err(|e| e.to_string())
    };

    println!("[chaos] phase 1/4: clean run of {}", chaos.experiment);
    reg.run_named(&chaos.experiment, &run_opts(clean_path)?)
        .map_err(|e| format!("clean run: {e}"))?;

    let plan = FaultPlan::new(chaos.plan_seed).with_trial_panics(TRIAL_PANIC_EVERY);
    let events: FaultEvents = Arc::new(Mutex::new(Vec::new()));
    let hook: FaultHook = {
        let events = Arc::clone(&events);
        Arc::new(move |trial, attempt| {
            let fault = plan.trial_fault(trial, attempt)?;
            let (kind, injected) = match fault {
                TrialFault::Panic => ("panic", InjectedFault::Panic),
                TrialFault::Stall { ms } => ("stall", InjectedFault::Stall { ms }),
            };
            events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((trial, attempt, kind));
            Some(injected)
        })
    };
    let policy = if chaos.heal {
        FailurePolicy::Retry { max: 3 }
    } else {
        FailurePolicy::Propagate
    };
    println!(
        "[chaos] phase 1/4: chaos run (panic every ~{TRIAL_PANIC_EVERY} trials, {})",
        if chaos.heal {
            "retrying"
        } else {
            "propagating"
        }
    );
    let scope = install_faults(FaultInjection {
        policy,
        hook: Some(hook),
        cell_deadline_ms: None,
    });
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        reg.run_named(&chaos.experiment, &run_opts(chaos_path)?)
            .map_err(|e| format!("chaos run: {e}"))
    }));
    drop(scope);
    match outcome {
        Ok(result) => {
            result?;
        }
        Err(_) => {
            return Err("the chaos run died on an injected fault (healing off)".to_string());
        }
    }

    let mut injected = events.lock().unwrap_or_else(|e| e.into_inner()).clone();
    injected.sort_unstable();
    for &(trial, attempt, kind) in &injected {
        writer
            .record_fault(vec![
                ("kind", JsonValue::from(kind)),
                ("trial", JsonValue::from(trial)),
                ("attempt", JsonValue::from(attempt as u64)),
                ("outcome", JsonValue::from("retried")),
            ])
            .map_err(|e| format!("fault sink: {e}"))?;
    }

    let clean_cells = cell_lines(clean_path)?;
    let chaos_cells = cell_lines(chaos_path)?;
    if clean_cells != chaos_cells {
        eprintln!(
            "xp chaos: CELL RECORDS DIVERGED under injected faults \
             ({} clean vs {} chaos cells) — retried aggregates are not \
             bit-identical",
            clean_cells.len(),
            chaos_cells.len()
        );
        return Ok(1);
    }
    println!(
        "[chaos] phase 1/4: {} cell records byte-identical ({} faults injected)",
        clean_cells.len(),
        injected.len()
    );
    Ok(0)
}

/// Phase 2 — corrupt a throwaway corpus per the plan's storage stream,
/// heal it, and require the healed files to pass a plain verify against
/// the untouched manifest checksums.
fn corpus_heal_phase(chaos: &ChaosArgs, work: &Path, writer: &mut RunWriter) -> Result<(), String> {
    let corpus_dir = work.join("corpus");
    let spec = BuildSpec {
        model_spec: "mori:p=0.6,m=1".to_string(),
        seed: 0xC0,
        sizes: vec![24, 48],
        trials: 2,
        variants: 1,
        swaps_per_edge: 3,
        threads: 1,
    };
    build(&corpus_dir, &spec).map_err(|e| format!("corpus build: {e}"))?;

    let manifest = Corpus::open(&corpus_dir)
        .map_err(|e| format!("corpus open: {e}"))?
        .manifest()
        .clone();
    let files: Vec<String> = manifest
        .graphs
        .iter()
        .flat_map(|g| {
            std::iter::once(g.file.clone()).chain(g.variants.iter().map(|v| v.file.clone()))
        })
        .collect();

    let plan = FaultPlan::new(chaos.plan_seed).with_storage_faults(STORAGE_FAULT_EVERY);
    let mut corrupted = 0usize;
    for (i, file) in files.iter().enumerate() {
        let path = corpus_dir.join(file);
        let len = std::fs::metadata(&path)
            .map_err(|e| format!("{file}: {e}"))?
            .len() as usize;
        let fault = match plan.storage_fault(i as u64, len) {
            Some(fault) => fault,
            // Guarantee the phase is never vacuous: if the plan spared
            // every file, flip a bit in the first one.
            None if i == files.len() - 1 && corrupted == 0 => StorageFault::BitFlip { bit: 7 },
            None => continue,
        };
        nonsearch_fault::corrupt_file(&path, fault).map_err(|e| format!("{file}: {e}"))?;
        corrupted += 1;
        writer
            .record_fault(vec![
                ("kind", JsonValue::from(storage_kind(fault))),
                ("file", JsonValue::from(file.as_str())),
                ("outcome", JsonValue::from("healed")),
            ])
            .map_err(|e| format!("fault sink: {e}"))?;
    }

    let healing = Corpus::open_healing(&corpus_dir, LoadMode::Heap, false, true)
        .map_err(|e| format!("corpus open: {e}"))?;
    let report = healing
        .verify()
        .map_err(|e| format!("healing verify: {e}"))?;
    if report.healed != corrupted {
        return Err(format!(
            "healed {} of {corrupted} corrupted files",
            report.healed
        ));
    }
    // The healed corpus must pass a plain (non-healing) verify against
    // the original manifest checksums — regeneration is byte-exact.
    Corpus::open(&corpus_dir)
        .and_then(|c| c.verify())
        .map_err(|e| format!("post-heal verify: {e}"))?;
    println!(
        "[chaos] phase 2/4: corpus self-heal — {corrupted} of {} files corrupted, \
         {} healed ({} quarantined), clean verify passed",
        files.len(),
        report.healed,
        report.quarantined
    );
    Ok(())
}

/// Phase 3 — force the mmap loader onto the heap fallback and require
/// the served graph to equal the mapped one.
fn forced_heap_phase(work: &Path, writer: &mut RunWriter) -> Result<(), String> {
    let corpus_dir = work.join("corpus");
    force_heap_fallback(true);
    let forced = Corpus::open_with(&corpus_dir, LoadMode::Mmap)
        .and_then(|c| c.load(0, None))
        .map_err(|e| format!("forced-heap load: {e}"));
    force_heap_fallback(false);
    let forced = forced?;
    let mapped = Corpus::open_with(&corpus_dir, LoadMode::Mmap)
        .and_then(|c| c.load(0, None))
        .map_err(|e| format!("mapped load: {e}"))?;
    if *forced != *mapped {
        return Err("forced heap fallback served a different graph than the mapping".to_string());
    }
    writer
        .record_fault(vec![
            ("kind", JsonValue::from("mmap-refused")),
            ("outcome", JsonValue::from("heap-fallback")),
        ])
        .map_err(|e| format!("fault sink: {e}"))?;
    println!("[chaos] phase 3/4: forced heap fallback serves the identical graph");
    Ok(())
}

/// Phase 4 — stall every trial past the cell deadline and require the
/// watchdog to mark the cell degraded instead of hanging.
fn watchdog_phase(plan_seed: u64, writer: &mut RunWriter) -> Result<(), String> {
    let plan = FaultPlan::new(plan_seed).with_trial_stalls(1, 150);
    let hook: FaultHook = Arc::new(move |trial, attempt| {
        plan.trial_fault(trial, attempt).map(|fault| match fault {
            TrialFault::Panic => InjectedFault::Panic,
            TrialFault::Stall { ms } => InjectedFault::Stall { ms },
        })
    });
    let scope = install_faults(FaultInjection {
        policy: FailurePolicy::Skip,
        hook: Some(hook),
        cell_deadline_ms: Some(25),
    });
    let (_, obs) = run_cell_observed(
        4,
        2,
        &SeedSequence::new(1),
        || (),
        |_pool, _obs, trial, _seeds| TrialMeasure::new(trial as f64, true),
    );
    drop(scope);
    if !obs.degraded {
        return Err("the watchdog did not degrade a stalled cell".to_string());
    }
    writer
        .record_fault(vec![
            ("kind", JsonValue::from("stall")),
            ("outcome", JsonValue::from("degraded")),
        ])
        .map_err(|e| format!("fault sink: {e}"))?;
    println!("[chaos] phase 4/4: watchdog degraded the stalled cell instead of hanging");
    Ok(())
}

fn storage_kind(fault: StorageFault) -> &'static str {
    match fault {
        StorageFault::BitFlip { .. } => "bit-flip",
        StorageFault::Truncate { .. } => "truncate",
        StorageFault::Remove => "remove",
    }
}

fn cell_lines(path: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(text
        .lines()
        .filter(|line| line.contains("\"type\":\"cell\""))
        .map(str::to_string)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> i32 {
        main(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chaos_test_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn help_and_bad_experiments_exit_cleanly() {
        assert_eq!(run_args(&["--help"]), 0);
        assert_eq!(run_args(&["no-such-experiment"]), 1);
        assert_eq!(run_args(&["--plan-seed", "zebra"]), 1);
    }

    #[test]
    fn parse_splits_chaos_flags_from_shared_flags() {
        let args: Vec<String> = ["lemma1-bound", "--plan-seed=9", "--no-heal", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse(&args).unwrap();
        assert_eq!(parsed.experiment, "lemma1-bound");
        assert_eq!(parsed.plan_seed, 9);
        assert!(!parsed.heal);
        assert_eq!(parsed.shared, vec!["--quick".to_string()]);
    }

    #[test]
    fn quick_gate_passes_with_healing_and_fails_without() {
        let dir = temp_dir("gate");
        let dir_str = dir.display().to_string();
        // Healing on: every phase holds, cells byte-identical.
        assert_eq!(
            run_args(&[
                "maxdeg",
                "--quick",
                "--trials",
                "6",
                "--sizes",
                "64,128",
                "--threads",
                "2",
                "--dir",
                &dir_str,
            ]),
            0
        );
        let clean = std::fs::read_to_string(dir.join("clean.jsonl")).unwrap();
        assert!(clean.contains("\"type\":\"cell\""));

        // Healing off: the injected panic propagates and the gate fails.
        let dir2 = temp_dir("gate_noheal");
        assert_eq!(
            run_args(&[
                "maxdeg",
                "--quick",
                "--trials",
                "6",
                "--sizes",
                "64",
                "--no-heal",
                "--dir",
                &dir2.display().to_string(),
            ]),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn fault_records_validate_against_the_schema() {
        let dir = temp_dir("records");
        let out = dir.join("faults.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            run_args(&[
                "maxdeg",
                "--quick",
                "--trials",
                "6",
                "--sizes",
                "64",
                "--dir",
                &dir.display().to_string(),
                "--out",
                &out.display().to_string(),
            ]),
            0
        );
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"type\":\"fault\""));
        let summary = nonsearch_engine::validate_jsonl(&text).unwrap();
        assert!(summary.faults > 0, "no fault records in {text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
