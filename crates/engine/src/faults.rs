//! The engine's fault-injection seam and trial failure policies.
//!
//! Chaos runs need two things from the runner: a way to make trials
//! fail on purpose, and a policy for what the runner does when they do.
//! Both live here. A [`FaultInjection`] bundles a [`FailurePolicy`]
//! with an optional [`FaultHook`] — a deterministic
//! `(trial, attempt) -> Option<InjectedFault>` function, typically
//! backed by a seeded `nonsearch_fault::FaultPlan` — plus an optional
//! per-cell watchdog deadline. [`install_faults`] activates the bundle
//! for the current thread and returns a guard; every `run_lanes*` call
//! made while the guard lives snapshots the bundle at cell entry and
//! runs its trials *contained* (each attempt wrapped in
//! `catch_unwind`) instead of on the bare fast path.
//!
//! The installation is **thread-local**, not process-global: `cargo
//! test` runs many tests concurrently in one process, and a global
//! switch would leak chaos into unrelated cells. The runner reads the
//! bundle on the caller's thread and shares it with its scoped workers
//! by reference, so worker threads never consult their own slot.
//!
//! The retry contract: a retried attempt re-derives the trial's seed
//! stream from the trial index alone (`trial_seeds`), and injected
//! faults fire *before* the trial body touches its per-worker context,
//! so a successful retry contributes bit-identically to what a
//! fault-free run would have produced. `FailurePolicy::Skip` (and an
//! exhausted `Retry`) instead drops the trial's measurements entirely —
//! aggregates then differ from a clean run, which the
//! `trials_skipped` counter makes visible.

use std::cell::RefCell;
use std::sync::Arc;

/// What the runner does with a trial attempt that panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Re-raise the panic on the caller (the fault-free default — a
    /// failing trial fails the run).
    #[default]
    Propagate,
    /// Contain the panic and re-run the trial, up to `max` retries;
    /// a trial that still fails after `max` retries is skipped.
    Retry {
        /// Maximum number of *re*-runs per trial (0 behaves like
        /// [`FailurePolicy::Skip`]).
        max: u32,
    },
    /// Contain the panic and drop the trial's measurements (the cell's
    /// aggregate then covers fewer trials; see `Metrics::trials_skipped`).
    Skip,
}

/// A fault the hook asks the runner to inject into one trial attempt,
/// ahead of the trial body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic in the worker (exercising the configured [`FailurePolicy`]).
    Panic,
    /// Sleep for `ms` milliseconds, simulating a straggling worker
    /// (exercising the backpressure gate and the watchdog deadline).
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// A deterministic fault decision function: `(trial, attempt)` to the
/// fault injected ahead of that attempt, if any.
///
/// Hooks must be pure functions of their arguments (no clocks, no
/// shared mutable state feeding the decision) or chaos runs lose the
/// workspace's any-thread-count reproducibility. Returning a fault for
/// `attempt > 0` will defeat `FailurePolicy::Retry` — seeded
/// `FaultPlan` hooks only ever fault attempt 0.
pub type FaultHook = Arc<dyn Fn(usize, u32) -> Option<InjectedFault> + Send + Sync>;

/// The fault-injection bundle the `run_lanes*` family snapshots at cell
/// entry: injection hook, failure policy, and watchdog deadline.
///
/// The default bundle (`FaultInjection::default()`) injects nothing,
/// propagates panics, and sets no deadline — installing it merely
/// routes trials through the contained (catch-unwind) execution path.
#[derive(Clone, Default)]
pub struct FaultInjection {
    /// What to do when a trial attempt panics.
    pub policy: FailurePolicy,
    /// Deterministic injector consulted before every attempt.
    pub hook: Option<FaultHook>,
    /// Watchdog: if the cell's consumer sees no progress for this many
    /// milliseconds, the cell is abandoned gracefully — partial
    /// aggregates are returned with `TrialObs::degraded` set instead of
    /// hanging the run.
    pub cell_deadline_ms: Option<u64>,
}

impl std::fmt::Debug for FaultInjection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjection")
            .field("policy", &self.policy)
            .field("hook", &self.hook.as_ref().map(|_| "<fault hook>"))
            .field("cell_deadline_ms", &self.cell_deadline_ms)
            .finish()
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<FaultInjection>>> = const { RefCell::new(None) };
}

/// Activates `config` for every cell run from the current thread while
/// the returned guard lives; dropping the guard restores whatever was
/// installed before (installations nest).
#[must_use = "faults are uninstalled when the returned scope drops"]
pub fn install_faults(config: FaultInjection) -> FaultScope {
    let previous = ACTIVE.with(|slot| slot.replace(Some(Arc::new(config))));
    FaultScope { previous }
}

/// The bundle active on this thread, if any — snapshotted by the
/// runner once per cell, on the caller's thread.
pub(crate) fn active() -> Option<Arc<FaultInjection>> {
    ACTIVE.with(|slot| slot.borrow().clone())
}

/// Guard returned by [`install_faults`]; restores the previously
/// installed bundle (usually none) on drop.
#[derive(Debug)]
pub struct FaultScope {
    previous: Option<Arc<FaultInjection>>,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        let previous = self.previous.take();
        ACTIVE.with(|slot| *slot.borrow_mut() = previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_scoped_and_nests() {
        assert!(active().is_none());
        {
            let _outer = install_faults(FaultInjection {
                policy: FailurePolicy::Skip,
                ..FaultInjection::default()
            });
            assert_eq!(active().unwrap().policy, FailurePolicy::Skip);
            {
                let _inner = install_faults(FaultInjection {
                    policy: FailurePolicy::Retry { max: 2 },
                    ..FaultInjection::default()
                });
                assert_eq!(active().unwrap().policy, FailurePolicy::Retry { max: 2 });
            }
            // Inner scope dropped: the outer bundle is back.
            assert_eq!(active().unwrap().policy, FailurePolicy::Skip);
        }
        assert!(active().is_none());
    }

    #[test]
    fn install_is_thread_local() {
        let _scope = install_faults(FaultInjection::default());
        assert!(active().is_some());
        std::thread::scope(|s| {
            s.spawn(|| assert!(active().is_none(), "bundle leaked across threads"));
        });
    }

    #[test]
    fn debug_formats_without_exposing_the_hook() {
        let bundle = FaultInjection {
            hook: Some(Arc::new(|_, _| None)),
            ..FaultInjection::default()
        };
        let text = format!("{bundle:?}");
        assert!(text.contains("fault hook"), "{text}");
        assert!(text.contains("Propagate"), "{text}");
    }
}
