//! `xp` — the unified experiment CLI.
//!
//! ```text
//! xp list                                    # enumerate experiments
//! xp theorem1-weak --quick --threads 4 --out runs.jsonl
//! xp validate runs.jsonl                     # check emitted records
//! xp corpus build corpus-dir --quick         # persist a graph ensemble
//! xp theorem1-weak --quick --corpus corpus-dir
//! ```
//!
//! Subcommands share the engine flag set (`--quick`, `--threads`,
//! `--seed`, `--out`, `--format`, `--trials`, `--sizes`, `--corpus`);
//! run records are bit-identical for any `--threads` value with the
//! same seed. The `corpus` tool subcommands manage the persistent
//! graph-ensemble store (`nonsearch_corpus`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("corpus") {
        std::process::exit(nonsearch_corpus::cli::main(&args[1..]));
    }
    std::process::exit(nonsearch_bench::experiments::registry().main(&args));
}
