//! Search execution loops for both knowledge models.
//!
//! Each loop exists in two forms: the classic entry points
//! ([`run_weak`], [`run_strong`]) that allocate a private
//! [`SearchScratch`] per call, and the scratch-threading forms
//! ([`run_weak_in`], [`run_strong_in`]) that borrow a caller-owned
//! scratch — what the Monte-Carlo engines use so each worker allocates
//! once per graph size and reuses across all its trials. Both forms are
//! observationally identical (same request sequences, same RNG
//! consumption).

use crate::{
    SearchError, SearchOutcome, SearchScratch, SearchTask, StrongSearchState, StrongSearcher,
    SuccessCriterion, WeakSearchState, WeakSearcher,
};
use nonsearch_graph::{NodeId, UndirectedCsr};
use rand::RngCore;

/// Checks whether the objective condition already holds for a newly
/// discovered vertex. Success is adjudicated by the runner from the true
/// graph, so algorithms need not notice their own success — the paper's
/// cost measure is requests *until the target (or a neighbor) is reached*,
/// regardless of the searcher's bookkeeping.
fn satisfies(graph: &UndirectedCsr, task: &SearchTask, vertex: NodeId) -> bool {
    match task.criterion {
        SuccessCriterion::DiscoverTarget => vertex == task.target,
        SuccessCriterion::ReachNeighbor => {
            vertex == task.target || graph.is_adjacent(vertex, task.target)
        }
    }
}

fn validate_task(graph: &UndirectedCsr, task: &SearchTask) -> crate::Result<()> {
    for v in [task.start, task.target] {
        if v.index() >= graph.node_count() {
            return Err(SearchError::TaskOutOfBounds {
                vertex: v,
                node_count: graph.node_count(),
            });
        }
    }
    Ok(())
}

/// Runs a weak-model search to completion with a private, per-call
/// [`SearchScratch`].
///
/// Convenient for one-off searches; hot loops should hold a scratch and
/// call [`run_weak_in`] instead. See there for the loop contract.
///
/// # Errors
///
/// Returns [`SearchError`] on task-validation failures or protocol
/// violations by the algorithm.
pub fn run_weak<S: WeakSearcher + ?Sized>(
    graph: &UndirectedCsr,
    task: &SearchTask,
    searcher: &mut S,
    rng: &mut dyn RngCore,
) -> crate::Result<SearchOutcome> {
    run_weak_in(&mut SearchScratch::new(), graph, task, searcher, rng)
}

/// Runs a weak-model search to completion on a caller-owned scratch.
///
/// The loop: ask `searcher` for a request, execute it against the oracle,
/// feed the answer back via [`WeakSearcher::observe`], and stop when the
/// success criterion first holds, the budget runs out, or the searcher
/// gives up. The searcher is [`reset`](WeakSearcher::reset) and the
/// scratch epoch-bumped before the run, so one instance of each can be
/// reused across trials with outcomes identical to fresh state.
///
/// # Errors
///
/// Returns [`SearchError`] on task-validation failures or protocol
/// violations by the algorithm.
pub fn run_weak_in<S: WeakSearcher + ?Sized>(
    scratch: &mut SearchScratch,
    graph: &UndirectedCsr,
    task: &SearchTask,
    searcher: &mut S,
    rng: &mut dyn RngCore,
) -> crate::Result<SearchOutcome> {
    validate_task(graph, task)?;
    searcher.reset();
    searcher.reserve(graph.node_count(), graph.edge_count());
    let mut state = WeakSearchState::new_in(scratch, graph, task.start)?;
    if satisfies(graph, task, task.start) {
        return Ok(SearchOutcome::success(0, state.view().len()));
    }
    loop {
        if let Some(budget) = task.budget {
            if state.requests() >= budget {
                return Ok(SearchOutcome {
                    found: false,
                    requests: state.requests(),
                    discovered: state.view().len(),
                    gave_up: false,
                    budget_exhausted: true,
                });
            }
        }
        let Some((u, e)) = searcher.next_request(task, state.view(), rng) else {
            return Ok(SearchOutcome {
                found: false,
                requests: state.requests(),
                discovered: state.view().len(),
                gave_up: true,
                budget_exhausted: false,
            });
        };
        let revealed = state.request(u, e)?;
        searcher.observe((u, e), revealed);
        if satisfies(graph, task, revealed) {
            return Ok(SearchOutcome::success(state.requests(), state.view().len()));
        }
    }
}

/// Runs a strong-model search to completion with a private, per-call
/// [`SearchScratch`] (same loop shape as [`run_weak`], counting strong
/// requests). Hot loops should use [`run_strong_in`].
///
/// # Errors
///
/// Returns [`SearchError`] on task-validation failures or protocol
/// violations by the algorithm.
pub fn run_strong<S: StrongSearcher + ?Sized>(
    graph: &UndirectedCsr,
    task: &SearchTask,
    searcher: &mut S,
    rng: &mut dyn RngCore,
) -> crate::Result<SearchOutcome> {
    run_strong_in(&mut SearchScratch::new(), graph, task, searcher, rng)
}

/// Runs a strong-model search to completion on a caller-owned scratch
/// (same contract as [`run_weak_in`], counting strong requests).
///
/// # Errors
///
/// Returns [`SearchError`] on task-validation failures or protocol
/// violations by the algorithm.
pub fn run_strong_in<S: StrongSearcher + ?Sized>(
    scratch: &mut SearchScratch,
    graph: &UndirectedCsr,
    task: &SearchTask,
    searcher: &mut S,
    rng: &mut dyn RngCore,
) -> crate::Result<SearchOutcome> {
    validate_task(graph, task)?;
    searcher.reset();
    searcher.reserve(graph.node_count(), graph.edge_count());
    let mut state = StrongSearchState::new_in(scratch, graph, task.start)?;
    if satisfies(graph, task, task.start) {
        return Ok(SearchOutcome::success(0, state.view().len()));
    }
    loop {
        if let Some(budget) = task.budget {
            if state.requests() >= budget {
                return Ok(SearchOutcome {
                    found: false,
                    requests: state.requests(),
                    discovered: state.view().len(),
                    gave_up: false,
                    budget_exhausted: true,
                });
            }
        }
        let Some(u) = searcher.next_request(task, state.view(), rng) else {
            return Ok(SearchOutcome {
                found: false,
                requests: state.requests(),
                discovered: state.view().len(),
                gave_up: true,
                budget_exhausted: false,
            });
        };
        // The answer slice borrows the oracle's reusable buffer; the
        // block scopes that borrow so the outcome can read the state.
        let found = {
            let revealed = state.request(u)?;
            searcher.observe(u, revealed);
            revealed.iter().any(|&v| satisfies(graph, task, v))
        };
        if found {
            return Ok(SearchOutcome::success(state.requests(), state.view().len()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BfsFlood, StrongBfs};
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path(n: usize) -> UndirectedCsr {
        UndirectedCsr::from_edges(n, (1..n).map(|i| (i - 1, i))).unwrap()
    }

    #[test]
    fn trivial_start_is_free() {
        let g = path(4);
        let task = SearchTask::new(NodeId::new(2), NodeId::new(2));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let o = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng).unwrap();
        assert!(o.found);
        assert_eq!(o.requests, 0);
    }

    #[test]
    fn neighbor_criterion_can_be_free_too() {
        let g = path(4);
        let task = SearchTask::new(NodeId::new(1), NodeId::new(2))
            .with_criterion(SuccessCriterion::ReachNeighbor);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let o = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng).unwrap();
        assert!(o.found);
        assert_eq!(o.requests, 0);
    }

    #[test]
    fn budget_stops_the_run() {
        let g = path(50);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(49)).with_budget(5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let o = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng).unwrap();
        assert!(!o.found);
        assert!(o.budget_exhausted);
        assert_eq!(o.requests, 5);
    }

    #[test]
    fn weak_bfs_walks_the_path() {
        let g = path(10);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(9));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let o = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng).unwrap();
        assert!(o.found);
        assert_eq!(o.requests, 9); // one request per path edge
    }

    #[test]
    fn strong_bfs_walks_the_path_too() {
        let g = path(10);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(9));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let o = run_strong(&g, &task, &mut StrongBfs::new(), &mut rng).unwrap();
        assert!(o.found);
        // Expanding vertices 0..=8 reveals vertex 9.
        assert_eq!(o.requests, 9);
    }

    #[test]
    fn out_of_bounds_task_rejected() {
        let g = path(3);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(9));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(run_weak(&g, &task, &mut BfsFlood::new(), &mut rng).is_err());
        assert!(run_strong(&g, &task, &mut StrongBfs::new(), &mut rng).is_err());
    }

    #[test]
    fn scratch_runs_match_fresh_runs() {
        let g = path(12);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(11));
        let mut scratch = SearchScratch::new();
        let mut flood = BfsFlood::new();
        let mut strong = StrongBfs::new();
        for _ in 0..3 {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let pooled = run_weak_in(&mut scratch, &g, &task, &mut flood, &mut rng).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let fresh = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng).unwrap();
            assert_eq!(pooled, fresh);

            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let pooled = run_strong_in(&mut scratch, &g, &task, &mut strong, &mut rng).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let fresh = run_strong(&g, &task, &mut StrongBfs::new(), &mut rng).unwrap();
            assert_eq!(pooled, fresh);
        }
    }
}
