//! Property-based tests for the graph substrate.

use nonsearch_graph::{
    bfs_distances, connected_components, degree_histogram, read_edge_list, write_edge_list,
    EvolvingDigraph, GraphRecord, NodeId, UndirectedCsr,
};
use proptest::prelude::*;

/// Strategy: a small random multigraph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..120);
        (Just(n), edges)
    })
}

proptest! {
    // Fixed case count: keeps CI time bounded and independent of the
    // proptest default.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn degree_sum_is_twice_edge_count((n, edges) in arb_graph()) {
        let g = UndirectedCsr::from_edges(n, edges).unwrap();
        let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.edge_count());
    }

    #[test]
    fn histogram_mass_equals_node_count((n, edges) in arb_graph()) {
        let g = UndirectedCsr::from_edges(n, edges).unwrap();
        let hist = degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn record_roundtrip_preserves_graph((n, edges) in arb_graph()) {
        let g = UndirectedCsr::from_edges(n, edges).unwrap();
        let back = GraphRecord::from_graph(&g).to_graph().unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn text_roundtrip_preserves_graph((n, edges) in arb_graph()) {
        let g = UndirectedCsr::from_edges(n, edges).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn incident_slots_resolve_consistently((n, edges) in arb_graph()) {
        let g = UndirectedCsr::from_edges(n, edges).unwrap();
        for v in g.nodes() {
            for (slot, expect) in g.incident(v).iter().enumerate() {
                let got = g.incident_slot(v, slot).unwrap();
                prop_assert_eq!(got, *expect);
            }
            prop_assert!(g.incident_slot(v, g.degree(v)).is_err());
        }
    }

    #[test]
    fn every_edge_appears_in_both_incidence_lists((n, edges) in arb_graph()) {
        let g = UndirectedCsr::from_edges(n, edges).unwrap();
        for (e, (u, v)) in g.edges() {
            prop_assert!(g.incident(u).iter().any(|&(w, ee)| ee == e && w == v));
            prop_assert!(g.incident(v).iter().any(|&(w, ee)| ee == e && w == u));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_on_edges((n, edges) in arb_graph()) {
        let g = UndirectedCsr::from_edges(n, edges.clone()).unwrap();
        let dist = bfs_distances(&g, NodeId::new(0));
        // Adjacent vertices differ by at most 1 in BFS distance.
        for (_, (u, v)) in g.edges() {
            match (dist[u.index()], dist[v.index()]) {
                (Some(du), Some(dv)) => {
                    prop_assert!(du.abs_diff(dv) <= 1);
                }
                (None, None) => {}
                // One endpoint reachable, the other not: impossible.
                _ => prop_assert!(false, "edge spans reachable/unreachable"),
            }
        }
    }

    #[test]
    fn components_partition_vertices((n, edges) in arb_graph()) {
        let g = UndirectedCsr::from_edges(n, edges).unwrap();
        let cc = connected_components(&g);
        prop_assert_eq!(cc.sizes().iter().sum::<usize>(), g.node_count());
        prop_assert!(cc.count() >= 1);
        // Edge endpoints share a component.
        for (_, (u, v)) in g.edges() {
            prop_assert_eq!(cc.component_of(u), cc.component_of(v));
        }
    }

    #[test]
    fn merge_blocks_preserves_edge_count(
        n_blocks in 1usize..12,
        m in 1usize..5,
        seed_edges in proptest::collection::vec((0usize..1000, 0usize..1000), 0..60),
    ) {
        let total = n_blocks * m;
        let mut g = EvolvingDigraph::new();
        g.add_nodes(total);
        for (u, v) in seed_edges {
            let (u, v) = (u % total, v % total);
            g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let merged = g.merge_blocks(m).unwrap();
        prop_assert_eq!(merged.node_count(), n_blocks);
        prop_assert_eq!(merged.edge_count(), g.edge_count());
        // Total degree is conserved by merging.
        let before: usize = g.nodes().map(|v| g.total_degree(v)).sum();
        let after: usize = merged.nodes().map(|v| merged.total_degree(v)).sum();
        prop_assert_eq!(before, after);
    }
}
