//! Deliberate violation: hash-ordered collection in aggregate code.

use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> f64 {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.values().map(|&c| c as f64).sum()
}
