//! E10 — Adamic et al. on pure power-law graphs: high-degree search
//! `O(n^{2(1−2/k)})` vs random walk `O(n^{3(1−2/k)})`.
//!
//! Measures both strategies on configuration-model giants across
//! exponents `k ∈ (2, 3)` and compares fitted scaling exponents with the
//! mean-field predictions.

use nonsearch_analysis::{fit_log_log, SampleStats, Table};
use nonsearch_bench::{banner, quick, sweep, trials};
use nonsearch_core::{
    adamic_high_degree_exponent, adamic_random_walk_exponent, GraphModel, PowerLawGiantModel,
};
use nonsearch_generators::SeedSequence;
use nonsearch_graph::NodeId;
use nonsearch_search::{run_strong, run_weak, SearchTask, SearcherKind, StrongHighDegree};
use rand::Rng;

fn main() {
    banner(
        "E10 / Adamic et al. (power-law search)",
        "on Molloy–Reed power-law graphs, high-degree search scales as \
         n^(2(1−2/k)) and the random walk as n^(3(1−2/k)): greedy wins, \
         both are polynomial",
    );

    let sizes = sweep(&[2_000, 4_000, 8_000, 16_000, 32_000]);
    let trial_count = trials(12);
    let k_values = if quick() {
        vec![2.3]
    } else {
        vec![2.1, 2.3, 2.5, 2.7]
    };
    let seeds = SeedSequence::new(0xE10);

    for &k in &k_values {
        let model = PowerLawGiantModel {
            exponent: k,
            d_min: 1,
        };
        println!(
            "k = {k}: theory exponents — high-degree {:.2}, random walk {:.2}",
            adamic_high_degree_exponent(k),
            adamic_random_walk_exponent(k)
        );
        let mut table =
            Table::with_columns(&["searcher", "n (giant)", "mean requests", "ci95", "success"]);
        for kind in [SearcherKind::HighDegree, SearcherKind::RandomWalk] {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for (si, &n) in sizes.iter().enumerate() {
                let cell_seeds = seeds
                    .subsequence((k * 10.0) as u64)
                    .subsequence(si as u64)
                    .subsequence(kind.name().len() as u64);
                let mut requests = Vec::new();
                let mut found = 0usize;
                let mut giant_sizes = Vec::new();
                for t in 0..trial_count {
                    let mut rng = cell_seeds.child_rng(t as u64);
                    let overlay = model.sample_graph(n, &mut rng);
                    let peers = overlay.node_count();
                    giant_sizes.push(peers as f64);
                    // Random source/target pair (the Adamic setting).
                    let s = NodeId::new(rng.gen_range(0..peers));
                    let target = NodeId::new(rng.gen_range(0..peers));
                    let task = SearchTask::new(s, target).with_budget(30 * peers);
                    let mut searcher = kind.build();
                    let outcome = run_weak(&overlay, &task, &mut *searcher, &mut rng)
                        .expect("suite searchers never violate the protocol");
                    requests.push(outcome.requests as f64);
                    found += outcome.found as usize;
                }
                let stats = SampleStats::from_slice(&requests).expect("trials ≥ 1");
                let giant = SampleStats::from_slice(&giant_sizes)
                    .expect("trials ≥ 1")
                    .mean();
                table.row(vec![
                    kind.name().to_string(),
                    format!("{giant:.0}"),
                    format!("{:.1}", stats.mean()),
                    format!("{:.1}", stats.ci95_half_width()),
                    format!("{:.2}", found as f64 / trial_count as f64),
                ]);
                xs.push(giant);
                ys.push(stats.mean().max(1.0));
            }
            if let Some(fit) = fit_log_log(&xs, &ys) {
                let theory = match kind {
                    SearcherKind::HighDegree => adamic_high_degree_exponent(k),
                    _ => adamic_random_walk_exponent(k),
                };
                println!(
                    "  {} fitted exponent: {:.3} (mean-field theory {:.2})",
                    kind.name(),
                    fit.slope,
                    theory
                );
            }
        }
        // Adamic's analysis counts *visited vertices*, i.e. one unit per
        // neighborhood reveal — the strong model. Measure that too.
        {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for (si, &n) in sizes.iter().enumerate() {
                let cell_seeds = seeds
                    .subsequence((k * 10.0) as u64)
                    .subsequence(si as u64)
                    .subsequence(777);
                let mut requests = Vec::new();
                let mut giant_sizes = Vec::new();
                for t in 0..trial_count {
                    let mut rng = cell_seeds.child_rng(t as u64);
                    let overlay = model.sample_graph(n, &mut rng);
                    let peers = overlay.node_count();
                    giant_sizes.push(peers as f64);
                    let s = NodeId::new(rng.gen_range(0..peers));
                    let target = NodeId::new(rng.gen_range(0..peers));
                    let task = SearchTask::new(s, target).with_budget(30 * peers);
                    let mut searcher = StrongHighDegree::new();
                    let outcome = run_strong(&overlay, &task, &mut searcher, &mut rng)
                        .expect("suite searchers never violate the protocol");
                    requests.push(outcome.requests.max(1) as f64);
                }
                let stats = SampleStats::from_slice(&requests).expect("trials ≥ 1");
                let giant = SampleStats::from_slice(&giant_sizes)
                    .expect("trials ≥ 1")
                    .mean();
                table.row(vec![
                    "strong-high-degree".into(),
                    format!("{giant:.0}"),
                    format!("{:.1}", stats.mean()),
                    format!("{:.1}", stats.ci95_half_width()),
                    "1.00".into(),
                ]);
                xs.push(giant);
                ys.push(stats.mean());
            }
            if let Some(fit) = fit_log_log(&xs, &ys) {
                println!(
                    "  strong-high-degree (visited vertices, Adamic's own measure): \
                     exponent {:.3} (mean-field theory {:.2})",
                    fit.slope,
                    adamic_high_degree_exponent(k)
                );
            }
        }
        println!("{table}");
    }
    println!("shape to check: greedy below walk at every size, both rising");
    println!("polynomially, gaps closing as k → 2 (both exponents → 0).");
}
