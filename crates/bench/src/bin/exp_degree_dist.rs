//! E8 — scale-freeness of the models: power-law degree distributions.
//!
//! The paper's premise is that the Móri and Cooper–Frieze models are
//! scale-free; this experiment fits the discrete MLE exponent and prints
//! log-binned CCDF rows for visual inspection.

use nonsearch_analysis::{fit_power_law_mle, log_binned_histogram, SampleStats, Table};
use nonsearch_bench::{banner, quick, trials};
use nonsearch_generators::{
    BarabasiAlbert, CooperFrieze, CooperFriezeConfig, MoriTree, SeedSequence, UniformAttachment,
};
use nonsearch_graph::degree_sequence;

fn main() {
    banner(
        "E8 / degree distributions",
        "Móri & Cooper–Frieze graphs are scale-free (power-law degrees); \
         uniform attachment is the non-scale-free control",
    );

    let n = if quick() { 20_000 } else { 100_000 };
    let trial_count = trials(5);
    let seeds = SeedSequence::new(0xE8);

    let mut table = Table::with_columns(&["model", "fitted k", "ci95", "tail n", "KS"]);
    type Sampler = Box<dyn Fn(&mut rand_chacha::ChaCha8Rng) -> Vec<usize>>;
    let models: Vec<(String, Sampler)> = vec![
        (
            "mori(p=0.3)".into(),
            Box::new(move |rng| {
                degree_sequence(&MoriTree::sample(n, 0.3, rng).unwrap().undirected())
            }),
        ),
        (
            "mori(p=0.6)".into(),
            Box::new(move |rng| {
                degree_sequence(&MoriTree::sample(n, 0.6, rng).unwrap().undirected())
            }),
        ),
        (
            "mori(p=0.9)".into(),
            Box::new(move |rng| {
                degree_sequence(&MoriTree::sample(n, 0.9, rng).unwrap().undirected())
            }),
        ),
        (
            "cooper-frieze(α=0.7)".into(),
            Box::new(move |rng| {
                let cfg = CooperFriezeConfig::balanced(0.7).unwrap();
                degree_sequence(&CooperFrieze::sample(n, &cfg, rng).unwrap().undirected())
            }),
        ),
        (
            "barabasi-albert(m=2)".into(),
            Box::new(move |rng| {
                degree_sequence(&BarabasiAlbert::sample(n, 2, rng).unwrap().undirected())
            }),
        ),
        (
            "uniform-attachment(m=1)".into(),
            Box::new(move |rng| {
                degree_sequence(&UniformAttachment::sample(n, 1, rng).unwrap().undirected())
            }),
        ),
    ];

    for (mi, (name, sampler)) in models.iter().enumerate() {
        let mut exponents = Vec::new();
        let mut ks_values = Vec::new();
        let mut tail = 0usize;
        for t in 0..trial_count {
            let mut rng = seeds.subsequence(mi as u64).child_rng(t as u64);
            let degrees = sampler(&mut rng);
            if let Some(fit) = fit_power_law_mle(&degrees, 3) {
                exponents.push(fit.exponent);
                ks_values.push(fit.ks_distance);
                tail = fit.tail_size;
            }
        }
        if let Some(stats) = SampleStats::from_slice(&exponents) {
            let ks = SampleStats::from_slice(&ks_values).expect("same length");
            table.row(vec![
                name.clone(),
                format!("{:.2}", stats.mean()),
                format!("{:.2}", stats.ci95_half_width()),
                tail.to_string(),
                format!("{:.3}", ks.mean()),
            ]);
        }
    }
    println!("{table}");

    // CCDF sketch for one Móri run: log-binned densities.
    let mut rng = seeds.subsequence(99).child_rng(0);
    let degrees = degree_sequence(&MoriTree::sample(n, 0.6, &mut rng).unwrap().undirected());
    println!("log-binned degree histogram, mori(p=0.6), n = {n}:");
    let mut hist_table = Table::with_columns(&["bin", "count", "density"]);
    for bin in log_binned_histogram(&degrees, 2.0) {
        hist_table.row(vec![
            format!("[{}, {})", bin.lo, bin.hi),
            bin.count.to_string(),
            format!("{:.2}", bin.density),
        ]);
    }
    println!("{hist_table}");
    println!("power-law tails (straight lines in log-log) for the attachment");
    println!("models; the uniform-attachment control decays geometrically.");
}
