//! A Cooper–Frieze "web graph": growth, scale-freeness, and the futile
//! hunt for the newest page.
//!
//! Theorem 2 territory: the general web-graph model with mixed
//! preferential/uniform attachment produces power-law indegrees and a
//! small diameter, yet finding a freshly published page by local
//! crawling costs Ω(√n).
//!
//! Run with: `cargo run --release --example web_frontier`

use nonsearch::analysis::{
    average_distance, diameter_lower_bound_double_sweep, fit_power_law_mle, SampleStats,
};
use nonsearch::core::EquivalenceWindow;
use nonsearch::core::{cooper_frieze_window_event_holds, theorem2_weak_bound};
use nonsearch::generators::{CooperFrieze, CooperFriezeConfig, SeedSequence};
use nonsearch::graph::{degree_sequence, NodeId};
use nonsearch::search::{run_weak, SearchTask, SearcherKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10_000;
    let alpha = 0.7;
    let config = CooperFriezeConfig::balanced(alpha)?;
    let seeds = SeedSequence::new(7);

    println!("growing a Cooper–Frieze web graph: n = {n}, α = {alpha}");
    let mut rng = seeds.child_rng(0);
    let web = CooperFrieze::sample(n, &config, &mut rng)?;
    let graph = web.undirected();
    println!(
        "  {} pages, {} links, {} New steps / {} Old steps",
        graph.node_count(),
        graph.edge_count(),
        web.new_step_count(),
        web.steps().len() - web.new_step_count()
    );

    let degrees = degree_sequence(&graph);
    if let Some(fit) = fit_power_law_mle(&degrees, 2) {
        println!("  degree distribution: {fit}");
    }
    let avg = average_distance(&graph, 16, &mut rng)?;
    let diam = diameter_lower_bound_double_sweep(&graph, NodeId::from_label(1))?;
    println!(
        "  avg distance ≈ {avg:.2}, diameter ≥ {diam} (log₂ n ≈ {:.1})",
        (n as f64).log2()
    );

    // The freshest page: can a crawler find it?
    println!("\ncrawling for the newest page (vertex {n}) in the weak model:");
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(50 * n);
    for kind in [
        SearcherKind::HighDegree,
        SearcherKind::GreedyId,
        SearcherKind::BfsFlood,
    ] {
        let mut costs = Vec::new();
        for t in 0..10 {
            let mut trial_rng = seeds.subsequence(1).child_rng(t);
            let web = CooperFrieze::sample(n, &config, &mut trial_rng)?;
            let g = web.undirected();
            let mut searcher = kind.build();
            let outcome = run_weak(&g, &task, &mut *searcher, &mut trial_rng)?;
            costs.push(outcome.requests as f64);
        }
        let stats = SampleStats::from_slice(&costs).expect("non-empty");
        println!("  {:>12}: {}", kind.name(), stats);
    }

    // Estimate the equivalence-event probability for Theorem 2's window
    // and print the induced Lemma 1 bound.
    let window = EquivalenceWindow::for_target(n);
    let trials = 400;
    let mut holds = 0usize;
    for t in 0..trials {
        let mut trial_rng = seeds.subsequence(2).child_rng(t);
        let web = CooperFrieze::sample(window.minimum_tree_size(), &config, &mut trial_rng)?;
        holds += cooper_frieze_window_event_holds(&web, &window) as usize;
    }
    let p_event = holds as f64 / trials as f64;
    let bound = theorem2_weak_bound(n, p_event)?;
    println!(
        "\nTheorem 2: window of {} equivalent pages, P(E) ≈ {p_event:.3} → bound {bound:.1} requests",
        window.len()
    );
    println!("a crawler must inspect Ω(√n) pages to find fresh content.");
    Ok(())
}
