//! Discrete power-law degree sequences.
//!
//! The "pure random graph" line of related work (Adamic et al., Sarshar et
//! al.) studies graphs whose degree distribution follows `P(d) ∝ d^{−k}`
//! with exponent `k` strictly between 2 and 3. This module samples such
//! sequences for the configuration model.

use crate::{CumulativeSampler, GeneratorError, Result};
use rand::Rng;

/// Parameters for a discrete power-law degree distribution
/// `P(d) ∝ d^{−exponent}` on `d ∈ [d_min, d_max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLawConfig {
    exponent: f64,
    d_min: usize,
    d_max: Option<usize>,
}

impl PowerLawConfig {
    /// Creates a configuration with the natural cutoff
    /// `d_max = n^{1/(exponent−1)}` applied at sampling time.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `exponent ≤ 1` or
    /// `d_min == 0`.
    pub fn new(exponent: f64, d_min: usize) -> Result<Self> {
        if !exponent.is_finite() || exponent <= 1.0 {
            return Err(GeneratorError::invalid(
                "exponent",
                exponent,
                "a finite value > 1",
            ));
        }
        if d_min == 0 {
            return Err(GeneratorError::invalid(
                "d_min",
                0usize,
                "a positive degree",
            ));
        }
        Ok(PowerLawConfig {
            exponent,
            d_min,
            d_max: None,
        })
    }

    /// Overrides the maximum degree cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `d_max < d_min`.
    pub fn with_cutoff(mut self, d_max: usize) -> Result<Self> {
        if d_max < self.d_min {
            return Err(GeneratorError::invalid("d_max", d_max, "a degree ≥ d_min"));
        }
        self.d_max = Some(d_max);
        Ok(self)
    }

    /// The power-law exponent `k`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Minimum degree.
    pub fn d_min(&self) -> usize {
        self.d_min
    }

    /// The cutoff that will apply for a graph on `n` vertices: the
    /// explicit override if set, else the natural cutoff
    /// `max(d_min, ⌊n^{1/(k−1)}⌋)`.
    pub fn cutoff_for(&self, n: usize) -> usize {
        match self.d_max {
            Some(d) => d,
            None => {
                let natural = (n as f64).powf(1.0 / (self.exponent - 1.0)).floor() as usize;
                natural.max(self.d_min)
            }
        }
    }
}

/// Samples a degree sequence of length `n` from the power law, adjusted
/// to an even stub sum (a requirement for the configuration model).
///
/// The parity fix increments one uniformly chosen entry that sits below
/// the cutoff (or decrements one above `d_min` if every entry is at the
/// cutoff), perturbing the distribution by O(1/n).
///
/// # Errors
///
/// Returns [`GeneratorError::InvalidParameter`] if `n == 0`.
///
/// # Example
///
/// ```
/// use nonsearch_generators::{power_law_degree_sequence, rng_from_seed, PowerLawConfig};
///
/// let cfg = PowerLawConfig::new(2.5, 1)?;
/// let mut rng = rng_from_seed(1);
/// let degrees = power_law_degree_sequence(1000, &cfg, &mut rng)?;
/// assert_eq!(degrees.len(), 1000);
/// assert_eq!(degrees.iter().sum::<usize>() % 2, 0);
/// # Ok::<(), nonsearch_generators::GeneratorError>(())
/// ```
pub fn power_law_degree_sequence<R: Rng + ?Sized>(
    n: usize,
    config: &PowerLawConfig,
    rng: &mut R,
) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(GeneratorError::invalid(
            "n",
            0usize,
            "a positive vertex count",
        ));
    }
    let d_min = config.d_min;
    let d_max = config.cutoff_for(n);
    let weights: Vec<f64> = (d_min..=d_max)
        .map(|d| (d as f64).powf(-config.exponent))
        .collect();
    let sampler = CumulativeSampler::new(&weights).expect("positive weights");
    let mut degrees: Vec<usize> = (0..n).map(|_| sampler.sample(rng) + d_min).collect();
    if degrees.iter().sum::<usize>() % 2 == 1 {
        // Find an adjustable entry; every sequence has one unless
        // d_min == d_max, where parity can only be fixed when n is even
        // (but then the sum d_min·n with odd total means d_min odd and n
        // odd — bump one entry anyway by +1 is out of range, so -1).
        if let Some(i) = pick_index_where(&degrees, |d| d < d_max, rng) {
            degrees[i] += 1;
        } else if let Some(i) = pick_index_where(&degrees, |d| d > d_min, rng) {
            degrees[i] -= 1;
        } else {
            return Err(GeneratorError::InvalidDegreeSequence {
                reason: format!("cannot fix odd stub sum with constant degree {d_min} and odd n"),
            });
        }
    }
    Ok(degrees)
}

fn pick_index_where<R: Rng + ?Sized>(
    degrees: &[usize],
    pred: impl Fn(usize) -> bool,
    rng: &mut R,
) -> Option<usize> {
    let candidates: Vec<usize> = degrees
        .iter()
        .enumerate()
        .filter(|&(_, &d)| pred(d))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn sequence_respects_bounds_and_parity() {
        let cfg = PowerLawConfig::new(2.3, 2)
            .unwrap()
            .with_cutoff(50)
            .unwrap();
        let mut rng = rng_from_seed(1);
        let seq = power_law_degree_sequence(501, &cfg, &mut rng).unwrap();
        assert_eq!(seq.len(), 501);
        assert!(seq.iter().all(|&d| (2..=50).contains(&d)));
        assert_eq!(seq.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn heavier_tail_for_smaller_exponent() {
        let mut rng = rng_from_seed(2);
        let shallow = PowerLawConfig::new(2.1, 1)
            .unwrap()
            .with_cutoff(1000)
            .unwrap();
        let steep = PowerLawConfig::new(3.5, 1)
            .unwrap()
            .with_cutoff(1000)
            .unwrap();
        let mean = |cfg: &PowerLawConfig, rng: &mut rand_chacha::ChaCha8Rng| {
            let seq = power_law_degree_sequence(20_000, cfg, rng).unwrap();
            seq.iter().sum::<usize>() as f64 / seq.len() as f64
        };
        assert!(mean(&shallow, &mut rng) > mean(&steep, &mut rng));
    }

    #[test]
    fn natural_cutoff_grows_with_n() {
        let cfg = PowerLawConfig::new(2.5, 1).unwrap();
        assert!(cfg.cutoff_for(100) < cfg.cutoff_for(100_000));
        // k = 2.5 → cutoff = n^{2/3}.
        assert_eq!(cfg.cutoff_for(1000), 99); // 1000^(2/3) ≈ 99.99…
    }

    #[test]
    fn explicit_cutoff_wins() {
        let cfg = PowerLawConfig::new(2.5, 1).unwrap().with_cutoff(7).unwrap();
        assert_eq!(cfg.cutoff_for(10_000_000), 7);
    }

    #[test]
    fn validation() {
        assert!(PowerLawConfig::new(1.0, 1).is_err());
        assert!(PowerLawConfig::new(f64::INFINITY, 1).is_err());
        assert!(PowerLawConfig::new(2.5, 0).is_err());
        assert!(PowerLawConfig::new(2.5, 5).unwrap().with_cutoff(4).is_err());
        let cfg = PowerLawConfig::new(2.5, 1).unwrap();
        let mut rng = rng_from_seed(3);
        assert!(power_law_degree_sequence(0, &cfg, &mut rng).is_err());
    }

    #[test]
    fn constant_degree_odd_n_unfixable() {
        let cfg = PowerLawConfig::new(2.0, 3).unwrap().with_cutoff(3).unwrap();
        let mut rng = rng_from_seed(4);
        // 3 stubs × 3 vertices = 9, odd and unfixable.
        assert!(power_law_degree_sequence(3, &cfg, &mut rng).is_err());
        // Even n is fine.
        assert!(power_law_degree_sequence(4, &cfg, &mut rng).is_ok());
    }

    #[test]
    fn empirical_frequencies_follow_power_law() {
        let cfg = PowerLawConfig::new(2.0, 1).unwrap().with_cutoff(4).unwrap();
        let mut rng = rng_from_seed(5);
        let seq = power_law_degree_sequence(100_000, &cfg, &mut rng).unwrap();
        let count = |d: usize| seq.iter().filter(|&&x| x == d).count() as f64;
        // P(1)/P(2) should be ≈ 4 for k = 2.
        let ratio = count(1) / count(2);
        assert!((ratio - 4.0).abs() < 0.3, "ratio = {ratio}");
    }
}
