//! Property-based tests for the corpus persistence layer: the mapped
//! (zero-copy) and heap-decoded load paths must be observationally
//! identical for arbitrary graphs, and any single-bit corruption of a
//! stored file must be detected by both.

use nonsearch_corpus::{build, nsg, BuildSpec, Corpus, LoadMode};
use nonsearch_fault::StorageFault;
use nonsearch_graph::{AlignedBytes, CsrBytes, UndirectedCsr};
use proptest::prelude::*;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Strategy: a small random multigraph as (n, edge list, shuffle seed).
/// The slot shuffle matters: it is exactly the per-vertex permutation a
/// stored corpus graph must preserve bit for bit.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, u64)> {
    (1usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..120);
        (Just(n), edges, 0u64..u64::MAX)
    })
}

fn build_graph(n: usize, edges: Vec<(usize, usize)>, shuffle_seed: u64) -> UndirectedCsr {
    let mut g = UndirectedCsr::from_edges(n, edges).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(shuffle_seed);
    g.shuffle_slots(&mut rng);
    g
}

fn temp_nsg(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!("corpus_prop_{}_{tag:016x}.nsg", std::process::id()))
}

proptest! {
    // Fixed case count: keeps CI time bounded and independent of the
    // proptest default.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline tentpole property: a mapped load and a heap decode
    /// of the same `.nsg` file are structurally identical — equality,
    /// every incidence slot in order, and every edge endpoint.
    #[test]
    fn mapped_and_heap_loads_agree((n, edges, seed) in arb_graph()) {
        let g = build_graph(n, edges, seed);
        let path = temp_nsg(seed);
        nsg::write_graph_file(&path, &g).unwrap();

        let heap = nsg::read_graph_file(&path).unwrap();
        let mapped = nsg::map_graph_file(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(&heap, &g);
        prop_assert_eq!(&mapped, &g);
        prop_assert_eq!(&mapped, &heap);
        prop_assert!(!heap.is_borrowed());
        if nonsearch_graph::zero_copy_support().is_ok() {
            prop_assert!(mapped.is_borrowed());
        }
        // Observational identity, accessor by accessor.
        prop_assert_eq!(mapped.node_count(), heap.node_count());
        prop_assert_eq!(mapped.edge_count(), heap.edge_count());
        for v in heap.nodes() {
            prop_assert_eq!(mapped.degree(v), heap.degree(v));
            prop_assert_eq!(mapped.incident(v), heap.incident(v));
        }
        for (e, uv) in heap.edges() {
            prop_assert_eq!(mapped.edge_endpoints(e).unwrap(), uv);
        }
        prop_assert_eq!(mapped.max_degree(), heap.max_degree());
        prop_assert_eq!(
            nonsearch_graph::degree_sequence(&mapped),
            nonsearch_graph::degree_sequence(&heap)
        );
    }

    /// A heap-held image served through the zero-copy region path is
    /// also identical, and mutating the borrowed view never writes
    /// through to the shared image.
    #[test]
    fn region_views_are_identical_and_copy_on_write((n, edges, seed) in arb_graph()) {
        let g = build_graph(n, edges, seed);
        let bytes = nsg::encode_graph(&g).unwrap();
        let region: Arc<dyn CsrBytes> = Arc::new(AlignedBytes::from_bytes(&bytes));
        let view = nsg::graph_from_region(Arc::clone(&region)).unwrap();
        prop_assert_eq!(&view, &g);

        let mut detached = view.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xDEAD);
        detached.shuffle_slots(&mut rng);
        prop_assert!(!detached.is_borrowed());
        // A fresh view of the same region still matches the original.
        let fresh = nsg::graph_from_region(region).unwrap();
        prop_assert_eq!(&fresh, &g);
    }

    /// Flipping any single bit of a stored file is detected by both
    /// load paths (header checks, payload checksum, or — for the length
    /// fields — the size-vs-header consistency check).
    #[test]
    fn any_single_bit_flip_is_detected(
        (n, edges, seed) in arb_graph(),
        flip_pos in 0usize..1 << 20,
        flip_bit in 0u8..8,
    ) {
        let g = build_graph(n, edges, seed);
        let mut bytes = nsg::encode_graph(&g).unwrap();
        let at = flip_pos % bytes.len();
        bytes[at] ^= 1 << flip_bit;

        let path = temp_nsg(seed ^ 0xF11F);
        std::fs::write(&path, &bytes).unwrap();
        let heap = nsg::read_graph_file(&path);
        let mapped = nsg::map_graph_file(&path);
        std::fs::remove_file(&path).ok();

        prop_assert!(heap.is_err(), "heap decode accepted a corrupt file");
        prop_assert!(mapped.is_err(), "mapped load accepted a corrupt file");
    }
}

proptest! {
    // Each case builds (and heals) a whole corpus; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A single injected bit flip anywhere in any stored `.nsg` file is
    /// detected by a plain verify, and a healing verify quarantines the
    /// corrupt blob and regenerates it **byte-identical** to the
    /// original — after which the untouched manifest checksums pass
    /// again.
    #[test]
    fn injected_bit_flip_is_detected_and_healed_byte_identical(
        seed in 0u64..1 << 32,
        file_pick in 0usize..64,
        bit_pick in 0u64..1 << 16,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "corpus_prop_heal_{}_{seed:08x}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let spec = BuildSpec {
            model_spec: "mori:p=0.6,m=1".to_string(),
            seed,
            sizes: vec![12, 20],
            trials: 1,
            variants: 1,
            swaps_per_edge: 2,
            threads: 1,
        };
        build(&dir, &spec).unwrap();

        let manifest = Corpus::open(&dir).unwrap().manifest().clone();
        let files: Vec<String> = manifest
            .graphs
            .iter()
            .flat_map(|g| {
                std::iter::once(g.file.clone())
                    .chain(g.variants.iter().map(|v| v.file.clone()))
            })
            .collect();
        let victim = &files[file_pick % files.len()];
        let path = dir.join(victim);
        let original = std::fs::read(&path).unwrap();
        let bit = bit_pick % (original.len() as u64 * 8);
        nonsearch_fault::corrupt_file(&path, StorageFault::BitFlip { bit }).unwrap();

        // Detected: the flip is visible to a plain verify wherever it
        // landed (the manifest checksum covers every stored byte).
        prop_assert!(
            Corpus::open(&dir).unwrap().verify().is_err(),
            "bit {bit} of {victim} went undetected"
        );

        // Healed: quarantined and regenerated byte-identical.
        let report = Corpus::open_healing(&dir, LoadMode::Heap, false, true)
            .unwrap()
            .verify()
            .unwrap();
        prop_assert_eq!(report.healed, 1);
        prop_assert_eq!(report.quarantined, 1);
        prop_assert_eq!(std::fs::read(&path).unwrap(), original);
        prop_assert!(Corpus::open(&dir).unwrap().verify().is_ok());

        std::fs::remove_dir_all(&dir).ok();
    }
}
