//! Degree-preserving edge-swap randomization (the null model of
//! Maslov–Sneppen, used by Adamic et al. and Rosvall et al. to separate
//! *wiring structure* from *degree sequence*).
//!
//! A double edge swap picks two distinct edges `(a, b)` and `(c, d)` and
//! rewires them to `(a, d), (c, b)` — every vertex keeps its degree
//! exactly. Iterating the swap is a Markov chain whose stationary
//! distribution is uniform over simple graphs with the given degree
//! sequence; proposals that would create a self-loop or a parallel edge
//! are rejected, which is what keeps the chain inside the simple-graph
//! state space.
//!
//! # Example
//!
//! ```
//! use nonsearch_generators::{degree_preserving_rewire, rng_from_seed, BarabasiAlbert};
//! use nonsearch_graph::degree_sequence;
//!
//! let mut rng = rng_from_seed(7);
//! let g = BarabasiAlbert::sample(64, 2, &mut rng)?.undirected();
//! let (null, stats) = degree_preserving_rewire(&g, 10, &mut rng)?;
//! assert_eq!(degree_sequence(&null), degree_sequence(&g));
//! assert!(stats.applied > 0);
//! # Ok::<(), nonsearch_generators::GeneratorError>(())
//! ```

use crate::GeneratorError;
use nonsearch_graph::{GraphProperties, UndirectedCsr};
use rand::Rng;
use std::collections::HashSet;

/// What the rewiring chain did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapStats {
    /// Swap proposals drawn.
    pub attempted: usize,
    /// Proposals applied (the rest would have created a self-loop or a
    /// parallel edge and were rejected).
    pub applied: usize,
}

/// Samples a degree-preserving null model of `graph` by running
/// `swaps_per_edge * edge_count` successful double edge swaps (bounded
/// by an attempt budget, so rigid graphs like stars terminate).
///
/// The input must be a *simple* graph — no self-loops, no parallel
/// edges — because the swap chain's state space is the set of simple
/// graphs with the input's degree sequence. The output is again simple,
/// with the exact same per-vertex degrees.
///
/// # Errors
///
/// Returns [`GeneratorError::InvalidParameter`] if `graph` has
/// self-loops or parallel edges.
pub fn degree_preserving_rewire<R: Rng + ?Sized>(
    graph: &UndirectedCsr,
    swaps_per_edge: usize,
    rng: &mut R,
) -> crate::Result<(UndirectedCsr, SwapStats)> {
    if graph.self_loop_count() > 0 {
        return Err(GeneratorError::invalid(
            "graph",
            format!("{} self-loops", graph.self_loop_count()),
            "a simple graph (no self-loops)",
        ));
    }
    if graph.parallel_edge_count() > 0 {
        return Err(GeneratorError::invalid(
            "graph",
            format!("{} parallel edges", graph.parallel_edge_count()),
            "a simple graph (no parallel edges)",
        ));
    }

    let n = graph.node_count();
    let mut edges: Vec<(usize, usize)> = graph
        .edges()
        .map(|(_, (u, v))| (u.index(), v.index()))
        .collect();
    let m = edges.len();
    let mut stats = SwapStats {
        attempted: 0,
        applied: 0,
    };
    if m < 2 {
        // Nothing to swap; the null model is the graph itself.
        return Ok((rebuild(n, &edges), stats));
    }

    let key = |u: usize, v: usize| -> (usize, usize) { (u.min(v), u.max(v)) };
    let mut present: HashSet<(usize, usize)> = edges.iter().map(|&(u, v)| key(u, v)).collect();

    let target = swaps_per_edge * m;
    // Rejection headroom: dense or rigid graphs reject most proposals;
    // beyond this budget we accept however far the chain got.
    let max_attempts = target.saturating_mul(20).max(64);
    while stats.applied < target && stats.attempted < max_attempts {
        stats.attempted += 1;
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        // Swapping the orientation of one picked edge makes the proposal
        // distribution symmetric over both rewirings of the 2-swap.
        let (c, d) = if rng.gen_bool(0.5) {
            edges[j]
        } else {
            let (c, d) = edges[j];
            (d, c)
        };
        // Proposed replacement: (a, d) and (c, b).
        if a == d || c == b {
            continue; // self-loop
        }
        let (k1, k2) = (key(a, d), key(c, b));
        if k1 == k2 || present.contains(&k1) || present.contains(&k2) {
            continue; // parallel edge
        }
        present.remove(&key(a, b));
        present.remove(&key(c, d));
        present.insert(k1);
        present.insert(k2);
        edges[i] = (a, d);
        edges[j] = (c, b);
        stats.applied += 1;
    }

    Ok((rebuild(n, &edges), stats))
}

fn rebuild(n: usize, edges: &[(usize, usize)]) -> UndirectedCsr {
    UndirectedCsr::from_edges(n, edges.iter().copied())
        .expect("swapped endpoints stay within the original vertex range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rng_from_seed, BarabasiAlbert, ErdosRenyi};
    use nonsearch_graph::degree_sequence;

    fn ba(n: usize, m: usize, seed: u64) -> UndirectedCsr {
        BarabasiAlbert::sample(n, m, &mut rng_from_seed(seed))
            .unwrap()
            .undirected()
    }

    #[test]
    fn rewiring_preserves_degrees_and_simplicity() {
        let g = ba(200, 2, 1);
        let mut rng = rng_from_seed(2);
        let (null, stats) = degree_preserving_rewire(&g, 10, &mut rng).unwrap();
        assert_eq!(degree_sequence(&null), degree_sequence(&g));
        assert_eq!(null.edge_count(), g.edge_count());
        assert_eq!(null.self_loop_count(), 0);
        assert_eq!(null.parallel_edge_count(), 0);
        assert!(stats.applied > 0);
        assert!(stats.attempted >= stats.applied);
    }

    #[test]
    fn rewiring_actually_changes_the_wiring() {
        let g = ba(200, 2, 3);
        let mut rng = rng_from_seed(4);
        let (null, _) = degree_preserving_rewire(&g, 10, &mut rng).unwrap();
        let before: HashSet<(usize, usize)> = g
            .edges()
            .map(|(_, (u, v))| (u.index().min(v.index()), u.index().max(v.index())))
            .collect();
        let after: HashSet<(usize, usize)> = null
            .edges()
            .map(|(_, (u, v))| (u.index().min(v.index()), u.index().max(v.index())))
            .collect();
        assert_ne!(before, after, "10 swaps/edge should move some edges");
    }

    #[test]
    fn rewiring_is_deterministic_per_seed() {
        let g = ba(100, 2, 5);
        let (a, _) = degree_preserving_rewire(&g, 5, &mut rng_from_seed(6)).unwrap();
        let (b, _) = degree_preserving_rewire(&g, 5, &mut rng_from_seed(6)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn star_graph_has_no_valid_swaps_but_terminates() {
        let star = UndirectedCsr::from_edges(6, (1..6).map(|i| (0, i))).unwrap();
        let mut rng = rng_from_seed(7);
        let (null, stats) = degree_preserving_rewire(&star, 10, &mut rng).unwrap();
        // Every swap proposal creates a parallel edge at the hub.
        assert_eq!(stats.applied, 0);
        assert_eq!(degree_sequence(&null), degree_sequence(&star));
    }

    #[test]
    fn er_graphs_rewire_cleanly() {
        let g = ErdosRenyi::gnm(60, 120, &mut rng_from_seed(8)).unwrap();
        let (null, _) = degree_preserving_rewire(&g, 8, &mut rng_from_seed(9)).unwrap();
        assert_eq!(degree_sequence(&null), degree_sequence(&g));
        assert_eq!(null.parallel_edge_count(), 0);
        assert_eq!(null.self_loop_count(), 0);
    }

    #[test]
    fn multigraphs_are_rejected() {
        let loops = UndirectedCsr::from_edges(2, [(0, 0), (0, 1)]).unwrap();
        assert!(degree_preserving_rewire(&loops, 1, &mut rng_from_seed(1)).is_err());
        let parallel = UndirectedCsr::from_edges(2, [(0, 1), (0, 1)]).unwrap();
        assert!(degree_preserving_rewire(&parallel, 1, &mut rng_from_seed(1)).is_err());
    }

    #[test]
    fn tiny_graphs_are_identity() {
        let single = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let (null, stats) = degree_preserving_rewire(&single, 10, &mut rng_from_seed(1)).unwrap();
        assert_eq!(null.edge_count(), 1);
        assert_eq!(stats.applied, 0);
    }

    #[test]
    fn vertex_range_is_preserved() {
        let g = ba(50, 1, 10);
        let (null, _) = degree_preserving_rewire(&g, 4, &mut rng_from_seed(11)).unwrap();
        assert_eq!(null.node_count(), g.node_count());
        assert!(null.nodes().all(|v| v.index() < g.node_count()));
    }
}
