//! The Molloy–Reed configuration model.
//!
//! Builds a random (multi)graph with a prescribed degree sequence by
//! pairing degree stubs uniformly at random — the "pure random graph"
//! model of the paper's related work, in which "the degrees of neighbors
//! are independent", in contrast to the evolving models.

use crate::{GeneratorError, Result};
use nonsearch_graph::{NodeId, UndirectedCsr};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// What to do with self-loops and parallel edges created by stub pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplificationPolicy {
    /// Keep the multigraph exactly as paired (degrees match exactly).
    Multigraph,
    /// Drop self-loops and duplicate edges ("erased" configuration
    /// model); degrees may shrink slightly.
    Erased,
    /// Re-pair from scratch until the graph is simple, giving the uniform
    /// distribution over simple graphs with the sequence.
    Reject {
        /// Maximum number of complete re-pairings to attempt.
        max_attempts: usize,
    },
}

/// A sampled configuration-model graph.
///
/// # Example
///
/// ```
/// use nonsearch_generators::{rng_from_seed, ConfigModel, SimplificationPolicy};
///
/// let degrees = vec![3, 2, 2, 1, 1, 1];
/// let mut rng = rng_from_seed(1);
/// let g = ConfigModel::sample(&degrees, SimplificationPolicy::Multigraph, &mut rng)?;
/// // Multigraph pairing preserves the degree sequence exactly.
/// let got: Vec<usize> = (0..6)
///     .map(|i| g.graph().degree(nonsearch_graph::NodeId::new(i)))
///     .collect();
/// assert_eq!(got, degrees);
/// # Ok::<(), nonsearch_generators::GeneratorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConfigModel {
    graph: UndirectedCsr,
    requested: Vec<usize>,
    policy: SimplificationPolicy,
}

impl ConfigModel {
    /// Samples a graph with the given degree sequence.
    ///
    /// # Errors
    ///
    /// * [`GeneratorError::InvalidDegreeSequence`] if the sequence is
    ///   empty, has an odd sum, or (for non-multigraph policies) contains
    ///   a degree ≥ n.
    /// * [`GeneratorError::RejectionBudgetExhausted`] if
    ///   [`SimplificationPolicy::Reject`] runs out of attempts.
    pub fn sample<R: Rng + ?Sized>(
        degrees: &[usize],
        policy: SimplificationPolicy,
        rng: &mut R,
    ) -> Result<ConfigModel> {
        if degrees.is_empty() {
            return Err(GeneratorError::InvalidDegreeSequence {
                reason: "empty degree sequence".into(),
            });
        }
        let stub_sum: usize = degrees.iter().sum();
        if stub_sum % 2 == 1 {
            return Err(GeneratorError::InvalidDegreeSequence {
                reason: format!("stub sum {stub_sum} is odd"),
            });
        }
        let n = degrees.len();
        if !matches!(policy, SimplificationPolicy::Multigraph) {
            if let Some(&bad) = degrees.iter().find(|&&d| d >= n) {
                return Err(GeneratorError::InvalidDegreeSequence {
                    reason: format!("degree {bad} ≥ n = {n} cannot be simple"),
                });
            }
        }

        let mut stubs: Vec<NodeId> = Vec::with_capacity(stub_sum);
        for (i, &d) in degrees.iter().enumerate() {
            for _ in 0..d {
                stubs.push(NodeId::new(i));
            }
        }

        let pair_once = |stubs: &mut Vec<NodeId>, rng: &mut R| -> Vec<(usize, usize)> {
            stubs.shuffle(rng);
            stubs
                .chunks_exact(2)
                .map(|c| (c[0].index(), c[1].index()))
                .collect()
        };

        let edges = match policy {
            SimplificationPolicy::Multigraph => pair_once(&mut stubs, rng),
            SimplificationPolicy::Erased => {
                let mut seen = HashSet::new();
                pair_once(&mut stubs, rng)
                    .into_iter()
                    .filter(|&(u, v)| u != v && seen.insert((u.min(v), u.max(v))))
                    .collect()
            }
            SimplificationPolicy::Reject { max_attempts } => {
                let mut found = None;
                for _ in 0..max_attempts {
                    let candidate = pair_once(&mut stubs, rng);
                    let mut seen = HashSet::new();
                    let simple = candidate
                        .iter()
                        .all(|&(u, v)| u != v && seen.insert((u.min(v), u.max(v))));
                    if simple {
                        found = Some(candidate);
                        break;
                    }
                }
                found.ok_or(GeneratorError::RejectionBudgetExhausted {
                    attempts: max_attempts,
                })?
            }
        };

        let graph = UndirectedCsr::from_edges(n, edges)
            .expect("stub endpoints are in range by construction");
        Ok(ConfigModel {
            graph,
            requested: degrees.to_vec(),
            policy,
        })
    }

    /// The sampled undirected graph.
    pub fn graph(&self) -> &UndirectedCsr {
        &self.graph
    }

    /// The degree sequence that was requested.
    pub fn requested_degrees(&self) -> &[usize] {
        &self.requested
    }

    /// The simplification policy used.
    pub fn policy(&self) -> SimplificationPolicy {
        self.policy
    }

    /// Number of stubs lost to simplification (0 for
    /// [`SimplificationPolicy::Multigraph`] and `Reject`).
    pub fn erased_stubs(&self) -> usize {
        let requested: usize = self.requested.iter().sum();
        requested - 2 * self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use nonsearch_graph::GraphProperties;

    #[test]
    fn multigraph_preserves_degrees_exactly() {
        let degrees = vec![5, 4, 3, 2, 1, 1, 1, 1];
        let mut rng = rng_from_seed(1);
        let g = ConfigModel::sample(&degrees, SimplificationPolicy::Multigraph, &mut rng).unwrap();
        for (i, &d) in degrees.iter().enumerate() {
            assert_eq!(g.graph().degree(NodeId::new(i)), d);
        }
        assert_eq!(g.erased_stubs(), 0);
    }

    #[test]
    fn erased_graph_is_simple() {
        let degrees = vec![4; 20];
        let mut rng = rng_from_seed(2);
        let g = ConfigModel::sample(&degrees, SimplificationPolicy::Erased, &mut rng).unwrap();
        assert_eq!(g.graph().self_loop_count(), 0);
        assert_eq!(g.graph().parallel_edge_count(), 0);
        // Degrees never exceed the request.
        for (i, &d) in degrees.iter().enumerate() {
            assert!(g.graph().degree(NodeId::new(i)) <= d);
        }
    }

    #[test]
    fn reject_policy_yields_simple_graph_with_exact_degrees() {
        let degrees = vec![2, 2, 2, 2, 2, 2];
        let mut rng = rng_from_seed(3);
        let g = ConfigModel::sample(
            &degrees,
            SimplificationPolicy::Reject {
                max_attempts: 10_000,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(g.graph().self_loop_count(), 0);
        assert_eq!(g.graph().parallel_edge_count(), 0);
        for (i, &d) in degrees.iter().enumerate() {
            assert_eq!(g.graph().degree(NodeId::new(i)), d);
        }
    }

    #[test]
    fn reject_budget_can_exhaust() {
        // [3,3,1,1] passes the per-degree check but fails Erdős–Gallai:
        // no simple graph realizes it, so every pairing is rejected.
        let degrees = vec![3, 3, 1, 1];
        let mut rng = rng_from_seed(4);
        let err = ConfigModel::sample(
            &degrees,
            SimplificationPolicy::Reject { max_attempts: 50 },
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GeneratorError::RejectionBudgetExhausted { .. }
        ));
    }

    #[test]
    fn odd_sum_rejected() {
        let mut rng = rng_from_seed(5);
        let err = ConfigModel::sample(&[1, 1, 1], SimplificationPolicy::Multigraph, &mut rng)
            .unwrap_err();
        assert!(matches!(err, GeneratorError::InvalidDegreeSequence { .. }));
    }

    #[test]
    fn degree_at_least_n_rejected_for_simple() {
        let mut rng = rng_from_seed(6);
        assert!(ConfigModel::sample(&[3, 1, 1, 1], SimplificationPolicy::Erased, &mut rng).is_ok());
        assert!(ConfigModel::sample(
            &[4, 2, 1, 1],
            SimplificationPolicy::Reject { max_attempts: 10 },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn empty_sequence_rejected() {
        let mut rng = rng_from_seed(7);
        assert!(ConfigModel::sample(&[], SimplificationPolicy::Multigraph, &mut rng).is_err());
    }

    #[test]
    fn determinism_per_seed() {
        let degrees = vec![3, 3, 2, 2, 1, 1];
        let a = ConfigModel::sample(
            &degrees,
            SimplificationPolicy::Multigraph,
            &mut rng_from_seed(8),
        )
        .unwrap();
        let b = ConfigModel::sample(
            &degrees,
            SimplificationPolicy::Multigraph,
            &mut rng_from_seed(8),
        )
        .unwrap();
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn zero_degree_vertices_allowed() {
        let degrees = vec![0, 2, 1, 1];
        let mut rng = rng_from_seed(9);
        let g = ConfigModel::sample(&degrees, SimplificationPolicy::Multigraph, &mut rng).unwrap();
        assert_eq!(g.graph().degree(NodeId::new(0)), 0);
    }
}
