//! `nonsearch_engine` — the deterministic parallel Monte-Carlo trial
//! engine, structured run records, and the `xp` experiment-CLI plumbing.
//!
//! Every quantitative claim in the paper is reproduced by Monte-Carlo
//! sweeps over cells (model × size × searcher × policy). This crate is
//! the shared substrate those sweeps run on:
//!
//! * [`run_cell`] / [`run_lanes`] — shard a cell's trials across scoped
//!   worker threads with per-trial RNG streams derived from
//!   [`SeedSequence`](nonsearch_generators::SeedSequence), aggregating
//!   via streaming (Welford) statistics in strict trial order, so the
//!   result is **bit-identical for 1 or N threads**.
//! * [`run_ordered`] — the deterministic parallel *map* companion:
//!   results come back in job order for any worker count (the corpus
//!   builder shards graph generation through it).
//! * [`install_faults`] / [`FailurePolicy`] — the chaos seam: a
//!   thread-local fault bundle the runner snapshots at cell entry to
//!   inject deterministic trial panics/stalls (e.g. from a seeded
//!   `nonsearch_fault::FaultPlan`) and contain, retry, or skip the
//!   failing trials, with an optional watchdog that degrades a stuck
//!   cell gracefully instead of hanging the run.
//! * [`GraphSource`] — where a trial's graph comes from: generated on
//!   the fly or served from a persistent corpus (`nonsearch_corpus`).
//! * [`CliOptions`] — the experiment flag set (`--quick`, `--threads`,
//!   `--seed`, `--out`, `--format`, `--trials`, `--sizes`,
//!   `--corpus`, `--mmap`), parsed once.
//! * [`RunWriter`] — JSON Lines + CSV run records (params, seed, git
//!   describe, wall time, mean/CI/success) alongside the pretty tables.
//! * [`Registry`] — the `xp` subcommand registry: `xp list`,
//!   `xp <experiment> [flags]`, `xp validate <file>`,
//!   `xp profile-diff <run.jsonl>`.
//! * [`Metrics`] / [`Tracer`] (re-exported from `nonsearch_obs`) — the
//!   allocation-free per-worker counter bundle merged by
//!   [`run_lanes_metered`], and the span tracer behind `--trace`.
//! * [`json`] — a dependency-free JSON value/serializer/parser (the
//!   workspace's vendored `serde` is a no-op stub).
//!
//! # Example: a deterministic parallel cell
//!
//! ```
//! use nonsearch_engine::{run_cell, TrialMeasure};
//! use nonsearch_generators::SeedSequence;
//!
//! let seeds = SeedSequence::new(7);
//! let measure = |_trial: usize, seeds: SeedSequence| {
//!     let draw = seeds.child(0) % 100;
//!     TrialMeasure::new(draw as f64, draw < 90)
//! };
//! let one = run_cell(64, 1, &seeds, measure);
//! let four = run_cell(64, 4, &seeds, measure);
//! assert_eq!(one, four); // bit-identical aggregates
//! assert_eq!(one.count(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
pub mod json;
mod options;
pub mod profile_diff;
mod record;
mod registry;
pub mod report;
mod runner;
mod source;

pub use faults::{
    install_faults, FailurePolicy, FaultHook, FaultInjection, FaultScope, InjectedFault,
};
pub use json::{parse as parse_json, JsonError, JsonValue};
pub use nonsearch_obs::{
    elapsed_ns, prometheus_text, render_log2_histogram, Log2Histogram, Metrics, PhaseTimes,
    ResourceSample, SpanGuard, Tracer, HISTOGRAM_BUCKETS,
};
pub use options::{CliOptions, OptionsError, OutputFormat};
pub use record::{
    git_describe, metrics_fields, resource_fields, RunSummary, RunWriter, CELL_TYPE,
    DIAGNOSTIC_TYPE, FAULT_TYPE, LINT_TYPE, METRICS_TYPE, PROFILE_TYPE, RESOURCE_TYPE, RUN_TYPE,
};
pub use registry::{
    run_legacy, validate_chrome_trace, validate_jsonl, ExpContext, ExperimentSpec, Registry,
    ValidateSummary,
};
pub use runner::{
    resolved_workers, run_cell, run_cell_metered, run_cell_observed, run_cell_with, run_lanes,
    run_lanes_metered, run_lanes_observed, run_lanes_with, run_ordered, trial_seeds, LaneAggregate,
    TrialMeasure, TrialObs,
};
pub use source::{FnSource, GraphSource};
