//! Exact enumeration of small Móri trees.
//!
//! A Móri tree on `n` vertices is determined by the father vector
//! `(N_2, …, N_n)` (with `N_2 = 1` always); enumerating all vectors with
//! their exact probabilities lets us verify Lemma 2's exchangeability
//! claim *exactly* rather than statistically — the distribution over
//! trees must be literally invariant under window permutations.

use crate::theory::{check_probability, CoreError};

/// A father assignment: entry `i` is the (one-based) father label of the
/// vertex with label `i + 2`.
pub type FatherVector = Vec<usize>;

/// The exact distribution over Móri trees of a given size.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDistribution {
    n: usize,
    p: f64,
    outcomes: Vec<(FatherVector, f64)>,
}

impl TreeDistribution {
    /// Number of vertices per tree.
    pub fn tree_size(&self) -> usize {
        self.n
    }

    /// The mixing parameter.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// All `(fathers, probability)` outcomes.
    pub fn outcomes(&self) -> &[(FatherVector, f64)] {
        &self.outcomes
    }

    /// Total probability mass (should be 1 up to rounding).
    pub fn total_mass(&self) -> f64 {
        self.outcomes.iter().map(|(_, q)| q).sum()
    }

    /// Probability of the outcomes satisfying `pred`.
    pub fn mass_where<F: Fn(&FatherVector) -> bool>(&self, pred: F) -> f64 {
        self.outcomes
            .iter()
            .filter(|(f, _)| pred(f))
            .map(|(_, q)| q)
            .sum()
    }

    /// Probability of one specific father vector (0 if absent).
    pub fn probability_of(&self, fathers: &[usize]) -> f64 {
        self.outcomes
            .iter()
            .find(|(f, _)| f == fathers)
            .map(|(_, q)| *q)
            .unwrap_or(0.0)
    }
}

/// Enumerates every Móri tree on `n` vertices with its exact probability.
///
/// The recursion follows the model: vertex `k` chooses father `u` with
/// probability `[p·d(u) + (1−p)] / [p(k−2) + (1−p)(k−1)]` where `d(u)` is
/// the indegree of `u` just before time `k`.
///
/// There are `(n−2)!` outcomes at most (`N_k ∈ [1, k−1]`), so keep
/// `n ≤ 10` or so.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `n < 2`, `n > 12`, or
/// `p ∉ [0, 1]`.
pub fn enumerate_mori_trees(n: usize, p: f64) -> crate::Result<TreeDistribution> {
    check_probability("p", p)?;
    if !(2..=12).contains(&n) {
        return Err(CoreError::invalid("n", n, "a tree size in [2, 12]"));
    }
    let mut outcomes: Vec<(FatherVector, f64)> = Vec::new();
    // State: fathers chosen so far (vertex 2 fixed to father 1), indegrees.
    let mut fathers: FatherVector = vec![1];
    let mut indegree = vec![0usize; n + 1]; // 1-based labels
    indegree[1] = 1;
    recurse(n, p, 3, &mut fathers, &mut indegree, 1.0, &mut outcomes);
    Ok(TreeDistribution { n, p, outcomes })
}

fn recurse(
    n: usize,
    p: f64,
    k: usize,
    fathers: &mut FatherVector,
    indegree: &mut [usize],
    prob: f64,
    out: &mut Vec<(FatherVector, f64)>,
) {
    if k > n {
        out.push((fathers.clone(), prob));
        return;
    }
    let denom = p * (k - 2) as f64 + (1.0 - p) * (k - 1) as f64;
    for u in 1..k {
        let weight = p * indegree[u] as f64 + (1.0 - p);
        if weight <= 0.0 {
            continue; // p = 1 and indegree 0: unreachable father
        }
        fathers.push(u);
        indegree[u] += 1;
        recurse(n, p, k + 1, fathers, indegree, prob * weight / denom, out);
        indegree[u] -= 1;
        fathers.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masses_sum_to_one() {
        for &p in &[0.0, 0.3, 0.7, 1.0] {
            for n in 2..=7 {
                let dist = enumerate_mori_trees(n, p).unwrap();
                assert!(
                    (dist.total_mass() - 1.0).abs() < 1e-9,
                    "n = {n}, p = {p}: mass = {}",
                    dist.total_mass()
                );
            }
        }
    }

    #[test]
    fn smallest_tree_is_deterministic() {
        let dist = enumerate_mori_trees(2, 0.5).unwrap();
        assert_eq!(dist.outcomes().len(), 1);
        assert_eq!(dist.outcomes()[0].0, vec![1]);
    }

    #[test]
    fn n3_matches_closed_form() {
        // P(N_3 = 1) = 1/(2−p).
        let p = 0.4;
        let dist = enumerate_mori_trees(3, p).unwrap();
        let prob = dist.probability_of(&[1, 1]);
        assert!((prob - 1.0 / (2.0 - p)).abs() < 1e-12);
        let prob2 = dist.probability_of(&[1, 2]);
        assert!((prob2 - (1.0 - p) / (2.0 - p)).abs() < 1e-12);
    }

    #[test]
    fn p_one_is_the_star() {
        let dist = enumerate_mori_trees(6, 1.0).unwrap();
        let star_mass = dist.mass_where(|f| f.iter().all(|&x| x == 1));
        assert!((star_mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn p_zero_is_uniform_recursive() {
        // Every father vector has probability ∏ 1/(k−1).
        let dist = enumerate_mori_trees(5, 0.0).unwrap();
        let expect = 1.0 / (2.0 * 3.0 * 4.0);
        for (_, q) in dist.outcomes() {
            assert!((q - expect).abs() < 1e-12);
        }
        assert_eq!(dist.outcomes().len(), 24);
    }

    #[test]
    fn outcome_count_is_factorial() {
        // For p < 1 all (n−2)!·1 vectors are reachable… actually
        // N_k ranges over k−1 choices: total ∏_{k=3}^{n}(k−1) = (n−1)!/1.
        let dist = enumerate_mori_trees(6, 0.5).unwrap();
        assert_eq!(dist.outcomes().len(), 2 * 3 * 4 * 5);
    }

    #[test]
    fn event_mass_matches_exact_formula() {
        use crate::theory::mori_event_probability_exact;
        // E_{a,b} with a = 3, b = 5 on trees of size 5.
        let p = 0.6;
        let dist = enumerate_mori_trees(5, p).unwrap();
        let event_mass = dist.mass_where(|f| {
            // Vertices 4 and 5 (entries 2 and 3) must have fathers ≤ 3.
            f[2] <= 3 && f[3] <= 3
        });
        let exact = mori_event_probability_exact(3, 5, p).unwrap();
        assert!(
            (event_mass - exact).abs() < 1e-12,
            "enumerated {event_mass} vs closed form {exact}"
        );
    }

    #[test]
    fn validation() {
        assert!(enumerate_mori_trees(1, 0.5).is_err());
        assert!(enumerate_mori_trees(13, 0.5).is_err());
        assert!(enumerate_mori_trees(5, 1.5).is_err());
    }
}
