//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest this workspace's property suites
//! use: the [`proptest!`] macro, range / tuple / [`Just`] strategies,
//! [`collection::vec`] and [`collection::hash_set`], `prop_flat_map` /
//! `prop_map`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` assertion macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and
//!   message but is not minimized.
//! * **Deterministic by construction.** Each test's RNG is seeded from a
//!   hash of its module path and name, so failures reproduce exactly on
//!   every run and machine — there is no persistence file.
//! * Rejection via [`prop_assume!`] retries up to a fixed multiple of the
//!   configured case count before giving up (matching upstream's
//!   max-global-rejects spirit).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a vector whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a hash set with size uniform in `size` (element
    /// collisions are retried a bounded number of times, so very tight
    /// domains may yield slightly smaller sets).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.clone());
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 32 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! The glob-import surface test files rely on.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Supported grammar (a subset of upstream's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn prop(x in 0usize..10, (a, b) in (0..5, 0..5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategies = ($($crate::strategy::__accept_strategy($strat),)+);
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while ran < config.cases {
                ::core::assert!(
                    attempts < max_attempts,
                    "proptest {}: too many rejected cases ({} attempts, {} ran)",
                    stringify!($name), attempts, ran,
                );
                attempts += 1;
                let ($($pat,)+) =
                    $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let case = move ||
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                match case() {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        ::core::panic!(
                            "proptest {} failed at case #{}: {}",
                            stringify!($name), ran, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    ::std::format!(
                        "{} at {}:{}",
                        ::std::format!($($fmt)*),
                        file!(),
                        line!(),
                    ),
                ),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*), l, r,
        );
    }};
}

/// Fails the current test case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

/// Rejects the current test case (it is retried with fresh inputs)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
