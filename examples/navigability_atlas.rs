//! Navigability atlas: Kleinberg's lattice vs the paper's scale-free
//! models.
//!
//! The paper's framing: Kleinberg showed *some* small worlds are
//! navigable (greedy routing in `O(log² n)` at the critical exponent
//! `r = 2`), and asked whether scale-free graphs are too. This example
//! routes greedily on lattices across `r` and then runs the best local
//! searchers on a Móri graph of comparable size — the navigable/
//! non-searchable contrast in one screen.
//!
//! Run with: `cargo run --release --example navigability_atlas`

use nonsearch::analysis::SampleStats;
use nonsearch::generators::{KleinbergGrid, MergedMori, SeedSequence};
use nonsearch::graph::NodeId;
use nonsearch::search::{greedy_route, run_weak, SearchTask, SearcherKind};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 64; // 4096 lattice vertices
    let n = side * side;
    let seeds = SeedSequence::new(99);

    println!("greedy routing on {side}×{side} Kleinberg grids (q = 1 long link/vertex):");
    println!("  r = clustering exponent; r = 2 is Kleinberg's navigable point\n");
    for r in [0.0, 1.0, 2.0, 3.0] {
        let mut rng = seeds.child_rng((r * 10.0) as u64);
        let grid = KleinbergGrid::sample(side, r, 1, &mut rng)?;
        let mut steps = Vec::new();
        for _ in 0..200 {
            let s = NodeId::new(rng.gen_range(0..n));
            let t = NodeId::new(rng.gen_range(0..n));
            let out = greedy_route(&grid, s, t, 10 * side * side);
            assert!(out.reached, "greedy cannot get stuck on a full lattice");
            steps.push(out.steps as f64);
        }
        let stats = SampleStats::from_slice(&steps).expect("non-empty");
        println!(
            "  r = {r:.1}: mean {:>6.1} hops, median {:>5.1}, max {:>5.0}",
            stats.mean(),
            stats.median(),
            stats.max()
        );
    }
    println!(
        "\n  (log₂²(n) ≈ {:.0} — the r = 2 row sits near it, the others above)",
        (n as f64).log2().powi(2)
    );

    println!("\nsearching a merged Móri graph of the same size (n = {n}, p = 0.5, m = 2):");
    let mut rng = seeds.child_rng(1000);
    let mori = MergedMori::sample(n, 2, 0.5, &mut rng)?;
    let graph = mori.undirected();
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(50 * n);
    for kind in [
        SearcherKind::GreedyId,
        SearcherKind::HighDegree,
        SearcherKind::SimStrongHighDegree,
    ] {
        let mut searcher = kind.build();
        let outcome = run_weak(&graph, &task, &mut *searcher, &mut rng)?;
        println!(
            "  {:>24}: {:>7} requests (√n = {:.0}, log²n = {:.0})",
            kind.name(),
            outcome.requests,
            (n as f64).sqrt(),
            (n as f64).log2().powi(2)
        );
    }
    println!("\ntakeaway: lattice greed rides its coordinates to polylog routes;");
    println!("scale-free identities carry no such geometry — costs sit at √n scale,");
    println!("exactly the paper's negative answer to Kleinberg's question.");
    Ok(())
}
