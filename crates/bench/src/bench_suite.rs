//! `xp bench` — the standardized engine benchmark suite.
//!
//! One command measures the three throughput surfaces regressions have
//! historically hidden in, and writes a schema-versioned suite record
//! (`BENCH_engine_suite.json`) that `xp profile-diff --suite` gates
//! against the committed copy:
//!
//! * **oracle** — the weak-model full flood on BA(m=2) at
//!   n ∈ {1 000, 10 000, 100 000}, pooled scratch, the same harness as
//!   `benches/oracle_ops.rs` (requests/sec).
//! * **corpus_load** — decoding a freshly-opened corpus, heap vs mmap
//!   (graphs/sec). The `Corpus` handle is reopened for every measured
//!   round, because loads are cached per handle — a warm handle would
//!   measure an `Arc` clone, not the decode path.
//! * **thread_scaling** — one weak-model Monte-Carlo cell through the
//!   engine at 1 / 2 / 4 workers (requests/sec), catching regressions
//!   in the runner's backpressure/merge machinery that single-threaded
//!   lanes cannot see.
//!
//! Every cell carries a uniform higher-is-better `throughput` field
//! keyed by `section`/`key`, so the diff is an exact match — no
//! nearest-`n` heuristics. Quick mode (`--quick`) runs a reduced sweep
//! and writes `BENCH_engine_suite.quick.json` instead, so a truncated
//! run can never clobber the committed full record.

use crate::{weak_cell_with_policy, StartPolicy};
use nonsearch_core::{BarabasiAlbertModel, MergedMoriModel, ModelSource};
use nonsearch_corpus::{build, BuildSpec, Corpus, LoadMode};
use nonsearch_engine::{git_describe, json::JsonValue, GraphSource};
use nonsearch_generators::SeedSequence;
use nonsearch_graph::{NodeId, UndirectedCsr};
use nonsearch_search::{
    FrontierCursors, SearchScratch, SearcherKind, SuccessCriterion, WeakSearchState,
};
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "usage: xp bench [--quick] [--out FILE]";

/// Suite record schema version; `xp profile-diff --suite` rejects
/// records with any other value.
pub const SUITE_SCHEMA_VERSION: u64 = 1;

/// Default output path of the full suite (committed at the repo root).
pub const SUITE_RECORD: &str = "BENCH_engine_suite.json";

/// Output path quick runs are redirected to (gitignored).
pub const SUITE_RECORD_QUICK: &str = "BENCH_engine_suite.quick.json";

/// One measured suite cell, pre-serialization.
struct Cell {
    section: &'static str,
    key: String,
    throughput: f64,
    detail: Vec<(&'static str, JsonValue)>,
}

/// The weak-model full flood (one request per unexplored edge slot of
/// each discovered vertex, discovery order): the oracle hot path with
/// zero strategy overhead — identical to the `oracle_ops` bench lane,
/// so the suite's numbers stay comparable with the criterion history.
fn weak_flood(
    scratch: &mut SearchScratch,
    cursors: &mut FrontierCursors,
    graph: &UndirectedCsr,
) -> usize {
    cursors.reset();
    let mut state = WeakSearchState::new_in(scratch, graph, NodeId::from_label(1)).unwrap();
    let mut cursor = 0usize;
    while cursor < state.view().len() {
        let v = state.view().discovered()[cursor];
        match cursors.next_unexplored(state.view(), v) {
            Some(e) => {
                state.request(v, e).unwrap();
            }
            None => cursor += 1,
        }
    }
    state.requests()
}

fn ba_graph(n: usize) -> std::sync::Arc<UndirectedCsr> {
    let model = BarabasiAlbertModel { m: 2 };
    ModelSource::new(&model).trial_graph(n, 0, &SeedSequence::new(0xBEAC).subsequence(0))
}

/// Oracle hot path: flood throughput per size, pooled scratch.
fn oracle_section(quick: bool, cells: &mut Vec<Cell>) {
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut scratch = SearchScratch::new();
    let mut cursors = FrontierCursors::new();
    for &n in sizes {
        let graph = ba_graph(n);
        let reps: u32 = if n >= 100_000 { 3 } else { 10 };
        // Warm the pooled scratch so the measured trials are steady
        // state (no growth allocations).
        let requests = weak_flood(&mut scratch, &mut cursors, &graph);
        // lint: allow(clock-env): benchmark wall-clock measurement; throughput is the deliverable, not an aggregate
        let start = Instant::now();
        for _ in 0..reps {
            weak_flood(&mut scratch, &mut cursors, &graph);
        }
        let ns = (start.elapsed().as_nanos() / reps as u128).max(1) as u64;
        let throughput = requests as f64 / (ns as f64 / 1e9);
        println!("oracle/weak_flood_n{n}: {throughput:.0} req/s ({requests} req, {reps} reps)");
        cells.push(Cell {
            section: "oracle",
            key: format!("weak_flood_n{n}"),
            throughput,
            detail: vec![
                ("n", JsonValue::from(n)),
                ("requests_per_trial", JsonValue::from(requests)),
                ("ns_per_trial", JsonValue::from(ns)),
            ],
        });
    }
}

/// Corpus decode throughput: heap vs mmap loads of a freshly-built
/// scratch corpus, reopening the handle per round to defeat its cache.
fn corpus_section(quick: bool, cells: &mut Vec<Cell>) -> Result<(), String> {
    let n = if quick { 1_000 } else { 10_000 };
    let graphs = if quick { 6 } else { 12 };
    let rounds: u32 = if quick { 3 } else { 5 };
    let dir = std::env::temp_dir().join(format!("nonsearch_bench_corpus_{}", std::process::id()));
    let spec = BuildSpec {
        model_spec: "ba:m=2".to_string(),
        seed: 0xBEAC,
        sizes: vec![n],
        trials: graphs,
        variants: 0,
        swaps_per_edge: 0,
        threads: 0,
    };
    build(&dir, &spec).map_err(|e| format!("corpus build: {e}"))?;

    for (mode, key) in [(LoadMode::Heap, "heap"), (LoadMode::Mmap, "mmap")] {
        let mut total_loads = 0u64;
        // lint: allow(clock-env): benchmark wall-clock measurement; throughput is the deliverable, not an aggregate
        let start = Instant::now();
        for _ in 0..rounds {
            // Reopen per round: `Corpus::load` caches per handle, so a
            // warm handle would measure Arc clones, not decodes.
            let corpus = Corpus::open_with(&dir, mode).map_err(|e| format!("corpus open: {e}"))?;
            for g in 0..graphs {
                let graph = corpus
                    .load(g, None)
                    .map_err(|e| format!("corpus load: {e}"))?;
                assert_eq!(graph.node_count(), n);
                total_loads += 1;
            }
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let throughput = total_loads as f64 / secs;
        println!("corpus_load/{key}_n{n}: {throughput:.1} graphs/s ({total_loads} loads)");
        cells.push(Cell {
            section: "corpus_load",
            key: format!("{key}_n{n}"),
            throughput,
            detail: vec![
                ("n", JsonValue::from(n)),
                ("graphs", JsonValue::from(graphs)),
                ("rounds", JsonValue::from(rounds as u64)),
            ],
        });
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

/// Engine thread scaling: one weak Monte-Carlo cell at 1 / 2 / 4
/// workers. Aggregates are bit-identical across the three rows (the
/// engine's contract); only the wall clock moves.
fn thread_scaling_section(quick: bool, cells: &mut Vec<Cell>) {
    let n = if quick { 1_024 } else { 4_096 };
    let trials = if quick { 8 } else { 16 };
    let model = MergedMoriModel { p: 0.6, m: 1 };
    let seeds = SeedSequence::new(0xBE2C);
    for threads in [1usize, 2, 4] {
        let cell = weak_cell_with_policy(
            &model,
            n,
            SearcherKind::HighDegree,
            SuccessCriterion::DiscoverTarget,
            StartPolicy::OldestHub,
            trials,
            30,
            threads,
            &seeds,
        );
        println!(
            "thread_scaling/threads_{threads}_n{n}: {:.0} req/s ({trials} trials)",
            cell.requests_per_sec
        );
        cells.push(Cell {
            section: "thread_scaling",
            // n rides in the key: quick (n=1024) and full (n=4096) rows
            // are different workloads, and the suite diff must skip a
            // cross-mode pair, not compare it.
            key: format!("threads_{threads}_n{n}"),
            throughput: cell.requests_per_sec,
            detail: vec![
                ("n", JsonValue::from(n)),
                ("trials", JsonValue::from(trials)),
                ("wall_ms", JsonValue::from(cell.wall_ms)),
                ("workers", JsonValue::from(cell.workers)),
            ],
        });
    }
}

/// Serializes the suite record document.
fn suite_record(quick: bool, cells: &[Cell]) -> String {
    let cells: Vec<JsonValue> = cells
        .iter()
        .map(|c| {
            let mut fields = vec![
                ("section", JsonValue::from(c.section)),
                ("key", JsonValue::from(c.key.as_str())),
                ("throughput", JsonValue::from(c.throughput)),
            ];
            fields.extend(c.detail.iter().map(|(k, v)| (*k, v.clone())));
            JsonValue::object(fields)
        })
        .collect();
    let doc = JsonValue::object(vec![
        ("schema_version", JsonValue::from(SUITE_SCHEMA_VERSION)),
        ("bench", JsonValue::from("engine_suite")),
        ("quick", JsonValue::from(quick)),
        ("git", JsonValue::from(git_describe())),
        ("cells", JsonValue::Array(cells)),
    ]);
    format!("{doc}\n")
}

/// The `xp bench` subcommand body. Returns the process exit code.
pub fn main(args: &[String]) -> i32 {
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("xp bench: --out requires a value");
                    eprintln!("{USAGE}");
                    return 2;
                }
            },
            other => {
                eprintln!("xp bench: unknown argument {other:?}");
                eprintln!("{USAGE}");
                return 2;
            }
        }
    }
    // Quick runs are redirected to the `.quick.json` sibling so they
    // can never clobber the committed full-suite record.
    let out = out.unwrap_or_else(|| {
        PathBuf::from(if quick {
            SUITE_RECORD_QUICK
        } else {
            SUITE_RECORD
        })
    });

    println!(
        "=== xp bench (engine suite{}) ===\n",
        if quick { ", quick" } else { "" }
    );
    let mut cells = Vec::new();
    oracle_section(quick, &mut cells);
    if let Err(e) = corpus_section(quick, &mut cells) {
        eprintln!("xp bench: {e}");
        return 2;
    }
    thread_scaling_section(quick, &mut cells);

    let record = suite_record(quick, &cells);
    if let Err(e) = std::fs::write(&out, &record) {
        eprintln!("xp bench: cannot write {}: {e}", out.display());
        return 2;
    }
    println!("\nwrote {} cells to {}", cells.len(), out.display());
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_engine::profile_diff::suite_from_json;

    #[test]
    fn suite_record_round_trips_through_the_diff_parser() {
        let cells = vec![
            Cell {
                section: "oracle",
                key: "weak_flood_n1000".into(),
                throughput: 5000.0,
                detail: vec![("n", JsonValue::from(1000u64))],
            },
            Cell {
                section: "thread_scaling",
                key: "threads_2".into(),
                throughput: 123.4,
                detail: vec![],
            },
        ];
        let text = suite_record(true, &cells);
        let parsed = suite_from_json(&text).expect("record parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].section, "oracle");
        assert_eq!(parsed[0].key, "weak_flood_n1000");
        assert_eq!(parsed[0].throughput, 5000.0);
        assert_eq!(parsed[1].section, "thread_scaling");
        assert_eq!(parsed[1].key, "threads_2");
    }

    #[test]
    fn flood_costs_exactly_n_minus_one_on_connected_graphs() {
        let graph = ba_graph(512);
        let mut scratch = SearchScratch::new();
        let mut cursors = FrontierCursors::new();
        let requests = weak_flood(&mut scratch, &mut cursors, &graph);
        // Every vertex beyond the start is discovered by at least one
        // request; BA(m=2) is connected, and m=2 adds extra edges, so
        // the flood needs at least n − 1 requests.
        assert!(requests >= graph.node_count() - 1);
    }

    #[test]
    fn unknown_arguments_are_usage_errors() {
        assert_eq!(main(&["--wat".to_string()]), 2);
        assert_eq!(main(&["--out".to_string()]), 2);
    }
}
