//! E4 — Lemma 3: with `b = a + ⌊√(a−1)⌋`, `P(E_{a,b}) ≥ e^{−(1−p)}`.
//!
//! Prints, for each `(p, a)`, the exact conditional-product probability,
//! a Monte-Carlo estimate from real Móri trees, and the paper's bound.

use super::print_banner;
use nonsearch_analysis::Table;
use nonsearch_core::{
    estimate_mori_event_probability, lemma3_bound, mori_event_probability_exact, EquivalenceWindow,
};
use nonsearch_engine::{ExpContext, ExperimentSpec, JsonValue};

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "lemma3-event",
    id: "E4",
    claim: "P(E_{a,b}) ≥ e^{−(1−p)} at the √a window",
    default_seed: 0xE4,
    run,
};

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E4 / Lemma 3 (event probability)",
        "P(E_{a,b}) ≥ e^{−(1−p)} at the √a window — exact product vs \
         Monte-Carlo vs bound",
    );
    if ctx.options.corpus.is_some() {
        println!("note: --corpus has no effect here — the Monte-Carlo term checks");
        println!("the window event on attachment traces (construction provenance),");
        println!("which stored CSR graphs do not carry.\n");
    }

    let p_values = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
    let anchors: Vec<usize> = if ctx.options.quick {
        vec![100, 1_000]
    } else {
        vec![100, 1_000, 10_000, 100_000]
    };
    let mc_trials = ctx.options.trial_count(2_000);

    let mut table = Table::with_columns(&[
        "p",
        "a",
        "window |V|",
        "exact P(E)",
        "monte carlo",
        "bound e^-(1-p)",
        "holds",
    ]);
    let tracer = ctx.tracer.clone();
    for &p in &p_values {
        for &a in &anchors {
            let _cell_span = tracer.span("size-cell");
            let w = EquivalenceWindow::from_anchor(a);
            let exact =
                mori_event_probability_exact(w.a(), w.b(), p).expect("valid window parameters");
            // Monte Carlo on the big anchors is costly; sample the small ones.
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let mc_start = std::time::Instant::now();
            let estimate = if a <= 1_000 {
                Some(
                    estimate_mori_event_probability(&w, p, mc_trials, ctx.seed)
                        .expect("valid estimation parameters"),
                )
            } else {
                None
            };
            let mc_wall_ms = mc_start.elapsed().as_secs_f64() * 1e3;
            let mc = estimate.as_ref().map_or("-".to_string(), |est| {
                format!("{:.4} ± {:.4}", est.estimate, est.std_error)
            });
            let bound = lemma3_bound(p);
            let holds = exact >= bound - 1e-12;
            table.row(vec![
                format!("{p:.2}"),
                a.to_string(),
                w.len().to_string(),
                format!("{exact:.4}"),
                mc,
                format!("{bound:.4}"),
                if holds { "yes".into() } else { "NO".into() },
            ]);
            ctx.writer
                .record_cell(vec![
                    ("p", JsonValue::from(p)),
                    ("a", JsonValue::from(a)),
                    ("window", JsonValue::from(w.len())),
                    (
                        "trials",
                        JsonValue::from(estimate.as_ref().map(|_| mc_trials)),
                    ),
                    ("seed", JsonValue::from(ctx.seed)),
                    ("exact", JsonValue::from(exact)),
                    (
                        "monte_carlo",
                        JsonValue::from(estimate.as_ref().map(|e| e.estimate)),
                    ),
                    (
                        "mc_std_error",
                        JsonValue::from(estimate.as_ref().map(|e| e.std_error)),
                    ),
                    ("bound", JsonValue::from(bound)),
                    ("holds", JsonValue::from(holds)),
                ])
                .expect("write cell record");
            if ctx.options.profile && estimate.is_some() {
                // "Requests" here = Monte-Carlo trials: each one grows a
                // fresh Móri tree over the window and tests the event.
                let sampled = mc_trials as f64;
                ctx.writer
                    .record_profile(vec![
                        ("p", JsonValue::from(p)),
                        ("n", JsonValue::from(a)),
                        ("trials", JsonValue::from(mc_trials)),
                        ("requests", JsonValue::from(sampled)),
                        ("wall_ms", JsonValue::from(mc_wall_ms)),
                        (
                            "requests_per_sec",
                            JsonValue::from(sampled / (mc_wall_ms / 1e3).max(f64::EPSILON)),
                        ),
                    ])
                    .expect("write profile record");
            }
        }
    }
    println!("{table}");
    println!("note: the bound is tight-ish for small p and slack for p → 1,");
    println!("where preferential attachment never reaches the fresh window.");
}
