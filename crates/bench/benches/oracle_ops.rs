//! Oracle request overhead: cost per weak/strong request including view
//! bookkeeping — the repo's first recorded hot-loop trajectory.
//!
//! The weak lanes run the full-flood microbench (one request per newly
//! reachable vertex) on BA(m=2) at n ∈ {1 000, 10 000, 100 000},
//! through a pooled [`SearchScratch`] exactly as the Monte-Carlo
//! engines do. Beyond criterion's console output this writes
//! `BENCH_search_hot_path.json`: requests/sec per size, per-trial heap
//! allocation counts (measured by a counting global allocator), and the
//! speedup against the pre-refactor `HashMap`-based view, whose numbers
//! were measured on the same harness at the commit before the dense
//! rewrite and are embedded as the fixed baseline.
//!
//! Quick mode (`NONSEARCH_QUICK=1`, as CI's smoke job sets) skips the
//! n = 100 000 lane **and the record write**: the committed
//! `crates/bench/BENCH_search_hot_path.json` is the full-sweep
//! trajectory reference, and a truncated or noisy quick run must not
//! clobber it. The allocation counter is the shared
//! `nonsearch_alloc_counter` — the same one `alloc_free.rs` installs,
//! so the bench's `steady_state_allocs` and the test's zero-alloc
//! assertion measure identically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonsearch_alloc_counter::{allocations, CountingAllocator};
use nonsearch_core::{BarabasiAlbertModel, ModelSource};
use nonsearch_engine::{git_describe, json::JsonValue, GraphSource};
use nonsearch_generators::{rng_from_seed, MergedMori, SeedSequence};
use nonsearch_graph::{NodeId, UndirectedCsr};
use nonsearch_search::{FrontierCursors, SearchScratch, StrongSearchState, WeakSearchState};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Pre-refactor baseline (HashMap view, fresh state per trial), measured
/// with this exact flood harness at the commit before the dense
/// epoch-stamped rewrite: (n, ns per trial, requests per second).
const HASHMAP_BASELINE: [(usize, u64, u64); 3] = [
    (1_000, 468_040, 2_134_433),
    (10_000, 5_626_027, 1_777_276),
    (100_000, 79_003_774, 1_265_750),
];
/// Heap allocations one n = 10 000 flood trial performed on the
/// pre-refactor view (same counting-allocator harness).
const HASHMAP_BASELINE_ALLOCS_10K: u64 = 13_901;

fn bench_sizes() -> Vec<usize> {
    if nonsearch_bench::quick() {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000]
    }
}

fn ba_graph(n: usize) -> std::sync::Arc<UndirectedCsr> {
    let model = BarabasiAlbertModel { m: 2 };
    ModelSource::new(&model).trial_graph(n, 0, &SeedSequence::new(0xBEAC).subsequence(0))
}

/// The weak-model full flood: request every unexplored edge of each
/// discovered vertex in discovery order (amortized O(1) per request via
/// cursors). On a connected graph every request reveals a new vertex,
/// so the flood costs exactly n − 1 requests.
fn weak_flood(
    scratch: &mut SearchScratch,
    cursors: &mut FrontierCursors,
    graph: &UndirectedCsr,
) -> usize {
    cursors.reset();
    let mut state = WeakSearchState::new_in(scratch, graph, NodeId::from_label(1)).unwrap();
    let mut cursor = 0usize;
    while cursor < state.view().len() {
        let v = state.view().discovered()[cursor];
        match cursors.next_unexplored(state.view(), v) {
            Some(e) => {
                state.request(v, e).unwrap();
            }
            None => cursor += 1,
        }
    }
    state.requests()
}

fn strong_expand_all(scratch: &mut SearchScratch, graph: &UndirectedCsr) -> usize {
    let mut state = StrongSearchState::new_in(scratch, graph, NodeId::from_label(1)).unwrap();
    let mut cursor = 0usize;
    while cursor < state.view().len() {
        let v = state.view().discovered()[cursor];
        cursor += 1;
        state.request(v).unwrap();
    }
    state.requests()
}

fn bench_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle");
    group.sample_size(20);

    // The historical lanes, kept comparable with earlier trajectories:
    // one Móri(10k) graph, full weak flood / strong expansion per
    // iteration on a pooled scratch.
    let mori = MergedMori::sample(10_000, 2, 0.5, &mut rng_from_seed(1)).unwrap();
    let mori_graph = mori.undirected();
    group.bench_function("weak_flood_10k", |b| {
        let mut scratch = SearchScratch::new();
        let mut cursors = FrontierCursors::new();
        b.iter(|| weak_flood(&mut scratch, &mut cursors, &mori_graph));
    });
    group.bench_function("strong_expand_all_10k", |b| {
        let mut scratch = SearchScratch::new();
        b.iter(|| strong_expand_all(&mut scratch, &mori_graph));
    });

    // The recorded before/after lanes: BA(m=2) floods per size, pooled
    // scratch (steady state) vs per-trial fresh scratch.
    for n in bench_sizes() {
        let graph = ba_graph(n);
        group.bench_with_input(BenchmarkId::new("weak_flood_ba_pooled", n), &n, |b, _| {
            let mut scratch = SearchScratch::new();
            let mut cursors = FrontierCursors::new();
            b.iter(|| weak_flood(&mut scratch, &mut cursors, &graph));
        });
        group.bench_with_input(BenchmarkId::new("weak_flood_ba_fresh", n), &n, |b, _| {
            b.iter(|| {
                let mut scratch = SearchScratch::new();
                let mut cursors = FrontierCursors::new();
                weak_flood(&mut scratch, &mut cursors, &graph)
            });
        });
    }
    group.finish();

    if nonsearch_bench::quick() {
        // The committed record is the full-sweep reference measured on
        // an idle machine; a quick (or CI smoke) run must not clobber
        // it with a truncated sweep.
        println!("quick mode: leaving BENCH_search_hot_path.json untouched");
    } else {
        write_bench_record();
    }
}

/// Times the flood directly (criterion's console numbers are not
/// machine-readable here) and writes `BENCH_search_hot_path.json`
/// (full mode only; see the module docs).
fn write_bench_record() {
    let mut cells: Vec<JsonValue> = Vec::new();
    let mut scratch = SearchScratch::new();
    let mut cursors = FrontierCursors::new();
    for n in bench_sizes() {
        let graph = ba_graph(n);
        let reps: u32 = if n >= 100_000 { 3 } else { 10 };

        // Warm the scratch, then count a steady-state trial's heap
        // allocations — the acceptance bar is zero.
        let requests = weak_flood(&mut scratch, &mut cursors, &graph);
        let before = allocations();
        weak_flood(&mut scratch, &mut cursors, &graph);
        let steady_allocs = allocations() - before;

        let start = Instant::now();
        for _ in 0..reps {
            weak_flood(&mut scratch, &mut cursors, &graph);
        }
        let ns = (start.elapsed().as_nanos() / reps as u128) as u64;
        let rps = requests as f64 / (ns as f64 / 1e9);

        let baseline = HASHMAP_BASELINE.iter().find(|&&(bn, _, _)| bn == n);
        let mut cell = vec![
            ("n", JsonValue::from(n)),
            ("requests_per_trial", JsonValue::from(requests)),
            ("ns_per_trial", JsonValue::from(ns)),
            ("requests_per_sec", JsonValue::from(rps)),
            ("steady_state_allocs", JsonValue::from(steady_allocs)),
        ];
        if let Some(&(_, base_ns, base_rps)) = baseline {
            cell.push(("hashmap_baseline_ns_per_trial", JsonValue::from(base_ns)));
            cell.push((
                "hashmap_baseline_requests_per_sec",
                JsonValue::from(base_rps),
            ));
            cell.push(("speedup_vs_hashmap", JsonValue::from(rps / base_rps as f64)));
        }
        if n == 10_000 {
            cell.push((
                "hashmap_baseline_allocs_per_trial",
                JsonValue::from(HASHMAP_BASELINE_ALLOCS_10K),
            ));
        }
        cells.push(JsonValue::object(cell));
    }
    let record = JsonValue::object(vec![
        ("type", JsonValue::from("bench")),
        ("bench", JsonValue::from("search_hot_path")),
        ("model", JsonValue::from("barabasi-albert(m=2)")),
        (
            "workload",
            JsonValue::from("weak-model full flood, pooled scratch"),
        ),
        ("quick", JsonValue::from(nonsearch_bench::quick())),
        ("git", JsonValue::from(git_describe())),
        ("cells", JsonValue::Array(cells)),
    ]);
    let out = "BENCH_search_hot_path.json";
    std::fs::write(out, format!("{record}\n")).expect("bench record writes");
    println!("wrote {out}");
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
