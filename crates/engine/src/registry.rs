//! The experiment registry behind the unified `xp` CLI.
//!
//! Experiments register a [`spec`](ExperimentSpec) — subcommand name,
//! paper id, one-line claim, default seed, run function — and
//! [`Registry::main`] provides the whole command line: `xp list`,
//! `xp validate`, `xp <experiment> [flags]`, with the shared flag set of
//! [`CliOptions`]. Legacy `exp_*` binaries reuse the same dispatch via
//! [`Registry::run_named`], so one experiment implementation serves both
//! entry points.

use crate::json;
use crate::options::CliOptions;
use crate::record::{
    RunSummary, RunWriter, CELL_TYPE, DIAGNOSTIC_TYPE, FAULT_TYPE, LINT_TYPE, METRICS_TYPE,
    PROFILE_TYPE, RESOURCE_TYPE, RUN_TYPE,
};
use nonsearch_analysis::Table;
use nonsearch_obs::{PhaseTimes, Tracer};
use std::io;
use std::io::Write;

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Subcommand name (kebab-case, e.g. `theorem1-weak`).
    pub name: &'static str,
    /// Paper-facing experiment id (e.g. `E1`).
    pub id: &'static str,
    /// One-line statement of the claim the experiment reproduces.
    pub claim: &'static str,
    /// Root seed used when `--seed` is not given.
    pub default_seed: u64,
    /// The experiment body.
    pub run: fn(&mut ExpContext),
}

/// Everything an experiment body needs: parsed options, the resolved
/// root seed, and the structured-record sink.
pub struct ExpContext<'a> {
    /// The run's options (quick, threads, sweep overrides, …).
    pub options: &'a CliOptions,
    /// The resolved root seed (`--seed` override or the spec default).
    pub seed: u64,
    /// Structured-record sink; inert without `--out`.
    pub writer: &'a mut RunWriter,
    /// Span tracer; enabled only under `--trace PATH` (clones share one
    /// event buffer, so experiments pass it down to worker scopes).
    pub tracer: Tracer,
}

/// An ordered collection of experiments with CLI dispatch.
#[derive(Default)]
pub struct Registry {
    specs: Vec<ExperimentSpec>,
    usage_notes: Vec<String>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds an experiment.
    ///
    /// # Panics
    ///
    /// Panics if `spec.name` is already registered.
    pub fn register(&mut self, spec: ExperimentSpec) -> &mut Registry {
        assert!(
            self.find(spec.name).is_none(),
            "duplicate experiment name {:?}",
            spec.name
        );
        self.specs.push(spec);
        self
    }

    /// The registered experiments, in registration order.
    pub fn specs(&self) -> &[ExperimentSpec] {
        &self.specs
    }

    /// Appends a line to the `xp help` text — for tool subcommands the
    /// front-end binary dispatches before this registry (e.g. `corpus`).
    pub fn add_usage_note(&mut self, line: impl Into<String>) -> &mut Registry {
        self.usage_notes.push(line.into());
        self
    }

    /// Looks an experiment up by subcommand name.
    pub fn find(&self, name: &str) -> Option<&ExperimentSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Runs one experiment under `options`, returning what was written.
    pub fn run_named(&self, name: &str, options: &CliOptions) -> io::Result<RunSummary> {
        let spec = self.find(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no experiment named {name:?}; see `xp list`"),
            )
        })?;
        let mut writer = RunWriter::create(spec.name, options)?;
        let tracer = if options.trace.is_some() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let mut ctx = ExpContext {
            options,
            seed: options.seed_or(spec.default_seed),
            writer: &mut writer,
            tracer: tracer.clone(),
        };
        {
            let _run_span = tracer.span("run");
            (spec.run)(&mut ctx);
        }
        let seed = ctx.seed;
        let mut summary = writer.finish(seed)?;
        if let (Some(path), Some(json)) = (&options.trace, tracer.to_chrome_trace()) {
            let mut file = io::BufWriter::new(std::fs::File::create(path)?);
            writeln!(file, "{json}")?;
            file.flush()?;
            summary.paths.push(path.clone());
        }
        Ok(summary)
    }

    /// The full `xp` command line. Returns the process exit code.
    pub fn main(&self, args: &[String]) -> i32 {
        match args.first().map(String::as_str) {
            None | Some("help" | "--help" | "-h") => {
                print!("{}", self.usage());
                0
            }
            Some("list") => {
                print!("{}", self.list_table());
                0
            }
            Some("validate") => {
                if args.len() < 2 {
                    eprintln!("usage: xp validate <runs.jsonl | run.trace.json>...");
                    return 2;
                }
                let mut ok = true;
                for path in &args[1..] {
                    match std::fs::read_to_string(path) {
                        // Chrome-trace exports are one JSON document, not
                        // JSONL; route them to the structural trace check.
                        Ok(text) if path.ends_with(".trace.json") => {
                            match validate_chrome_trace(&text) {
                                Ok(events) => {
                                    println!("{path}: {events} trace events — OK")
                                }
                                Err(e) => {
                                    eprintln!("{path}: INVALID — {e}");
                                    ok = false;
                                }
                            }
                        }
                        Ok(text) => match validate_jsonl(&text) {
                            Ok(v) => println!("{path}: {v}"),
                            Err(e) => {
                                eprintln!("{path}: INVALID — {e}");
                                ok = false;
                            }
                        },
                        Err(e) => {
                            eprintln!("{path}: cannot read — {e}");
                            ok = false;
                        }
                    }
                }
                i32::from(!ok)
            }
            Some("profile-diff") => crate::profile_diff::main(&args[1..]),
            Some("report") => crate::report::main(&args[1..]),
            Some(name) => {
                let options = match CliOptions::from_args(args[1..].iter().cloned()) {
                    Ok(options) => options,
                    Err(e) => {
                        eprintln!("xp {name}: {e}");
                        return 2;
                    }
                };
                if self.find(name).is_none() {
                    eprintln!("xp: no experiment named {name:?}; registered experiments:");
                    for spec in &self.specs {
                        eprintln!("  {}", spec.name);
                    }
                    return 2;
                }
                match self.run_named(name, &options) {
                    Ok(summary) => {
                        if summary.paths.is_empty() {
                            println!(
                                "[{name}] {} cells in {} ms (no --out; records discarded)",
                                summary.cells, summary.wall_ms
                            );
                        } else {
                            let paths: Vec<String> = summary
                                .paths
                                .iter()
                                .map(|p| p.display().to_string())
                                .collect();
                            println!(
                                "[{name}] wrote {} cells to {} in {} ms",
                                summary.cells,
                                paths.join(" + "),
                                summary.wall_ms
                            );
                        }
                        0
                    }
                    Err(e) => {
                        eprintln!("xp {name}: {e}");
                        1
                    }
                }
            }
        }
    }

    /// The `xp list` table.
    pub fn list_table(&self) -> Table {
        let mut t = Table::with_columns(&["subcommand", "id", "seed", "claim"]);
        for spec in &self.specs {
            t.row(vec![
                spec.name.to_string(),
                spec.id.to_string(),
                format!("{:#x}", spec.default_seed),
                spec.claim.to_string(),
            ]);
        }
        t
    }

    /// The `xp help` text.
    pub fn usage(&self) -> String {
        let mut out = String::from(
            "xp — unified Monte-Carlo experiment runner\n\
             \n\
             usage:\n\
             \x20 xp list                      enumerate registered experiments\n\
             \x20 xp <experiment> [flags]      run one experiment\n\
             \x20 xp validate <file>...        check emitted JSONL run records (and .trace.json exports)\n\
             \x20 xp profile-diff <run.jsonl>  compare a run's profile records to a committed baseline\n\
             \x20 xp report <run.jsonl>        render a run's records as a terminal summary\n\
             \n\
             shared flags:\n\
             \x20 --quick            reduced sweep (also NONSEARCH_QUICK=1;\n\
             \x20                    empty/0/false/off/no leave it off)\n\
             \x20 --threads N        trial-engine workers (0 = all cores)\n\
             \x20 --seed S           override the experiment's root seed\n\
             \x20 --out PATH         write structured run records to PATH\n\
             \x20 --format F         jsonl (default) | csv | both\n\
             \x20 --trials N         override the per-cell trial count\n\
             \x20 --sizes A,B,C      override the size sweep\n\
             \x20 --corpus DIR       serve trial graphs from a stored corpus\n\
             \x20 --mmap             zero-copy corpus loads via memory-mapped files\n\
             \x20 --profile          per-cell throughput records (requests/sec) in the JSONL out\n\
             \x20 --trace PATH       write run/cell/trial spans as Chrome Trace Event JSON\n\
             \x20 --heal             quarantine + regenerate corrupt corpus blobs instead of failing\n\
             \n\
             experiments:\n",
        );
        for spec in &self.specs {
            out.push_str(&format!(
                "  {:<18} {:<4} {}\n",
                spec.name, spec.id, spec.claim
            ));
        }
        if !self.usage_notes.is_empty() {
            out.push_str("\ntools:\n");
            for note in &self.usage_notes {
                out.push_str(&format!("  {note}\n"));
            }
        }
        out
    }
}

/// What [`validate_jsonl`] found in a well-formed record stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidateSummary {
    /// `"type":"cell"` records.
    pub cells: usize,
    /// `"type":"run"` footers.
    pub runs: usize,
    /// `"type":"profile"` throughput records (`--profile`).
    pub profiles: usize,
    /// `"type":"metrics"` engine-counter records.
    pub metrics: usize,
    /// `"type":"resource"` phase-timer/process-sample records.
    pub resources: usize,
    /// `"type":"fault"` injected-fault records (`xp chaos`).
    pub faults: usize,
    /// `"type":"diagnostic"` `xp lint` findings.
    pub diagnostics: usize,
    /// `"type":"lint"` `xp lint` report footers.
    pub lints: usize,
}

impl std::fmt::Display for ValidateSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cell records, {} run footers, {} profile records, {} metrics records, \
             {} resource records, {} fault records, {} diagnostic records, {} lint footers — OK",
            self.cells,
            self.runs,
            self.profiles,
            self.metrics,
            self.resources,
            self.faults,
            self.diagnostics,
            self.lints
        )
    }
}

/// The numeric fields every `"type":"profile"` record must carry, each a
/// finite non-negative number.
const PROFILE_REQUIRED: [&str; 5] = ["n", "trials", "requests", "wall_ms", "requests_per_sec"];

/// The counter fields every `"type":"metrics"` record must carry, each a
/// finite non-negative number (the last three are the chaos counters,
/// zero in fault-free runs).
const METRICS_REQUIRED: [&str; 9] = [
    "trials",
    "requests",
    "discoveries",
    "edge_resolutions",
    "frontier_rescans",
    "scratch_resets",
    "faults_injected",
    "trials_retried",
    "trials_skipped",
];

/// The string fields every `"type":"fault"` record must carry, each
/// non-empty: the fault kind (`panic`, `stall`, `storage`, …) and how
/// the run absorbed it (`retried`, `skipped`, `healed`, …).
const FAULT_REQUIRED_STR: [&str; 2] = ["kind", "outcome"];

/// The string fields every `"type":"diagnostic"` record must carry,
/// each non-empty.
const DIAGNOSTIC_REQUIRED_STR: [&str; 3] = ["rule", "path", "message"];

/// The numeric fields every `"type":"lint"` footer must carry, each a
/// finite non-negative number.
const LINT_REQUIRED: [&str; 4] = ["files", "diagnostics", "waived", "violations"];

/// The numeric fields every `"type":"resource"` record must carry,
/// each a finite non-negative number.
const RESOURCE_REQUIRED: [&str; 12] = [
    "wall_ms",
    "workers",
    "phase_generate_ns",
    "phase_load_ns",
    "phase_search_ns",
    "phase_harvest_ns",
    "phase_merge_ns",
    "allocations",
    "peak_rss_bytes",
    "minor_faults",
    "major_faults",
    "voluntary_ctx_switches",
];

/// Checks that every non-empty line is a JSON object tagged `cell`,
/// `run`, `profile`, `metrics`, `resource`, `fault` (`xp chaos`
/// injected-fault records), `diagnostic`, or `lint`
/// (the last two are `xp lint` reports); that profile records
/// carry well-formed throughput fields; that metrics records carry
/// finite non-negative counters and a `hist_requests_log2` histogram
/// whose bucket counts sum to `trials`; that resource records carry
/// finite non-negative fields, phase sums within the per-worker wall
/// envelope, and (on Linux, where `/proc` sampling always works) a
/// positive peak RSS; and that at least one record is present.
pub fn validate_jsonl(text: &str) -> Result<ValidateSummary, String> {
    let mut summary = ValidateSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match value.get("type").and_then(|t| t.as_str()) {
            Some(t) if t == CELL_TYPE => summary.cells += 1,
            Some(t) if t == RUN_TYPE => summary.runs += 1,
            Some(t) if t == PROFILE_TYPE => {
                for key in PROFILE_REQUIRED {
                    match value.get(key).and_then(|v| v.as_f64()) {
                        Some(x) if x.is_finite() && x >= 0.0 => {}
                        Some(x) => {
                            return Err(format!(
                                "line {}: profile field {key:?} is not a finite non-negative \
                                 number (got {x})",
                                lineno + 1
                            ))
                        }
                        None => {
                            return Err(format!(
                                "line {}: profile record is missing numeric field {key:?}",
                                lineno + 1
                            ))
                        }
                    }
                }
                summary.profiles += 1;
            }
            Some(t) if t == METRICS_TYPE => {
                let mut trials = 0.0f64;
                for key in METRICS_REQUIRED {
                    match value.get(key).and_then(|v| v.as_f64()) {
                        Some(x) if x.is_finite() && x >= 0.0 => {
                            if key == "trials" {
                                trials = x;
                            }
                        }
                        Some(x) => {
                            return Err(format!(
                                "line {}: metrics field {key:?} is not a finite non-negative \
                                 number (got {x})",
                                lineno + 1
                            ))
                        }
                        None => {
                            return Err(format!(
                                "line {}: metrics record is missing numeric field {key:?}",
                                lineno + 1
                            ))
                        }
                    }
                }
                let buckets = value
                    .get("hist_requests_log2")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| {
                        format!(
                            "line {}: metrics record is missing array field \
                             \"hist_requests_log2\"",
                            lineno + 1
                        )
                    })?;
                let mut bucket_sum = 0.0f64;
                for (i, bucket) in buckets.iter().enumerate() {
                    match bucket.as_f64() {
                        Some(x) if x.is_finite() && x >= 0.0 => bucket_sum += x,
                        _ => {
                            return Err(format!(
                                "line {}: histogram bucket {i} is not a finite non-negative \
                                 number",
                                lineno + 1
                            ))
                        }
                    }
                }
                if bucket_sum != trials {
                    return Err(format!(
                        "line {}: histogram bucket counts sum to {bucket_sum}, but the record \
                         claims {trials} trials",
                        lineno + 1
                    ));
                }
                summary.metrics += 1;
            }
            Some(t) if t == RESOURCE_TYPE => {
                let field = |key: &str| -> Result<f64, String> {
                    match value.get(key).and_then(|v| v.as_f64()) {
                        Some(x) if x.is_finite() && x >= 0.0 => Ok(x),
                        Some(x) => Err(format!(
                            "line {}: resource field {key:?} is not a finite non-negative \
                             number (got {x})",
                            lineno + 1
                        )),
                        None => Err(format!(
                            "line {}: resource record is missing numeric field {key:?}",
                            lineno + 1
                        )),
                    }
                };
                for key in RESOURCE_REQUIRED {
                    field(key)?;
                }
                let wall_ms = field("wall_ms")?;
                let workers = field("workers")?;
                let phase_sum: f64 = PhaseTimes::new()
                    .named()
                    .iter()
                    .map(|&(key, _)| field(key))
                    .sum::<Result<f64, String>>()?;
                // Per-worker busy time is bounded by the wall envelope:
                // wall × (workers + 1), the +1 being the consumer thread
                // that owns the merge phase. wall_ms is floored to whole
                // milliseconds, so allow one extra ms of slack.
                let envelope_ns = (wall_ms + 1.0) * 1e6 * (workers + 1.0);
                if phase_sum > envelope_ns {
                    return Err(format!(
                        "line {}: phase times sum to {phase_sum} ns, exceeding the \
                         wall envelope of {envelope_ns} ns ({} ms × {} threads)",
                        lineno + 1,
                        wall_ms + 1.0,
                        workers + 1.0
                    ));
                }
                if cfg!(target_os = "linux") && field("peak_rss_bytes")? == 0.0 {
                    return Err(format!(
                        "line {}: resource record claims zero peak RSS (the /proc \
                         sampler always reports a positive VmHWM on Linux)",
                        lineno + 1
                    ));
                }
                summary.resources += 1;
            }
            Some(t) if t == FAULT_TYPE => {
                for key in FAULT_REQUIRED_STR {
                    match value.get(key).and_then(|v| v.as_str()) {
                        Some(s) if !s.is_empty() => {}
                        _ => {
                            return Err(format!(
                                "line {}: fault record is missing non-empty string \
                                 field {key:?}",
                                lineno + 1
                            ))
                        }
                    }
                }
                summary.faults += 1;
            }
            Some(t) if t == DIAGNOSTIC_TYPE => {
                for key in DIAGNOSTIC_REQUIRED_STR {
                    match value.get(key).and_then(|v| v.as_str()) {
                        Some(s) if !s.is_empty() => {}
                        _ => {
                            return Err(format!(
                                "line {}: diagnostic record is missing non-empty string \
                                 field {key:?}",
                                lineno + 1
                            ))
                        }
                    }
                }
                match value.get("line").and_then(|v| v.as_f64()) {
                    Some(x) if x.is_finite() && x >= 0.0 => {}
                    _ => {
                        return Err(format!(
                            "line {}: diagnostic record is missing a finite non-negative \
                             \"line\" field",
                            lineno + 1
                        ))
                    }
                }
                if value.get("waived").and_then(|v| v.as_bool()).is_none() {
                    return Err(format!(
                        "line {}: diagnostic record is missing boolean field \"waived\"",
                        lineno + 1
                    ));
                }
                summary.diagnostics += 1;
            }
            Some(t) if t == LINT_TYPE => {
                for key in LINT_REQUIRED {
                    match value.get(key).and_then(|v| v.as_f64()) {
                        Some(x) if x.is_finite() && x >= 0.0 => {}
                        _ => {
                            return Err(format!(
                                "line {}: lint footer is missing a finite non-negative \
                                 field {key:?}",
                                lineno + 1
                            ))
                        }
                    }
                }
                summary.lints += 1;
            }
            Some(t) => return Err(format!("line {}: unknown record type {t:?}", lineno + 1)),
            None => {
                return Err(format!(
                    "line {}: record is not an object with a \"type\" tag",
                    lineno + 1
                ))
            }
        }
    }
    let total = summary.cells
        + summary.runs
        + summary.profiles
        + summary.metrics
        + summary.resources
        + summary.faults
        + summary.diagnostics
        + summary.lints;
    if total == 0 {
        return Err("no records found".to_string());
    }
    Ok(summary)
}

/// Structurally validates a Chrome Trace Event Format export (the
/// `--trace` output): one JSON document with a `traceEvents` array whose
/// entries are complete events (`"ph":"X"`) carrying a non-empty name
/// and finite non-negative `ts`/`dur`/`pid`/`tid`. Returns the event
/// count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text.trim()).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "document has no \"traceEvents\" array".to_string())?;
    if events.is_empty() {
        return Err("trace contains no events".to_string());
    }
    for (i, event) in events.iter().enumerate() {
        if event.get("ph").and_then(|v| v.as_str()) != Some("X") {
            return Err(format!(
                "event {i}: expected a complete event (\"ph\":\"X\")"
            ));
        }
        match event.get("name").and_then(|v| v.as_str()) {
            Some(name) if !name.is_empty() => {}
            _ => return Err(format!("event {i}: missing or empty \"name\"")),
        }
        for key in ["ts", "dur", "pid", "tid"] {
            match event.get(key).and_then(|v| v.as_f64()) {
                Some(x) if x.is_finite() && x >= 0.0 => {}
                _ => {
                    return Err(format!(
                        "event {i}: field {key:?} is not a finite non-negative number"
                    ))
                }
            }
        }
    }
    Ok(events.len())
}

/// Entry point for a legacy single-experiment binary: lenient flags from
/// the process environment, same implementation as the `xp` subcommand.
pub fn run_legacy(registry: &Registry, name: &str) {
    let options = CliOptions::global();
    let summary = registry
        .run_named(name, options)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    if !summary.paths.is_empty() {
        let paths: Vec<String> = summary
            .paths
            .iter()
            .map(|p| p.display().to_string())
            .collect();
        println!("wrote {} cells to {}", summary.cells, paths.join(" + "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn demo_run(ctx: &mut ExpContext) {
        for n in ctx.options.sweep(&[8, 16, 32]) {
            ctx.writer
                .record_cell(vec![
                    ("n", JsonValue::from(n)),
                    ("seed", JsonValue::from(ctx.seed)),
                ])
                .expect("write cell record");
        }
    }

    fn demo_registry() -> Registry {
        let mut r = Registry::new();
        r.register(ExperimentSpec {
            name: "demo",
            id: "E0",
            claim: "a demonstration",
            default_seed: 0xD0,
            run: demo_run,
        });
        r
    }

    #[test]
    fn register_find_and_list() {
        let r = demo_registry();
        assert_eq!(r.specs().len(), 1);
        assert!(r.find("demo").is_some());
        assert!(r.find("nope").is_none());
        let listing = r.list_table().to_string();
        assert!(listing.contains("demo"));
        assert!(listing.contains("E0"));
        assert!(r.usage().contains("demo"));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        let mut r = demo_registry();
        r.register(ExperimentSpec {
            name: "demo",
            id: "E0",
            claim: "again",
            default_seed: 0,
            run: demo_run,
        });
    }

    #[test]
    fn run_named_writes_records_and_honours_seed_override() {
        let path = std::env::temp_dir().join(format!("xp_registry_{}.jsonl", std::process::id()));
        let options = CliOptions {
            out: Some(path.clone()),
            seed: Some(99),
            sizes: Some(vec![4, 8]),
            ..CliOptions::default()
        };
        let summary = demo_registry().run_named("demo", &options).unwrap();
        assert_eq!(summary.cells, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let v = validate_jsonl(&text).unwrap();
        assert_eq!(
            v,
            ValidateSummary {
                cells: 2,
                runs: 1,
                ..Default::default()
            }
        );
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("seed").and_then(|x| x.as_f64()), Some(99.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_named_unknown_is_not_found() {
        let err = demo_registry()
            .run_named("missing", &CliOptions::default())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("{not json}").is_err());
        assert!(validate_jsonl("{\"type\":\"alien\"}").is_err());
        assert!(validate_jsonl("[1,2]").is_err());
        let ok = validate_jsonl("{\"type\":\"cell\"}\n\n{\"type\":\"run\"}\n").unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                cells: 1,
                runs: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn validate_checks_profile_fields() {
        let good = "{\"type\":\"profile\",\"n\":128,\"trials\":4,\"requests\":512,\
                    \"wall_ms\":2.5,\"requests_per_sec\":204800.0}\n";
        let ok = validate_jsonl(good).unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                profiles: 1,
                ..Default::default()
            }
        );
        // A missing throughput field is an error, not a shrug.
        let missing = "{\"type\":\"profile\",\"n\":128}";
        let err = validate_jsonl(missing).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        // So is a non-finite or negative value.
        let negative = "{\"type\":\"profile\",\"n\":128,\"trials\":4,\"requests\":512,\
                        \"wall_ms\":-1,\"requests_per_sec\":1.0}";
        let err = validate_jsonl(negative).unwrap_err();
        assert!(err.contains("wall_ms"), "{err}");
    }

    #[test]
    fn validate_checks_metrics_fields_and_histogram_sum() {
        let good = "{\"type\":\"metrics\",\"trials\":3,\"requests\":21,\"discoveries\":9,\
                    \"edge_resolutions\":12,\"frontier_rescans\":2,\"scratch_resets\":3,\
                    \"faults_injected\":1,\"trials_retried\":1,\"trials_skipped\":0,\
                    \"hist_requests_log2\":[0,0,0,3]}\n";
        let ok = validate_jsonl(good).unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                metrics: 1,
                ..Default::default()
            }
        );
        // A missing counter is an error.
        let missing = "{\"type\":\"metrics\",\"trials\":3,\"hist_requests_log2\":[3]}";
        let err = validate_jsonl(missing).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        // A missing histogram is an error.
        let no_hist = good.replace(",\"hist_requests_log2\":[0,0,0,3]", "");
        let err = validate_jsonl(&no_hist).unwrap_err();
        assert!(err.contains("hist_requests_log2"), "{err}");
        // Bucket counts must sum to the trial count.
        let drifted = good.replace("[0,0,0,3]", "[0,0,0,2]");
        let err = validate_jsonl(&drifted).unwrap_err();
        assert!(err.contains("sum"), "{err}");
        // Negative counters are rejected.
        let negative = good.replace("\"discoveries\":9", "\"discoveries\":-1");
        let err = validate_jsonl(&negative).unwrap_err();
        assert!(err.contains("discoveries"), "{err}");
    }

    #[test]
    fn validate_checks_fault_fields() {
        let good = "{\"type\":\"fault\",\"experiment\":\"maxdeg\",\"kind\":\"panic\",\
                    \"trial\":7,\"attempt\":0,\"outcome\":\"retried\"}\n";
        let ok = validate_jsonl(good).unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                faults: 1,
                ..Default::default()
            }
        );
        // The fault kind and outcome must be present and non-empty.
        let missing = good.replace(",\"kind\":\"panic\"", "");
        let err = validate_jsonl(&missing).unwrap_err();
        assert!(err.contains("kind"), "{err}");
        let empty = good.replace("\"outcome\":\"retried\"", "\"outcome\":\"\"");
        let err = validate_jsonl(&empty).unwrap_err();
        assert!(err.contains("outcome"), "{err}");
    }

    #[test]
    fn validate_checks_resource_fields_and_bounds() {
        let good = "{\"type\":\"resource\",\"n\":128,\"wall_ms\":10,\"workers\":2,\
                    \"phase_generate_ns\":2000000,\"phase_load_ns\":0,\
                    \"phase_search_ns\":18000000,\"phase_harvest_ns\":500000,\
                    \"phase_merge_ns\":1000000,\"allocations\":0,\
                    \"peak_rss_bytes\":52428800,\"minor_faults\":120,\
                    \"major_faults\":0,\"voluntary_ctx_switches\":4}\n";
        let ok = validate_jsonl(good).unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                resources: 1,
                ..Default::default()
            }
        );
        // A missing field is an error.
        let missing = good.replace(",\"phase_merge_ns\":1000000", "");
        let err = validate_jsonl(&missing).unwrap_err();
        assert!(err.contains("phase_merge_ns"), "{err}");
        // Non-finite and negative values are rejected.
        let negative = good.replace("\"minor_faults\":120", "\"minor_faults\":-1");
        let err = validate_jsonl(&negative).unwrap_err();
        assert!(err.contains("minor_faults"), "{err}");
        // Phase sums beyond the wall × (workers + 1) envelope are
        // rejected: 10+1 ms × 3 threads = 33e6 ns, so 40e6 in one
        // phase breaks the bound.
        let runaway = good.replace(
            "\"phase_search_ns\":18000000",
            "\"phase_search_ns\":40000000",
        );
        let err = validate_jsonl(&runaway).unwrap_err();
        assert!(err.contains("envelope"), "{err}");
        // Zero RSS is impossible on Linux, where /proc always answers.
        if cfg!(target_os = "linux") {
            let no_rss = good.replace("\"peak_rss_bytes\":52428800", "\"peak_rss_bytes\":0");
            let err = validate_jsonl(&no_rss).unwrap_err();
            assert!(err.contains("RSS"), "{err}");
        }
    }

    #[test]
    fn validate_checks_diagnostic_fields() {
        let good = "{\"type\":\"diagnostic\",\"rule\":\"clock-env\",\
                    \"path\":\"crates/bench/src/lib.rs\",\"line\":190,\
                    \"message\":\"Instant::now outside the obs seam\",\
                    \"waived\":true}\n";
        let ok = validate_jsonl(good).unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                diagnostics: 1,
                ..Default::default()
            }
        );
        // Every identifying string must be present and non-empty.
        let missing = good.replace(",\"path\":\"crates/bench/src/lib.rs\"", "");
        let err = validate_jsonl(&missing).unwrap_err();
        assert!(err.contains("path"), "{err}");
        let empty = good.replace("\"rule\":\"clock-env\"", "\"rule\":\"\"");
        let err = validate_jsonl(&empty).unwrap_err();
        assert!(err.contains("rule"), "{err}");
        // The line number must be a finite non-negative number.
        let bad_line = good.replace("\"line\":190", "\"line\":-3");
        let err = validate_jsonl(&bad_line).unwrap_err();
        assert!(err.contains("line"), "{err}");
        // Waived must be a boolean, not a reason string.
        let bad_waived = good.replace("\"waived\":true", "\"waived\":\"yes\"");
        let err = validate_jsonl(&bad_waived).unwrap_err();
        assert!(err.contains("waived"), "{err}");
    }

    #[test]
    fn validate_checks_lint_footer_fields() {
        let good = "{\"type\":\"lint\",\"files\":42,\"diagnostics\":3,\
                    \"waived\":3,\"violations\":0}\n";
        let ok = validate_jsonl(good).unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                lints: 1,
                ..Default::default()
            }
        );
        let missing = good.replace(",\"violations\":0", "");
        let err = validate_jsonl(&missing).unwrap_err();
        assert!(err.contains("violations"), "{err}");
        let negative = good.replace("\"diagnostics\":3", "\"diagnostics\":-1");
        let err = validate_jsonl(&negative).unwrap_err();
        assert!(err.contains("diagnostics"), "{err}");
    }

    #[test]
    fn validate_chrome_trace_checks_structure() {
        let good = "{\"traceEvents\":[{\"name\":\"run\",\"cat\":\"nonsearch\",\"ph\":\"X\",\
                    \"ts\":0,\"dur\":1200,\"pid\":1,\"tid\":1}]}";
        assert_eq!(validate_chrome_trace(good), Ok(1));
        // Trailing newline (as written by run_named) is fine.
        assert_eq!(validate_chrome_trace(&format!("{good}\n")), Ok(1));
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        let bad_phase = good.replace("\"ph\":\"X\"", "\"ph\":\"B\"");
        assert!(validate_chrome_trace(&bad_phase).is_err());
        let bad_ts = good.replace("\"ts\":0", "\"ts\":-4");
        assert!(validate_chrome_trace(&bad_ts).is_err());
        let no_name = good.replace("\"name\":\"run\",", "");
        assert!(validate_chrome_trace(&no_name).is_err());
    }

    #[test]
    fn run_named_writes_a_chrome_trace_under_trace_flag() {
        let trace_path =
            std::env::temp_dir().join(format!("xp_registry_{}.trace.json", std::process::id()));
        let options = CliOptions {
            trace: Some(trace_path.clone()),
            sizes: Some(vec![4]),
            ..CliOptions::default()
        };
        let summary = demo_registry().run_named("demo", &options).unwrap();
        assert!(summary.paths.contains(&trace_path));
        let text = std::fs::read_to_string(&trace_path).unwrap();
        // At minimum the "run" span around the experiment body exists.
        let events = validate_chrome_trace(&text).unwrap();
        assert!(events >= 1);
        assert!(text.contains("\"name\":\"run\""));
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn run_named_without_trace_flag_keeps_tracer_disabled() {
        // The spec's run fn can't capture, so probe through a static.
        static TRACER_WAS_ENABLED: std::sync::atomic::AtomicBool =
            std::sync::atomic::AtomicBool::new(true);
        fn probe_run(ctx: &mut ExpContext) {
            TRACER_WAS_ENABLED.store(
                ctx.tracer.is_enabled(),
                std::sync::atomic::Ordering::Relaxed,
            );
        }
        let mut r = Registry::new();
        r.register(ExperimentSpec {
            name: "probe",
            id: "E0",
            claim: "tracer probe",
            default_seed: 0,
            run: probe_run,
        });
        let summary = r.run_named("probe", &CliOptions::default()).unwrap();
        assert!(!TRACER_WAS_ENABLED.load(std::sync::atomic::Ordering::Relaxed));
        assert!(summary.paths.is_empty());
    }
}
