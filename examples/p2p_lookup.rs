//! P2P lookup on a Gnutella-like power-law overlay.
//!
//! Reproduces the related-work landscape the paper builds on: on "pure"
//! power-law random graphs (Molloy–Reed configuration model with
//! exponent `k ∈ (2, 3)`), Adamic et al.'s high-degree strategy beats
//! the random walk, and Sarshar et al.'s percolation search trades
//! replication for sublinear lookups.
//!
//! Run with: `cargo run --release --example p2p_lookup`

use nonsearch::analysis::{fit_power_law_mle, SampleStats};
use nonsearch::core::{GraphModel, PowerLawGiantModel};
use nonsearch::generators::SeedSequence;
use nonsearch::graph::{degree_sequence, NodeId};
use nonsearch::search::{
    percolation_search, run_weak, PercolationConfig, SearchTask, SearcherKind,
};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 20_000;
    let exponent = 2.3;
    let seeds = SeedSequence::new(42);
    let model = PowerLawGiantModel { exponent, d_min: 1 };

    println!("building a power-law overlay: n = {n}, k = {exponent}");
    let mut rng = seeds.child_rng(0);
    let overlay = model.sample_graph(n, &mut rng);
    let peers = overlay.node_count();
    let degrees = degree_sequence(&overlay);
    let fit = fit_power_law_mle(&degrees, 2).expect("power-law overlay fits");
    println!("  giant component: {peers} peers, degree fit {fit}");

    // Lookups: random (requester, resource holder) pairs.
    let trials = 30;
    println!("\nlookup cost over {trials} random queries:");
    for kind in [SearcherKind::RandomWalk, SearcherKind::HighDegree] {
        let mut costs = Vec::new();
        let mut found = 0usize;
        for t in 0..trials {
            let mut rng = seeds.subsequence(1).child_rng(t);
            let requester = NodeId::new(rng.gen_range(0..peers));
            let holder = NodeId::new(rng.gen_range(0..peers));
            let task = SearchTask::new(requester, holder).with_budget(20 * peers);
            let mut searcher = kind.build();
            let outcome = run_weak(&overlay, &task, &mut *searcher, &mut rng)?;
            costs.push(outcome.requests as f64);
            found += outcome.found as usize;
        }
        let stats = SampleStats::from_slice(&costs).expect("non-empty");
        println!(
            "  {:>12}: mean {:>9.1} requests (median {:>8.1}), {}/{} found",
            kind.name(),
            stats.mean(),
            stats.median(),
            found,
            trials
        );
    }

    // Percolation search: replicate content on short walks, percolate
    // the query.
    println!("\npercolation search (Sarshar et al.), walk length sweep:");
    for walk in [0usize, 50, 200, 800] {
        let config = PercolationConfig {
            replication_walk: walk,
            query_walk: walk,
            edge_probability: 0.25,
        };
        let mut messages = Vec::new();
        let mut found = 0usize;
        for t in 0..trials {
            let mut rng = seeds.subsequence(2).child_rng(t);
            let requester = NodeId::new(rng.gen_range(0..peers));
            let holder = NodeId::new(rng.gen_range(0..peers));
            let out = percolation_search(&overlay, holder, requester, &config, &mut rng)?;
            messages.push(out.messages as f64);
            found += out.found as usize;
        }
        let stats = SampleStats::from_slice(&messages).expect("non-empty");
        println!(
            "  walk {walk:>4}: success {:>2}/{trials}, mean messages {:>9.1}",
            found,
            stats.mean()
        );
    }

    println!("\ntakeaway: high-degree beats the walk, and replication buys");
    println!("success — but none of this helps on the paper's evolving");
    println!("models, where the newest vertices are provably hidden.");
    Ok(())
}
