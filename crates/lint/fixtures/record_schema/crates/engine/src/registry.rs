//! Validator that dispatches on CELL_TYPE only.

use super::record::{CELL_TYPE, ROGUE_TYPE};

pub fn validate(tag: &str) -> bool {
    tag == CELL_TYPE
}
