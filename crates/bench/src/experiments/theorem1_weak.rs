//! E1 — Theorem 1, weak model: any local search for vertex `n` in the
//! (merged) Móri model needs `Ω(n^{1/2})` expected requests.
//!
//! Sweeps `p × m × n`, races the searcher suite through the engine, fits
//! each algorithm's scaling exponent and prints the per-size Lemma 1
//! lower bound next to the best measured mean.

use super::{open_corpus, print_banner, resolve_source};
use nonsearch_analysis::Table;
use nonsearch_core::{
    certify_with_source, theorem1_weak_bound, CertifyConfig, GraphModel, MergedMoriModel,
};
use nonsearch_engine::{ExpContext, ExperimentSpec, JsonValue};
use nonsearch_search::{SearcherKind, SuccessCriterion};

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "theorem1-weak",
    id: "E1",
    claim: "expected requests to find vertex n in Móri(p, m) is Ω(n^0.5)",
    default_seed: 0xE1,
    run,
};

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E1 / Theorem 1 (weak model)",
        "expected requests to find vertex n in Móri(p, m) is Ω(n^0.5); \
         measured best-algorithm exponent should be ≥ ~0.5",
    );

    let sizes = ctx.options.sweep(&[512, 1024, 2048, 4096, 8192, 16384]);
    let trial_count = ctx.options.trial_count(12);
    let p_values = if ctx.options.quick {
        vec![0.6]
    } else {
        vec![0.3, 0.6, 1.0]
    };
    let m_values = if ctx.options.quick {
        vec![1]
    } else {
        vec![1, 3]
    };
    let corpus = open_corpus(ctx);

    for &p in &p_values {
        for &m in &m_values {
            let model = MergedMoriModel { p, m };
            let config = CertifyConfig {
                sizes: sizes.clone(),
                trials: trial_count,
                seed: ctx.seed,
                searchers: SearcherKind::informed().to_vec(),
                criterion: SuccessCriterion::DiscoverTarget,
                budget_multiplier: 30,
                threads: ctx.options.threads,
                tracer: ctx.tracer.clone(),
            };
            // A corpus built with this experiment's seed and sizes
            // serves the exact per-trial graphs, so the report (and the
            // emitted cell records) are bit-identical to generating.
            let source = resolve_source(corpus.as_ref(), &model, &sizes);
            let report = certify_with_source(model.name(), &*source, &config);
            println!("{report}");

            for algorithm in &report.algorithms {
                let exponent = algorithm.exponent();
                for pt in &algorithm.points {
                    ctx.writer
                        .record_cell(vec![
                            ("model", JsonValue::from("mori")),
                            ("p", JsonValue::from(p)),
                            ("m", JsonValue::from(m)),
                            ("searcher", JsonValue::from(algorithm.kind.name())),
                            ("n", JsonValue::from(pt.n)),
                            ("trials", JsonValue::from(trial_count)),
                            ("seed", JsonValue::from(ctx.seed)),
                            ("mean", JsonValue::from(pt.mean_requests)),
                            ("ci95", JsonValue::from(pt.ci95)),
                            ("success", JsonValue::from(pt.success_rate)),
                            ("exponent", JsonValue::from(exponent)),
                        ])
                        .expect("write cell record");
                }
            }

            if ctx.options.profile {
                for profile in &report.profiles {
                    ctx.writer
                        .record_profile(vec![
                            ("model", JsonValue::from("mori")),
                            ("p", JsonValue::from(p)),
                            ("m", JsonValue::from(m)),
                            ("n", JsonValue::from(profile.n)),
                            ("trials", JsonValue::from(profile.trials)),
                            ("lanes", JsonValue::from(profile.lanes)),
                            ("requests", JsonValue::from(profile.requests)),
                            ("wall_ms", JsonValue::from(profile.wall_ms)),
                            (
                                "requests_per_sec",
                                JsonValue::from(profile.requests_per_sec),
                            ),
                        ])
                        .expect("write profile record");
                    ctx.writer
                        .record_metrics(
                            vec![
                                ("model", JsonValue::from("mori")),
                                ("p", JsonValue::from(p)),
                                ("m", JsonValue::from(m)),
                                ("n", JsonValue::from(profile.n)),
                            ],
                            &profile.metrics,
                        )
                        .expect("write metrics record");
                    ctx.writer
                        .record_resource(
                            vec![
                                ("model", JsonValue::from("mori")),
                                ("p", JsonValue::from(p)),
                                ("m", JsonValue::from(m)),
                                ("n", JsonValue::from(profile.n)),
                            ],
                            profile.wall_ms as u64,
                            profile.workers,
                            &profile.phases,
                            profile.allocations,
                            &profile.resource,
                        )
                        .expect("write resource record");
                }
            }

            let mut bound_table =
                Table::with_columns(&["n", "lemma1 bound", "best measured", "slack"]);
            let best = report.best_algorithm().expect("suite is non-empty");
            for pt in &best.points {
                let bound = theorem1_weak_bound(pt.n, p).expect("valid n, p");
                bound_table.row(vec![
                    pt.n.to_string(),
                    format!("{bound:.1}"),
                    format!("{:.1}", pt.mean_requests),
                    format!("{:.1}x", pt.mean_requests / bound),
                ]);
            }
            println!("lower bound vs best ({}):", best.kind.name());
            println!("{bound_table}");
            if let Some(expo) = report.best_exponent() {
                println!("fitted exponent of best algorithm: {expo:.3} (theory: ≥ 0.5)\n");
            }
        }
    }
}
