//! Textual model specs for `xp corpus build --model`.
//!
//! A spec is `name[:key=value,...]`, e.g. `mori:p=0.6,m=1` or `ba:m=2`.
//! Parsing produces the same [`GraphModel`] implementations the
//! experiments sweep, so a corpus can be built for any of them.

use crate::error::CorpusError;
use nonsearch_core::{
    BarabasiAlbertModel, CooperFriezeModel, GraphModel, MergedMoriModel, PowerLawGiantModel,
    UniformAttachmentModel,
};
use std::collections::BTreeMap;

/// The default spec — the Móri model of Theorem 1 at the parameters the
/// `theorem1-weak` and `ablation` experiments sweep in quick mode.
pub const DEFAULT_MODEL_SPEC: &str = "mori:p=0.6,m=1";

/// A boxed model that can be shared across builder worker threads.
pub type BoxedModel = Box<dyn GraphModel + Send + Sync>;

/// Parses a model spec into a sampleable model.
///
/// Supported specs (all parameters optional, shown with defaults):
///
/// * `mori:p=0.6,m=1` — merged Móri graph `G^{(m)}`
/// * `ba:m=2` — Barabási–Albert
/// * `uniform:m=1` — uniform attachment
/// * `cooper-frieze:alpha=0.7` — balanced Cooper–Frieze
/// * `power-law:k=2.5,dmin=1` — Molloy–Reed giant component
///
/// # Errors
///
/// Returns [`CorpusError::ModelSpec`] for unknown names, unknown keys,
/// or unparseable values.
pub fn parse_model(spec: &str) -> Result<BoxedModel, CorpusError> {
    let bad = |reason: String| CorpusError::ModelSpec {
        spec: spec.to_string(),
        reason,
    };
    let (name, params) = match spec.split_once(':') {
        Some((n, p)) => (n, p),
        None => (spec, ""),
    };
    let mut kv: BTreeMap<&str, &str> = BTreeMap::new();
    for pair in params.split(',').filter(|s| !s.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| bad(format!("parameter {pair:?} is not key=value")))?;
        kv.insert(k, v);
    }
    let model: BoxedModel = match name {
        "mori" => {
            let p = f64_param(&mut kv, "p", 0.6, spec)?;
            let m = usize_param(&mut kv, "m", 1, spec)?;
            Box::new(MergedMoriModel { p, m })
        }
        "ba" | "barabasi-albert" => {
            let m = usize_param(&mut kv, "m", 2, spec)?;
            Box::new(BarabasiAlbertModel { m })
        }
        "uniform" | "uniform-attachment" => {
            let m = usize_param(&mut kv, "m", 1, spec)?;
            Box::new(UniformAttachmentModel { m })
        }
        "cooper-frieze" => {
            let alpha = f64_param(&mut kv, "alpha", 0.7, spec)?;
            if !(alpha > 0.0 && alpha <= 1.0) {
                return Err(bad(format!("alpha={alpha} outside (0, 1]")));
            }
            Box::new(CooperFriezeModel::balanced(alpha))
        }
        "power-law" => {
            let exponent = f64_param(&mut kv, "k", 2.5, spec)?;
            let d_min = usize_param(&mut kv, "dmin", 1, spec)?;
            if exponent <= 1.0 {
                return Err(bad(format!("k={exponent} must exceed 1")));
            }
            Box::new(PowerLawGiantModel { exponent, d_min })
        }
        other => {
            return Err(bad(format!(
                "unknown model {other:?} (know mori, ba, uniform, cooper-frieze, power-law)"
            )))
        }
    };
    if let Some((k, _)) = kv.into_iter().next() {
        return Err(bad(format!("unknown parameter {k:?} for model {name:?}")));
    }
    Ok(model)
}

fn f64_param(
    kv: &mut BTreeMap<&str, &str>,
    key: &str,
    default: f64,
    spec: &str,
) -> Result<f64, CorpusError> {
    match kv.remove(key) {
        None => Ok(default),
        Some(v) => v.parse::<f64>().map_err(|e| CorpusError::ModelSpec {
            spec: spec.to_string(),
            reason: format!("parameter {key}={v:?}: {e}"),
        }),
    }
}

fn usize_param(
    kv: &mut BTreeMap<&str, &str>,
    key: &str,
    default: usize,
    spec: &str,
) -> Result<usize, CorpusError> {
    match kv.remove(key) {
        None => Ok(default),
        Some(v) => v.parse::<usize>().map_err(|e| CorpusError::ModelSpec {
            spec: spec.to_string(),
            reason: format!("parameter {key}={v:?}: {e}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_parses_to_the_e1_quick_model() {
        let model = parse_model(DEFAULT_MODEL_SPEC).unwrap();
        assert_eq!(model.name(), "mori(p=0.6,m=1)");
    }

    #[test]
    fn all_model_families_parse() {
        for (spec, name_fragment) in [
            ("mori:p=0.3,m=2", "mori(p=0.3,m=2)"),
            ("ba:m=3", "barabasi-albert(m=3)"),
            ("barabasi-albert", "barabasi-albert(m=2)"),
            ("uniform:m=2", "uniform-attachment(m=2)"),
            ("cooper-frieze:alpha=0.5", "a=0.5"),
            ("power-law:k=2.3,dmin=2", "k=2.3"),
        ] {
            let model = parse_model(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(
                model.name().contains(name_fragment),
                "{spec} -> {}",
                model.name()
            );
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for spec in [
            "nope",
            "mori:p=high",
            "mori:wat=1",
            "ba:m",
            "cooper-frieze:alpha=0",
            "power-law:k=0.5",
        ] {
            let err = match parse_model(spec) {
                Err(e) => e,
                Ok(m) => panic!("{spec} unexpectedly parsed to {}", m.name()),
            };
            assert!(err.to_string().contains(spec), "{spec}: {err}");
        }
    }

    #[test]
    fn parsed_models_sample() {
        let model = parse_model("ba:m=2").unwrap();
        let g = nonsearch_core::sample_with_seed(&*model, 100, 1);
        assert_eq!(g.node_count(), 100);
    }
}
