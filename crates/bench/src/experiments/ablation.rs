//! E13 — ablations over the search-model knobs DESIGN.md calls out:
//! oracle strength, success criterion, and start-vertex policy.

use super::{open_corpus, print_banner, resolve_source};
use crate::{strong_cell_from, weak_cell_with_policy_from, CellStats, StartPolicy, StrongKind};
use nonsearch_analysis::Table;
use nonsearch_core::MergedMoriModel;
use nonsearch_engine::{ExpContext, ExperimentSpec, JsonValue};
use nonsearch_generators::SeedSequence;
use nonsearch_search::{SearcherKind, SuccessCriterion};

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "ablation",
    id: "E13",
    claim: "no model knob changes the Ω(√n)-shaped cost of finding vertex n",
    default_seed: 0xE13,
    run,
};

fn record(ctx: &mut ExpContext, knob: &str, variant: &str, n: usize, trials: usize, c: CellStats) {
    ctx.writer
        .record_cell(vec![
            ("model", JsonValue::from("mori")),
            ("knob", JsonValue::from(knob)),
            ("variant", JsonValue::from(variant)),
            ("n", JsonValue::from(n)),
            ("trials", JsonValue::from(trials)),
            ("seed", JsonValue::from(ctx.seed)),
            ("mean", JsonValue::from(c.mean)),
            ("ci95", JsonValue::from(c.ci95)),
            ("success", JsonValue::from(c.success)),
        ])
        .expect("write cell record");
    if ctx.options.profile {
        ctx.writer
            .record_profile(vec![
                ("model", JsonValue::from("mori")),
                ("knob", JsonValue::from(knob)),
                ("variant", JsonValue::from(variant)),
                ("n", JsonValue::from(n)),
                ("trials", JsonValue::from(trials)),
                ("requests", JsonValue::from(c.mean * trials as f64)),
                ("wall_ms", JsonValue::from(c.wall_ms)),
                ("requests_per_sec", JsonValue::from(c.requests_per_sec)),
            ])
            .expect("write profile record");
        ctx.writer
            .record_metrics(
                vec![
                    ("model", JsonValue::from("mori")),
                    ("knob", JsonValue::from(knob)),
                    ("variant", JsonValue::from(variant)),
                    ("n", JsonValue::from(n)),
                ],
                &c.metrics,
            )
            .expect("write metrics record");
        ctx.writer
            .record_resource(
                vec![
                    ("model", JsonValue::from("mori")),
                    ("knob", JsonValue::from(knob)),
                    ("variant", JsonValue::from(variant)),
                    ("n", JsonValue::from(n)),
                ],
                c.wall_ms as u64,
                c.workers,
                &c.phases,
                c.allocations,
                &c.resource,
            )
            .expect("write resource record");
    }
}

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E13 / ablations",
        "none of the model knobs (oracle strength, success criterion, \
         start policy) changes the Ω(√n)-shaped cost of finding vertex n",
    );

    let model = MergedMoriModel { p: 0.6, m: 1 };
    let sizes = ctx.options.sweep(&[1024, 4096, 16384]);
    let trial_count = ctx.options.trial_count(10);
    let threads = ctx.options.threads;
    let seeds = SeedSequence::new(ctx.seed);
    let corpus = open_corpus(ctx);
    let source = resolve_source(corpus.as_ref(), &model, &sizes);
    let tracer = ctx.tracer.clone();

    // Knob 1: weak vs strong vs simulated-strong oracle.
    println!("oracle strength (high-degree strategy):");
    let mut t1 = Table::with_columns(&["oracle", "n", "mean requests", "success"]);
    for (si, &n) in sizes.iter().enumerate() {
        let _cell_span = tracer.span("size-cell");
        let weak = weak_cell_with_policy_from(
            &*source,
            n,
            SearcherKind::HighDegree,
            SuccessCriterion::DiscoverTarget,
            StartPolicy::OldestHub,
            trial_count,
            30,
            threads,
            &seeds.subsequence(si as u64),
        );
        t1.row(vec![
            "weak".into(),
            n.to_string(),
            format!("{:.1}", weak.mean),
            format!("{:.2}", weak.success),
        ]);
        record(ctx, "oracle", "weak", n, trial_count, weak);
        let sim = weak_cell_with_policy_from(
            &*source,
            n,
            SearcherKind::SimStrongHighDegree,
            SuccessCriterion::DiscoverTarget,
            StartPolicy::OldestHub,
            trial_count,
            30,
            threads,
            &seeds.subsequence(100 + si as u64),
        );
        t1.row(vec![
            "simulated-strong".into(),
            n.to_string(),
            format!("{:.1}", sim.mean),
            format!("{:.2}", sim.success),
        ]);
        record(ctx, "oracle", "simulated-strong", n, trial_count, sim);
        let strong = strong_cell_from(
            &*source,
            n,
            StrongKind::HighDegree,
            trial_count,
            threads,
            &seeds.subsequence(200 + si as u64),
        );
        t1.row(vec![
            "strong (native)".into(),
            n.to_string(),
            format!("{:.1}", strong.mean),
            format!("{:.2}", strong.success),
        ]);
        record(ctx, "oracle", "strong-native", n, trial_count, strong);
    }
    println!("{t1}");

    // Knob 2: success criterion.
    println!("success criterion (high-degree strategy, weak oracle):");
    let mut t2 = Table::with_columns(&["criterion", "n", "mean requests", "success"]);
    for (si, &n) in sizes.iter().enumerate() {
        let _cell_span = tracer.span("size-cell");
        for (criterion, name) in [
            (SuccessCriterion::DiscoverTarget, "discover target"),
            (SuccessCriterion::ReachNeighbor, "reach neighbor"),
        ] {
            let cell = weak_cell_with_policy_from(
                &*source,
                n,
                SearcherKind::HighDegree,
                criterion,
                StartPolicy::OldestHub,
                trial_count,
                30,
                threads,
                &seeds.subsequence(300 + si as u64),
            );
            t2.row(vec![
                name.into(),
                n.to_string(),
                format!("{:.1}", cell.mean),
                format!("{:.2}", cell.success),
            ]);
            record(ctx, "criterion", name, n, trial_count, cell);
        }
    }
    println!("{t2}");

    // Knob 3: start policy.
    println!("start vertex policy (high-degree strategy, weak oracle):");
    let mut t3 = Table::with_columns(&["start", "n", "mean requests", "success"]);
    for (si, &n) in sizes.iter().enumerate() {
        let _cell_span = tracer.span("size-cell");
        for policy in [
            StartPolicy::OldestHub,
            StartPolicy::Uniform,
            StartPolicy::NearTarget,
        ] {
            let cell = weak_cell_with_policy_from(
                &*source,
                n,
                SearcherKind::HighDegree,
                SuccessCriterion::DiscoverTarget,
                policy,
                trial_count,
                30,
                threads,
                &seeds.subsequence(400 + si as u64),
            );
            t3.row(vec![
                policy.name().into(),
                n.to_string(),
                format!("{:.1}", cell.mean),
                format!("{:.2}", cell.success),
            ]);
            record(ctx, "start", policy.name(), n, trial_count, cell);
        }
    }
    println!("{t3}");
    println!("expected shape: every row grows with n at the same √n-like rate;");
    println!("neighbor criterion and strong oracle shave constants, not the");
    println!("exponent — and starting next to the target barely helps, because");
    println!("label adjacency is not graph adjacency in these models.");
}
