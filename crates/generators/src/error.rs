//! Error type for generator configuration and sampling.

use std::error::Error;
use std::fmt;

/// Errors produced by graph generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeneratorError {
    /// A numeric parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name as it appears in the model definition.
        name: &'static str,
        /// The offending value, formatted.
        value: String,
        /// The valid range, human-readable.
        expected: &'static str,
    },
    /// The requested graph size is too small for the model's seed graph.
    TooSmall {
        /// Requested number of vertices.
        requested: usize,
        /// Minimum supported by the model.
        minimum: usize,
    },
    /// A degree sequence cannot be realized (e.g. odd stub sum).
    InvalidDegreeSequence {
        /// Human-readable cause.
        reason: String,
    },
    /// Rejection sampling exhausted its attempt budget.
    RejectionBudgetExhausted {
        /// Number of attempts made.
        attempts: usize,
    },
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::InvalidParameter {
                name,
                value,
                expected,
            } => {
                write!(
                    f,
                    "parameter `{name}` = {value} is invalid (expected {expected})"
                )
            }
            GeneratorError::TooSmall { requested, minimum } => {
                write!(
                    f,
                    "requested {requested} vertices but the model needs at least {minimum}"
                )
            }
            GeneratorError::InvalidDegreeSequence { reason } => {
                write!(f, "degree sequence cannot be realized: {reason}")
            }
            GeneratorError::RejectionBudgetExhausted { attempts } => {
                write!(f, "rejection sampling failed after {attempts} attempts")
            }
        }
    }
}

impl Error for GeneratorError {}

impl GeneratorError {
    /// Convenience constructor for [`GeneratorError::InvalidParameter`].
    pub fn invalid<V: fmt::Display>(name: &'static str, value: V, expected: &'static str) -> Self {
        GeneratorError::InvalidParameter {
            name,
            value: value.to_string(),
            expected,
        }
    }
}

/// Validates that a probability lies in `[0, 1]`.
pub(crate) fn check_probability(name: &'static str, value: f64) -> crate::Result<()> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(GeneratorError::invalid(
            name,
            value,
            "a probability in [0, 1]",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = GeneratorError::invalid("p", 1.5, "a probability in [0, 1]");
        assert!(e.to_string().contains("`p`"));
        assert!(e.to_string().contains("1.5"));

        let e = GeneratorError::TooSmall {
            requested: 1,
            minimum: 2,
        };
        assert!(e.to_string().contains("at least 2"));

        let e = GeneratorError::InvalidDegreeSequence {
            reason: "odd sum".into(),
        };
        assert!(e.to_string().contains("odd sum"));

        let e = GeneratorError::RejectionBudgetExhausted { attempts: 9 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn probability_check() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", 0.5).is_ok());
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", 1.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeneratorError>();
    }
}
