//! The searcher's partial view of the graph, stored dense.
//!
//! Vertex and edge handles are dense integers ([`NodeId`]/[`EdgeId`]), so
//! the view keeps flat arrays indexed by id instead of hash tables: a
//! [`StampedMap`] of arena spans per node, a [`StampedMap`] of resolution
//! flags per edge, and one shared arena holding every discovered incident
//! list back to back. Per-request work is a handful of array reads — no
//! hashing, and no heap allocation once the arrays have grown to the
//! graph's size.
//!
//! # Layout: hot stamps, cold endpoints
//!
//! Edge state is split by access pattern. The *hot* pair — presence stamp
//! and resolved flag — lives inline in one `StampedMap<bool>` slot
//! (8 bytes), because the request loop's dominant operation,
//! [`is_resolved`](DiscoveredView::is_resolved), reads exactly that pair
//! for every incident slot it scans. The *cold* endpoint pair
//! `[first, other]` sits in a separate side array touched only on the
//! rare [`other_endpoint`](DiscoveredView::other_endpoint) lookup, so it
//! no longer dilutes the cache lines the scan streams through.
//!
//! Presence itself is epoch-stamped — clearing the view is an O(1) epoch
//! bump, with the u32-wrap path audited once in
//! [`StampedMap`](crate::StampedMap) rather than re-implemented here.
//! This is what lets one [`SearchScratch`](crate::SearchScratch) serve
//! thousands of Monte-Carlo trials without reallocating.

use crate::stamped::StampedMap;
use nonsearch_graph::{EdgeId, NodeId};

/// Arena range of a discovered vertex's incident list.
#[derive(Debug, Clone, Copy, Default)]
struct NodeSpan {
    start: usize,
    len: usize,
}

/// What the searcher knows about one discovered vertex: its degree and
/// its incident edge handles, as revealed on discovery.
///
/// A lightweight borrowed proxy — the incident list is a slice into the
/// view's shared arena (the vertex's slot-ordered incident image), not a
/// per-vertex allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscoveredVertex<'a> {
    incident: &'a [EdgeId],
}

impl<'a> DiscoveredVertex<'a> {
    /// The vertex degree (length of its incident edge list).
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    /// The incident edge handles, in the slot order revealed on
    /// discovery. The slice borrows from the view, not from a
    /// per-vertex vector.
    pub fn incident(self) -> &'a [EdgeId] {
        self.incident
    }
}

/// The searcher's accumulated knowledge: discovered vertices (with degree
/// and incident edge lists) and partially resolved edges.
///
/// Edges carry global identities, so when both endpoints of a handle have
/// been discovered the view infers the connection without spending a
/// request — a conservative choice for lower-bound experiments (the
/// searcher is never given *less* than the model allows).
///
/// All state lives in dense [`StampedMap`]s indexed by `NodeId`/`EdgeId`
/// and is invalidated wholesale by an epoch bump (see the module docs),
/// so a view reused across trials performs zero heap allocations once
/// warm. The mutators ([`insert_vertex`](DiscoveredView::insert_vertex),
/// [`resolve_edge`](DiscoveredView::resolve_edge)) are the oracle-side
/// API; algorithms only ever see `&DiscoveredView`.
#[derive(Debug, Clone, Default)]
pub struct DiscoveredView {
    /// Discovered vertices: present iff discovered, value is the arena
    /// span of the incident list.
    nodes: StampedMap<NodeSpan>,
    /// Hot edge state: present iff the edge has appeared in some
    /// discovered incident list or request answer; the value is `true`
    /// iff both endpoints are known.
    edges: StampedMap<bool>,
    /// Cold edge state: `[first, other]` endpoints. `first` is valid
    /// when the edge is present in `edges`, `other` when resolved. Kept
    /// out of the hot slots so resolution scans stay cache-dense; grown
    /// in lockstep with `edges` by
    /// [`reserve_graph`](DiscoveredView::reserve_graph).
    edge_ends: Vec<[NodeId; 2]>,
    /// Discovered vertices in discovery order (start vertex first).
    order: Vec<NodeId>,
    /// All discovered incident lists, back to back in discovery order.
    arena: Vec<EdgeId>,
    /// Cumulative count of edges that became resolved (both endpoints
    /// known), via requests or second sightings. Survives
    /// [`reset`](DiscoveredView::reset) — metrics consumers take
    /// before/after deltas.
    edge_resolutions: u64,
    /// Cumulative count of [`reset`](DiscoveredView::reset) calls
    /// (one per search begun on this view).
    resets: u64,
}

impl DiscoveredView {
    /// An empty view (no vertices discovered yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// A view whose *next* [`reset`](DiscoveredView::reset) takes the
    /// epoch-wrap path. Test-only hook: wrap coverage drives the public
    /// API instead of poking private fields.
    #[doc(hidden)]
    pub fn near_wrap() -> Self {
        DiscoveredView {
            nodes: StampedMap::near_wrap(),
            edges: StampedMap::near_wrap(),
            ..Self::default()
        }
    }

    /// Forgets everything in O(1): bumps the node/edge epochs and
    /// truncates the discovery-order list and arena, keeping every
    /// allocation for the next search. The once-per-2^32 wrap path is
    /// [`StampedMap::reset`]'s.
    // lint: alloc-free
    pub fn reset(&mut self) {
        self.order.clear();
        self.arena.clear();
        self.nodes.reset();
        self.edges.reset();
        self.resets += 1;
    }

    /// Grows the dense arrays to cover `nodes` vertices and `edges`
    /// edges — including the discovery-order and arena buffers (a graph
    /// with `edges` edges has exactly `2 * edges` incidence slots) — so
    /// a search over a graph of that size triggers no allocation at all,
    /// even on the first trial. Called by the oracles at search start; a
    /// no-op once the arrays are large enough.
    pub fn reserve_graph(&mut self, nodes: usize, edges: usize) {
        self.nodes.reserve(nodes);
        self.edges.reserve(edges);
        if self.edge_ends.len() < edges {
            self.edge_ends.resize(edges, [NodeId::new(0); 2]);
        }
        if self.order.capacity() < nodes {
            self.order.reserve(nodes - self.order.len());
        }
        let slots = 2 * edges;
        if self.arena.capacity() < slots {
            self.arena.reserve(slots - self.arena.len());
        }
    }

    /// Number of discovered vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if nothing has been discovered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `true` if `v` has been discovered.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(v.index())
    }

    /// Discovered vertices in discovery order (start vertex first).
    pub fn discovered(&self) -> &[NodeId] {
        &self.order
    }

    /// Knowledge about `v`, if discovered.
    #[inline]
    pub fn vertex(&self, v: NodeId) -> Option<DiscoveredVertex<'_>> {
        self.nodes.get(v.index()).map(|span| DiscoveredVertex {
            incident: &self.arena[span.start..span.start + span.len],
        })
    }

    /// Degree of `v`, if discovered.
    #[inline]
    pub fn degree_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.get(v.index()).map(|span| span.len)
    }

    /// The opposite endpoint of `e` as seen from `u`, if already known.
    ///
    /// Known means: revealed by a request, or inferable because the edge
    /// handle appeared in two discovered incident lists.
    pub fn other_endpoint(&self, u: NodeId, e: EdgeId) -> Option<NodeId> {
        let i = e.index();
        if !self.is_resolved(e) {
            return None;
        }
        let [a, b] = self.edge_ends[i];
        if a == u {
            Some(b)
        } else if b == u {
            Some(a)
        } else {
            None
        }
    }

    /// `true` if both endpoints of `e` are known.
    #[inline]
    pub fn is_resolved(&self, e: EdgeId) -> bool {
        matches!(self.edges.get(e.index()), Some(true))
    }

    /// Incident edges of `v` whose far endpoint is still unknown, in
    /// slot order. The iterator borrows the view and allocates nothing;
    /// it is empty for undiscovered vertices.
    pub fn unexplored_edges_of(&self, v: NodeId) -> UnexploredEdges<'_> {
        UnexploredEdges {
            view: self,
            inner: self
                .vertex(v)
                .map_or([].iter(), |info| info.incident().iter()),
        }
    }

    /// `true` if `v` is discovered and has at least one unresolved edge.
    pub fn has_unexplored(&self, v: NodeId) -> bool {
        self.unexplored_edges_of(v).next().is_some()
    }

    /// Records the discovery of `v` with its incident edge list.
    ///
    /// This is oracle-side API (algorithms only see `&DiscoveredView`),
    /// public so model-based tests and benches can drive the view
    /// directly. Idempotent for already-known vertices; the arrays grow
    /// as needed, so any in-range ids are acceptable.
    pub fn insert_vertex(&mut self, v: NodeId, incident: &[EdgeId]) {
        self.insert_with(v, incident.iter().copied());
    }

    /// [`insert_vertex`](DiscoveredView::insert_vertex) reading the edge
    /// handles straight out of a CSR incidence-slot slice, so the oracle
    /// copies each handle exactly once (graph → arena) with no
    /// intermediate vector.
    pub(crate) fn insert_vertex_from_slots(&mut self, v: NodeId, slots: &[(NodeId, EdgeId)]) {
        self.insert_with(v, slots.iter().map(|&(_, e)| e));
    }

    // lint: alloc-free
    fn insert_with(&mut self, v: NodeId, incident: impl Iterator<Item = EdgeId>) {
        if self.contains(v) {
            return;
        }
        let vi = v.index();
        if vi >= self.nodes.capacity() {
            self.reserve_graph(vi + 1, 0);
        }
        let start = self.arena.len();
        for e in incident {
            let i = e.index();
            if i >= self.edges.capacity() {
                self.reserve_graph(0, i + 1);
            }
            if self.edges.insert(i, false) {
                self.edge_ends[i][0] = v;
            } else if let Some(resolved) = self.edges.get_mut(i) {
                if !*resolved {
                    // Second sighting resolves the edge; a self-loop
                    // lists the same handle twice in one incident list.
                    *resolved = true;
                    self.edge_ends[i][1] = v;
                    self.edge_resolutions += 1;
                }
            }
            self.arena.push(e);
        }
        self.nodes.insert(
            vi,
            NodeSpan {
                start,
                len: self.arena.len() - start,
            },
        );
        self.order.push(v);
    }

    /// Records the answer to a request on `(u, e)`: the far endpoint is
    /// `other`. Oracle-side API, public for the same reason as
    /// [`insert_vertex`](DiscoveredView::insert_vertex).
    // lint: alloc-free
    pub fn resolve_edge(&mut self, u: NodeId, e: EdgeId, other: NodeId) {
        let i = e.index();
        if i >= self.edges.capacity() {
            self.reserve_graph(0, i + 1);
        }
        if self.edges.insert(i, true) {
            self.edge_ends[i] = [u, other];
            self.edge_resolutions += 1;
        } else if let Some(resolved) = self.edges.get_mut(i) {
            if !*resolved {
                // Re-anchor on the requesting endpoint: the stored
                // `first` may be the *far* endpoint of this request (a
                // caller resolving from the other side), and keeping it
                // would record the degenerate pair `{other, other}`.
                *resolved = true;
                self.edge_ends[i] = [u, other];
                self.edge_resolutions += 1;
            }
        }
    }

    /// Cumulative count of edges that became resolved on this view,
    /// across every search since construction (resets do not clear it).
    /// Metrics consumers read it before and after a trial and record
    /// the delta.
    pub fn edge_resolutions(&self) -> u64 {
        self.edge_resolutions
    }

    /// Cumulative count of [`reset`](DiscoveredView::reset) calls since
    /// construction — one per search begun on this view.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

/// Iterator over a vertex's unresolved incident edges, in slot order.
/// Created by [`DiscoveredView::unexplored_edges_of`]; allocates
/// nothing.
#[derive(Debug, Clone)]
pub struct UnexploredEdges<'a> {
    view: &'a DiscoveredView,
    inner: std::slice::Iter<'a, EdgeId>,
}

impl Iterator for UnexploredEdges<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        self.inner
            .by_ref()
            .copied()
            .find(|&e| !self.view.is_resolved(e))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: usize) -> EdgeId {
        EdgeId::new(i)
    }
    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn unexplored(view: &DiscoveredView, u: NodeId) -> Vec<EdgeId> {
        view.unexplored_edges_of(u).collect()
    }

    #[test]
    fn insert_and_query() {
        let mut view = DiscoveredView::new();
        assert!(view.is_empty());
        view.insert_vertex(v(0), &[e(0), e(1)]);
        assert_eq!(view.len(), 1);
        assert!(view.contains(v(0)));
        assert_eq!(view.degree_of(v(0)), Some(2));
        assert_eq!(view.vertex(v(0)).unwrap().incident(), &[e(0), e(1)]);
        assert_eq!(view.degree_of(v(1)), None);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(0), &[e(0)]);
        view.insert_vertex(v(0), &[e(0), e(1)]);
        assert_eq!(view.degree_of(v(0)), Some(1));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn explicit_resolution() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(0), &[e(0)]);
        assert!(!view.is_resolved(e(0)));
        assert_eq!(unexplored(&view, v(0)), vec![e(0)]);
        view.resolve_edge(v(0), e(0), v(1));
        assert!(view.is_resolved(e(0)));
        assert_eq!(view.other_endpoint(v(0), e(0)), Some(v(1)));
        assert_eq!(view.other_endpoint(v(1), e(0)), Some(v(0)));
        assert!(unexplored(&view, v(0)).is_empty());
    }

    #[test]
    fn double_sighting_resolves_implicitly() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(0), &[e(5)]);
        view.insert_vertex(v(3), &[e(5), e(6)]);
        assert!(view.is_resolved(e(5)));
        assert_eq!(view.other_endpoint(v(0), e(5)), Some(v(3)));
        assert!(!view.is_resolved(e(6)));
        assert!(view.has_unexplored(v(3)));
        assert!(!view.has_unexplored(v(0)));
    }

    #[test]
    fn self_loop_resolves_within_one_list() {
        let mut view = DiscoveredView::new();
        // A self-loop contributes two slots with the same handle.
        view.insert_vertex(v(2), &[e(0), e(0), e(1)]);
        assert!(view.is_resolved(e(0)));
        assert_eq!(view.other_endpoint(v(2), e(0)), Some(v(2)));
        assert!(!view.is_resolved(e(1)));
    }

    #[test]
    fn unknown_edges_are_unknown() {
        let view = DiscoveredView::new();
        assert_eq!(view.other_endpoint(v(0), e(0)), None);
        assert!(!view.is_resolved(e(0)));
        assert!(unexplored(&view, v(0)).is_empty());
        assert!(!view.has_unexplored(v(0)));
    }

    #[test]
    fn discovery_order_is_preserved() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(4), &[]);
        view.insert_vertex(v(1), &[]);
        view.insert_vertex(v(9), &[]);
        assert_eq!(view.discovered(), &[v(4), v(1), v(9)]);
    }

    #[test]
    fn resolving_an_unseen_edge_records_both_endpoints() {
        let mut view = DiscoveredView::new();
        view.resolve_edge(v(3), e(7), v(5));
        assert!(view.is_resolved(e(7)));
        assert_eq!(view.other_endpoint(v(3), e(7)), Some(v(5)));
        assert_eq!(view.other_endpoint(v(5), e(7)), Some(v(3)));
        assert_eq!(view.other_endpoint(v(9), e(7)), None);
    }

    #[test]
    fn resolving_from_the_far_endpoint_keeps_the_pair_consistent() {
        // Regression: e(0) first sighted at v(0); a later request driven
        // from the *far* endpoint v(7) used to keep `first = v(0)` while
        // storing `other = v(0)`, collapsing the pair to {v(0), v(0)} so
        // `other_endpoint(v(7), e(0))` wrongly answered `None`.
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(0), &[e(0)]);
        view.resolve_edge(v(7), e(0), v(0));
        assert!(view.is_resolved(e(0)));
        assert_eq!(view.other_endpoint(v(7), e(0)), Some(v(0)));
        assert_eq!(view.other_endpoint(v(0), e(0)), Some(v(7)));
    }

    #[test]
    fn reset_forgets_everything_and_reuses_memory() {
        let mut view = DiscoveredView::new();
        view.insert_vertex(v(0), &[e(0), e(1)]);
        view.resolve_edge(v(0), e(0), v(1));
        view.reset();
        assert!(view.is_empty());
        assert!(!view.contains(v(0)));
        assert!(!view.is_resolved(e(0)));
        assert_eq!(view.other_endpoint(v(0), e(0)), None);
        // The arrays kept their length; fresh inserts work immediately.
        view.insert_vertex(v(1), &[e(1)]);
        assert_eq!(view.discovered(), &[v(1)]);
        assert!(!view.is_resolved(e(1)));
    }

    #[test]
    fn epoch_wrap_clears_stamps() {
        // Built at the wrap boundary: the first reset zero-fills stamps.
        let mut view = DiscoveredView::near_wrap();
        view.insert_vertex(v(0), &[e(0)]);
        assert!(view.contains(v(0)));
        view.reset();
        assert!(!view.contains(v(0)));
        assert!(!view.is_resolved(e(0)));
        view.insert_vertex(v(0), &[e(0)]);
        assert!(view.contains(v(0)));
        // And the restarted epoch keeps resetting cleanly.
        view.reset();
        assert!(!view.contains(v(0)));
    }

    #[test]
    fn resolution_and_reset_counters_are_cumulative() {
        let mut view = DiscoveredView::new();
        assert_eq!((view.edge_resolutions(), view.resets()), (0, 0));
        view.insert_vertex(v(0), &[e(0), e(1)]);
        view.resolve_edge(v(0), e(0), v(1)); // request resolution
        view.insert_vertex(v(2), &[e(1)]); // second-sighting resolution
        assert_eq!(view.edge_resolutions(), 2);
        view.resolve_edge(v(0), e(0), v(1)); // already resolved: no count
        assert_eq!(view.edge_resolutions(), 2);
        view.reset();
        assert_eq!(view.resets(), 1);
        // Counters survive the reset; the next search adds on top.
        view.resolve_edge(v(3), e(7), v(5));
        assert_eq!(view.edge_resolutions(), 3);
    }

    #[test]
    fn reserve_graph_is_idempotent() {
        let mut view = DiscoveredView::new();
        view.reserve_graph(10, 20);
        view.insert_vertex(v(9), &[e(19)]);
        view.reserve_graph(5, 5); // never shrinks
        assert!(view.contains(v(9)));
        assert_eq!(view.vertex(v(9)).unwrap().incident(), &[e(19)]);
    }
}
