//! Opening a corpus and serving its graphs as engine [`GraphSource`]s.
//!
//! [`Corpus::open`] parses the manifest and indexes graphs by requested
//! size; [`Corpus::source`] (originals) and [`Corpus::variant_source`]
//! (rewired null models) hand out [`CorpusSource`]s that assign trials
//! to stored graphs **round-robin** (`trial % stored_trials`). Loaded
//! graphs are cached behind an `Arc`, so concurrent trials on any
//! number of engine workers share one in-memory copy per file; first
//! loads are **single-flight** — one decode (or mapping) per file no
//! matter how many workers race for it. With [`LoadMode::Mmap`] the
//! store serves zero-copy views of memory-mapped files instead of heap
//! decodes, bounding memory by the page cache rather than by RAM.

use crate::error::CorpusError;
use crate::manifest::Manifest;
use crate::mmap::MappedFile;
use crate::model_spec::parse_model;
use crate::nsg;
use nonsearch_engine::GraphSource;
use nonsearch_generators::{degree_preserving_rewire, SeedSequence};
use nonsearch_graph::{CsrBytes, UndirectedCsr};
// lint: allow(determinism): keyed cache lookup only; the map is never iterated, so order cannot surface
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Subdirectory of a corpus where healing parks corrupt blobs.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Attempts for the regenerate write before a heal gives up (each retry
/// backs off twice as long as the last).
const HEAL_WRITE_ATTEMPTS: u32 = 3;

/// How a [`Corpus`] materializes stored graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Decode each `.nsg` file into heap-owned CSR buffers (the
    /// classic path; always available).
    #[default]
    Heap,
    /// Memory-map each `.nsg` file and serve zero-copy borrowed views:
    /// one validation pass at map time, then the page cache backs every
    /// access. Falls back to an owned decode on targets that cannot
    /// express the borrowed view, so results are identical either way.
    Mmap,
}

/// One cache entry: the per-file lock making first loads single-flight.
/// Loaders of *different* files never contend on each other's slots.
type CacheSlot = Arc<Mutex<Option<Arc<UndirectedCsr>>>>;

struct Inner {
    dir: PathBuf,
    manifest: Manifest,
    mode: LoadMode,
    /// Skip the per-file payload checksum on load (`--trust-checksums`);
    /// [`Corpus::verify`] always hashes regardless.
    trust_checksums: bool,
    /// Quarantine + regenerate corrupt stored files (`--heal`) instead
    /// of failing the load or verify.
    heal: bool,
    /// Requested size → indices into `manifest.graphs`, trial order.
    by_n: BTreeMap<usize, Vec<usize>>,
    /// Relative file → load slot, filled on first access.
    // lint: allow(determinism): keyed cache lookup only; the map is never iterated, so order cannot surface
    cache: Mutex<HashMap<String, CacheSlot>>,
}

/// An opened corpus directory.
#[derive(Clone)]
pub struct Corpus {
    inner: Arc<Inner>,
}

/// What [`Corpus::verify`] checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Files whose checksum and structure were validated.
    pub files: usize,
    /// Total bytes read.
    pub bytes: u64,
    /// Which load path performed the validation.
    pub mode: LoadMode,
    /// Files regenerated from the manifest's provenance (healing only).
    pub healed: usize,
    /// Corrupt blobs moved to `quarantine/` before regeneration — can
    /// trail `healed` when the corrupt file was missing outright.
    pub quarantined: usize,
}

impl Corpus {
    /// Opens the corpus at `dir` by reading its manifest, with the
    /// default heap [`LoadMode`].
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if the manifest is missing or malformed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Corpus, CorpusError> {
        Self::open_with(dir, LoadMode::default())
    }

    /// Opens the corpus at `dir` with an explicit [`LoadMode`] (the
    /// `--mmap` experiment flag maps to [`LoadMode::Mmap`]).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if the manifest is missing or malformed.
    pub fn open_with(dir: impl Into<PathBuf>, mode: LoadMode) -> Result<Corpus, CorpusError> {
        Self::open_with_trust(dir, mode, false)
    }

    /// Opens the corpus at `dir` with an explicit [`LoadMode`] and
    /// checksum policy. With `trust_checksums` every per-trial load
    /// skips the FNV pass over the payload (the `--trust-checksums`
    /// flag) — use after a `corpus verify`, which remains the integrity
    /// authority and always hashes. Header sanity checks and CSR
    /// structural validation still run on every load.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if the manifest is missing or malformed.
    pub fn open_with_trust(
        dir: impl Into<PathBuf>,
        mode: LoadMode,
        trust_checksums: bool,
    ) -> Result<Corpus, CorpusError> {
        Self::open_healing(dir, mode, trust_checksums, false)
    }

    /// Opens the corpus at `dir` with every policy explicit. With
    /// `heal` a corrupt stored file is **quarantined and regenerated**
    /// instead of failing the operation: the bad blob moves to
    /// `quarantine/<name>`, the graph is re-sampled from the manifest's
    /// model spec and seed derivation (the same `(seed, size_idx,
    /// trial)` streams the builder used, so the bytes come back
    /// identical), and the regenerated file is re-checked against the
    /// manifest checksum. Both [`Corpus::load`] and [`Corpus::verify`]
    /// take the heal path; a regeneration that still mismatches the
    /// manifest is reported as the original corruption would have been.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] if the manifest is missing or malformed.
    pub fn open_healing(
        dir: impl Into<PathBuf>,
        mode: LoadMode,
        trust_checksums: bool,
        heal: bool,
    ) -> Result<Corpus, CorpusError> {
        let dir = dir.into();
        let manifest = Manifest::read_from(&dir)?;
        let mut by_n: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, g) in manifest.graphs.iter().enumerate() {
            by_n.entry(g.n).or_default().push(i);
        }
        for indices in by_n.values_mut() {
            indices.sort_by_key(|&i| manifest.graphs[i].trial);
        }
        Ok(Corpus {
            inner: Arc::new(Inner {
                dir,
                manifest,
                mode,
                trust_checksums,
                heal,
                by_n,
                // lint: allow(determinism): keyed cache lookup only; the map is never iterated, so order cannot surface
                cache: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.inner.manifest
    }

    /// How this corpus materializes stored graphs.
    pub fn load_mode(&self) -> LoadMode {
        self.inner.mode
    }

    /// `true` if loads skip the per-file payload checksum (see
    /// [`Corpus::open_with_trust`]).
    pub fn trusts_checksums(&self) -> bool {
        self.inner.trust_checksums
    }

    /// `true` if corrupt stored files are quarantined and regenerated
    /// (see [`Corpus::open_healing`]).
    pub fn heals(&self) -> bool {
        self.inner.heal
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// `true` if the corpus stores graphs for requested size `n`.
    pub fn supports_size(&self, n: usize) -> bool {
        self.inner.by_n.contains_key(&n)
    }

    /// Checks that this corpus can back an experiment sweeping `model`
    /// over `sizes`.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Unsupported`] naming the first mismatch
    /// (wrong model, or a size the corpus does not store).
    pub fn check_compatible(&self, model: &str, sizes: &[usize]) -> Result<(), CorpusError> {
        if self.inner.manifest.model != model {
            return Err(CorpusError::Unsupported {
                reason: format!(
                    "corpus stores {:?}, experiment sweeps {model:?} \
                     (rebuild with --model or drop --corpus)",
                    self.inner.manifest.model
                ),
            });
        }
        if let Some(&n) = sizes.iter().find(|n| !self.supports_size(**n)) {
            return Err(CorpusError::Unsupported {
                reason: format!(
                    "size {n} is not in the corpus (stored sizes: {:?})",
                    self.inner.by_n.keys().collect::<Vec<_>>()
                ),
            });
        }
        Ok(())
    }

    /// Loads (and caches) one stored graph: the original of entry
    /// `graph_idx`, or — with `variant = Some(v)` — its `v`-th rewired
    /// null model.
    ///
    /// First loads are single-flight per file: concurrent callers block
    /// on that file's slot while exactly one of them decodes (or maps),
    /// and all of them receive the same `Arc` — the "one in-memory copy
    /// per file" contract holds even under a racing first access, and a
    /// mapped file is mapped once, not once per worker. A failed load
    /// leaves the slot empty so a later call can retry.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] for unknown indices, I/O failures, or
    /// corrupt files.
    pub fn load(
        &self,
        graph_idx: usize,
        variant: Option<usize>,
    ) -> Result<Arc<UndirectedCsr>, CorpusError> {
        let entry =
            self.inner
                .manifest
                .graphs
                .get(graph_idx)
                .ok_or_else(|| CorpusError::Unsupported {
                    reason: format!(
                        "graph index {graph_idx} out of range ({} stored)",
                        self.inner.manifest.graphs.len()
                    ),
                })?;
        let file = match variant {
            None => &entry.file,
            Some(v) => {
                &entry
                    .variants
                    .get(v)
                    .ok_or_else(|| CorpusError::Unsupported {
                        reason: format!(
                            "variant {v} of {} not stored ({} variants)",
                            entry.file,
                            entry.variants.len()
                        ),
                    })?
                    .file
            }
        };
        // Take (or create) this file's slot under the map lock, then
        // release the map before any I/O: the slot lock serializes
        // loaders of *this* file only.
        let slot = {
            let mut cache = self.inner.cache.lock().expect("cache lock");
            Arc::clone(cache.entry(file.clone()).or_default())
        };
        let mut loaded = slot.lock().expect("file slot lock");
        if let Some(g) = &*loaded {
            return Ok(Arc::clone(g));
        }
        let path = self.inner.dir.join(file);
        let checksum = if self.inner.trust_checksums {
            nsg::Checksum::Trusted
        } else {
            nsg::Checksum::Check
        };
        let load_once = || match self.inner.mode {
            LoadMode::Heap => nsg::read_graph_file_with(&path, checksum),
            LoadMode::Mmap => nsg::map_graph_file_with(&path, checksum),
        };
        let graph = match load_once() {
            Ok(graph) => graph,
            // One heal attempt per failed load: regenerate from the
            // manifest's provenance, then read the repaired file.
            Err(e) if self.inner.heal && healable(&e) => {
                self.heal_file(file)?;
                load_once()?
            }
            Err(e) => return Err(e),
        };
        let graph = Arc::new(graph);
        *loaded = Some(Arc::clone(&graph));
        Ok(graph)
    }

    /// A [`GraphSource`] serving the stored originals.
    pub fn source(&self) -> CorpusSource {
        CorpusSource {
            inner: Arc::clone(&self.inner),
            variant: None,
        }
    }

    /// A [`GraphSource`] serving rewired variant `v` of every graph.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Unsupported`] if the corpus stores fewer
    /// than `v + 1` variants per graph.
    pub fn variant_source(&self, v: usize) -> Result<CorpusSource, CorpusError> {
        if v >= self.inner.manifest.variants {
            return Err(CorpusError::Unsupported {
                reason: format!(
                    "variant {v} not stored (corpus has {} per graph)",
                    self.inner.manifest.variants
                ),
            });
        }
        Ok(CorpusSource {
            inner: Arc::clone(&self.inner),
            variant: Some(v),
        })
    }

    /// Re-reads every stored file, checking manifest checksums, header
    /// checksums, CSR structural consistency, and the manifest's
    /// node/edge counts. With [`LoadMode::Mmap`] the files are mapped
    /// and validated through the zero-copy path, proving exactly the
    /// machinery experiments will use. On a healing corpus
    /// ([`Corpus::open_healing`], `corpus verify --heal`) each corrupt
    /// file is quarantined, regenerated, and re-verified in place, and
    /// the report counts the repairs.
    ///
    /// # Errors
    ///
    /// Returns the first violation found (non-healing), or the first
    /// violation that regeneration could not repair.
    pub fn verify(&self) -> Result<VerifyReport, CorpusError> {
        let mut report = VerifyReport {
            files: 0,
            bytes: 0,
            mode: self.inner.mode,
            healed: 0,
            quarantined: 0,
        };
        for entry in &self.inner.manifest.graphs {
            let checks = std::iter::once((&entry.file, entry.checksum))
                .chain(entry.variants.iter().map(|v| (&v.file, v.checksum)));
            for (file, expected) in checks {
                let len = match self.verify_file(file, expected, entry.nodes, entry.edges) {
                    Ok(len) => len,
                    Err(e) if self.inner.heal && healable(&e) => {
                        if self.heal_file(file)? {
                            report.quarantined += 1;
                        }
                        report.healed += 1;
                        // The regenerated file must pass outright now.
                        self.verify_file(file, expected, entry.nodes, entry.edges)?
                    }
                    Err(e) => return Err(e),
                };
                report.files += 1;
                report.bytes += len as u64;
            }
        }
        Ok(report)
    }

    /// One file's verify pass: manifest checksum over every byte, then
    /// a structural decode, then the manifest's node/edge counts.
    /// Returns the file length.
    fn verify_file(
        &self,
        file: &str,
        expected: u64,
        nodes: usize,
        edges: usize,
    ) -> Result<usize, CorpusError> {
        let path = self.inner.dir.join(file);
        let region: Arc<dyn CsrBytes> = match self.inner.mode {
            LoadMode::Heap => {
                Arc::new(std::fs::read(&path).map_err(|e| CorpusError::io(&path, e))?)
            }
            LoadMode::Mmap => Arc::new(MappedFile::open(&path)?),
        };
        let bytes = region.bytes();
        let actual = nsg::fnv1a64(bytes);
        if actual != expected {
            return Err(CorpusError::Checksum {
                path,
                expected,
                actual,
            });
        }
        let len = bytes.len();
        // The manifest checksum above covered every byte of the file
        // (header included), so the structural pass can trust the bytes
        // instead of FNV-hashing the payload a second time — verify
        // stays one read + one hash per file.
        let graph = match self.inner.mode {
            LoadMode::Heap => nsg::decode_graph_inner(bytes, nsg::Checksum::Trusted)?,
            LoadMode::Mmap => {
                nsg::graph_from_region_inner(Arc::clone(&region), nsg::Checksum::Trusted)?
            }
        };
        if graph.node_count() != nodes || graph.edge_count() != edges {
            return Err(CorpusError::format(format!(
                "{file}: graph is {}v/{}e but the manifest says {nodes}v/{edges}e",
                graph.node_count(),
                graph.edge_count(),
            )));
        }
        Ok(len)
    }

    /// Quarantines the corrupt stored `file` (if it still exists) and
    /// regenerates it from the manifest's provenance: the model spec is
    /// re-parsed, the graph re-sampled from the exact `(seed, size_idx,
    /// trial)` seed streams the builder derives, variants re-rewired
    /// from their recorded swap chain — so the healed bytes are
    /// **identical** to the originals and re-hash to the manifest
    /// checksum. Returns `true` if a corrupt blob was moved to
    /// `quarantine/` (false when the file was missing outright).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Unsupported`] for files the manifest does
    /// not index, [`CorpusError::Checksum`] if the regenerated bytes
    /// still mismatch the manifest (corrupt *manifest*, changed
    /// generator), and I/O errors once the bounded write retries are
    /// exhausted.
    fn heal_file(&self, file: &str) -> Result<bool, CorpusError> {
        let manifest = &self.inner.manifest;
        let mut found = None;
        'graphs: for entry in &manifest.graphs {
            if entry.file == file {
                found = Some((entry, None, entry.checksum));
                break;
            }
            for (v, variant) in entry.variants.iter().enumerate() {
                if variant.file == file {
                    found = Some((entry, Some(v), variant.checksum));
                    break 'graphs;
                }
            }
        }
        let Some((entry, variant, expected)) = found else {
            return Err(CorpusError::Unsupported {
                reason: format!("{file} is not in the manifest, so it cannot be regenerated"),
            });
        };

        let path = self.inner.dir.join(file);
        let quarantined = quarantine(&self.inner.dir, &path)?;

        // The builder's derivation, replayed for one file: stream
        // (size_idx, trial) off the manifest's root seed, child 0 for
        // the original sample, subsequence(1)/child v for variant v.
        let model = parse_model(&manifest.model_spec)?;
        let root = SeedSequence::new(manifest.seed);
        let trial_seeds = root
            .subsequence(entry.size_idx as u64)
            .subsequence(entry.trial as u64);
        let graph = model.sample_graph(entry.n, &mut trial_seeds.child_rng(0));
        let graph = match variant {
            None => graph,
            Some(v) => {
                let mut rng = trial_seeds.subsequence(1).child_rng(v as u64);
                degree_preserving_rewire(&graph, manifest.swaps_per_edge, &mut rng)?.0
            }
        };
        let actual = write_with_retry(&path, &graph)?;
        if actual != expected {
            return Err(CorpusError::Checksum {
                path,
                expected,
                actual,
            });
        }
        // Drop any cached load slot for the healed file so the next
        // access reads the regenerated bytes.
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(file);
        Ok(quarantined)
    }
}

/// `true` for failures healing can repair by regenerating the file:
/// corruption (checksum or structure) and I/O (missing or unreadable
/// blobs). Manifest and model-spec failures stay fatal — there is no
/// provenance left to regenerate from.
fn healable(e: &CorpusError) -> bool {
    matches!(
        e,
        CorpusError::Checksum { .. } | CorpusError::Format { .. } | CorpusError::Io { .. }
    )
}

/// Moves a corrupt blob into `<dir>/quarantine/<basename>`, creating
/// the directory on first use. A missing blob quarantines nothing and
/// is not an error (the corruption may have been a deletion).
fn quarantine(dir: &Path, path: &Path) -> Result<bool, CorpusError> {
    if !path.exists() {
        return Ok(false);
    }
    let qdir = dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&qdir).map_err(|e| CorpusError::io(&qdir, e))?;
    let name = path
        .file_name()
        .ok_or_else(|| CorpusError::format(format!("{} has no file name", path.display())))?;
    std::fs::rename(path, qdir.join(name)).map_err(|e| CorpusError::io(path, e))?;
    Ok(true)
}

/// Writes the regenerated graph with bounded retry/backoff, so a
/// transiently failing filesystem does not abort a heal that would
/// succeed a few milliseconds later. Only I/O errors retry; encoding
/// errors are deterministic and fail immediately.
fn write_with_retry(path: &Path, graph: &UndirectedCsr) -> Result<u64, CorpusError> {
    let mut backoff = Duration::from_millis(5);
    let mut last_io = None;
    for _ in 0..HEAL_WRITE_ATTEMPTS {
        match nsg::write_graph_file(path, graph) {
            Ok(checksum) => return Ok(checksum),
            Err(e @ CorpusError::Io { .. }) => {
                last_io = Some(e);
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_io.expect("the retry loop only exits after recording an I/O error"))
}

/// A corpus-backed [`GraphSource`]: trial `t` at size `n` is served the
/// stored graph `t % stored_trials` of that size.
#[derive(Clone)]
pub struct CorpusSource {
    inner: Arc<Inner>,
    variant: Option<usize>,
}

impl GraphSource for CorpusSource {
    /// # Panics
    ///
    /// Panics if the corpus stores no graphs for `n` or a stored file is
    /// unreadable — experiments validate compatibility up front via
    /// [`Corpus::check_compatible`], so this only fires on corpora
    /// modified mid-run.
    fn trial_graph(&self, n: usize, trial: usize, _seeds: &SeedSequence) -> Arc<UndirectedCsr> {
        let corpus = Corpus {
            inner: Arc::clone(&self.inner),
        };
        let indices = self.inner.by_n.get(&n).unwrap_or_else(|| {
            panic!(
                "corpus {} stores no graphs of size {n}",
                self.inner.dir.display()
            )
        });
        let graph_idx = indices[trial % indices.len()];
        corpus
            .load(graph_idx, self.variant)
            .unwrap_or_else(|e| panic!("corpus {}: {e}", self.inner.dir.display()))
    }

    fn describe(&self) -> String {
        let mode = match (self.inner.mode, self.inner.trust_checksums) {
            (LoadMode::Heap, false) => "",
            (LoadMode::Heap, true) => " (trusted)",
            (LoadMode::Mmap, false) => " (mmap)",
            (LoadMode::Mmap, true) => " (mmap, trusted)",
        };
        match self.variant {
            None => format!("corpus:{}{mode}", self.inner.dir.display()),
            Some(v) => format!("corpus:{}#v{v}{mode}", self.inner.dir.display()),
        }
    }

    /// Trial graphs come from stored `.nsg` files, so phase timers
    /// attribute fetch time to `load`, not `generate`.
    fn is_stored(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildSpec};

    fn built_corpus(tag: &str) -> (PathBuf, Corpus) {
        let dir = std::env::temp_dir().join(format!("corpus_store_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = BuildSpec {
            model_spec: "mori:p=0.6,m=1".into(),
            seed: 11,
            sizes: vec![32, 64],
            trials: 2,
            variants: 1,
            swaps_per_edge: 4,
            threads: 1,
        };
        build(&dir, &spec).unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        (dir, corpus)
    }

    #[test]
    fn open_indexes_sizes_and_serves_round_robin() {
        let (dir, corpus) = built_corpus("roundrobin");
        assert!(corpus.supports_size(32));
        assert!(corpus.supports_size(64));
        assert!(!corpus.supports_size(128));

        let source = corpus.source();
        let seeds = SeedSequence::new(0);
        let t0 = source.trial_graph(32, 0, &seeds);
        let t1 = source.trial_graph(32, 1, &seeds);
        let t2 = source.trial_graph(32, 2, &seeds); // wraps to trial 0
        assert_ne!(t0, t1);
        assert_eq!(t0, t2);
        assert!(Arc::ptr_eq(&t0, &t2), "cache shares one instance");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn variant_source_serves_rewired_graphs() {
        let (dir, corpus) = built_corpus("variants");
        let seeds = SeedSequence::new(0);
        let original = corpus.source().trial_graph(64, 0, &seeds);
        let null = corpus.variant_source(0).unwrap().trial_graph(64, 0, &seeds);
        assert_eq!(
            nonsearch_graph::degree_sequence(&original),
            nonsearch_graph::degree_sequence(&null)
        );
        assert!(corpus.variant_source(1).is_err());
        assert!(corpus.source().describe().starts_with("corpus:"));
        assert!(corpus.variant_source(0).unwrap().describe().contains("#v0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compatibility_checks_name_the_mismatch() {
        let (dir, corpus) = built_corpus("compat");
        assert!(corpus
            .check_compatible("mori(p=0.6,m=1)", &[32, 64])
            .is_ok());
        let err = corpus
            .check_compatible("mori(p=0.2,m=1)", &[32])
            .unwrap_err();
        assert!(err.to_string().contains("p=0.2"));
        let err = corpus
            .check_compatible("mori(p=0.6,m=1)", &[32, 999])
            .unwrap_err();
        assert!(err.to_string().contains("999"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_passes_then_catches_tampering() {
        let (dir, corpus) = built_corpus("verify");
        let report = corpus.verify().unwrap();
        assert_eq!(report.files, corpus.manifest().file_count());
        assert!(report.bytes > 0);

        // Flip one payload byte of one stored file.
        let victim = dir.join(&corpus.manifest().graphs[0].file);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        let fresh = Corpus::open(&dir).unwrap();
        assert!(fresh.verify().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_mode_serves_identical_graphs() {
        let _serial = crate::mmap::backing_test_lock();
        let (dir, heap) = built_corpus("mmap_identity");
        let mapped = Corpus::open_with(&dir, LoadMode::Mmap).unwrap();
        assert_eq!(mapped.load_mode(), LoadMode::Mmap);
        assert_eq!(heap.load_mode(), LoadMode::Heap);

        let seeds = SeedSequence::new(0);
        for n in [32usize, 64] {
            for trial in 0..2 {
                let a = heap.source().trial_graph(n, trial, &seeds);
                let b = mapped.source().trial_graph(n, trial, &seeds);
                assert_eq!(*a, *b, "n={n} trial={trial}");
                assert!(!a.is_borrowed());
                if nonsearch_graph::zero_copy_support().is_ok() {
                    assert!(b.is_borrowed(), "mmap mode must serve borrowed views");
                }
            }
            let a = heap.variant_source(0).unwrap().trial_graph(n, 0, &seeds);
            let b = mapped.variant_source(0).unwrap().trial_graph(n, 0, &seeds);
            assert_eq!(*a, *b, "variant graphs agree at n={n}");
        }
        assert!(mapped.source().describe().contains("(mmap)"));
        assert!(!heap.source().describe().contains("(mmap)"));

        // Verify exercises the mapped validation path.
        let report = mapped.verify().unwrap();
        assert_eq!(report.files, mapped.manifest().file_count());
        assert_eq!(report.mode, LoadMode::Mmap);

        // Tampering is caught through the mapped path too.
        let victim = dir.join(&mapped.manifest().graphs[0].file);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        assert!(Corpus::open_with(&dir, LoadMode::Mmap)
            .unwrap()
            .verify()
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn first_load_is_single_flight() {
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let (dir, _) = built_corpus(match mode {
                LoadMode::Heap => "flight_heap",
                LoadMode::Mmap => "flight_mmap",
            });
            let corpus = Corpus::open_with(&dir, mode).unwrap();
            // Race many first loads of the same file; every caller must
            // receive the *same* Arc (one decode, one mapping) — the old
            // check-then-insert cache could hand out distinct copies.
            let barrier = std::sync::Barrier::new(8);
            let graphs: Vec<Arc<UndirectedCsr>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        let corpus = corpus.clone();
                        let barrier = &barrier;
                        scope.spawn(move || {
                            barrier.wait();
                            corpus.load(0, None).unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for g in &graphs[1..] {
                assert!(
                    Arc::ptr_eq(&graphs[0], g),
                    "{mode:?}: racing first loads must share one copy"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn failed_load_leaves_the_slot_retryable() {
        let (dir, _) = built_corpus("retry");
        let corpus = Corpus::open_with(&dir, LoadMode::Heap).unwrap();
        let file = corpus.manifest().graphs[0].file.clone();
        let path = dir.join(&file);
        let good = std::fs::read(&path).unwrap();

        // Corrupt the file: the load fails cleanly…
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(corpus.load(0, None).is_err());

        // …and once repaired, the same corpus can load it (the failed
        // first flight did not wedge or poison the slot).
        std::fs::write(&path, &good).unwrap();
        assert!(corpus.load(0, None).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trusted_loads_skip_only_the_payload_hash() {
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let (dir, _) = built_corpus(match mode {
                LoadMode::Heap => "trust_heap",
                LoadMode::Mmap => "trust_mmap",
            });
            // Trusted and checked loads serve identical graphs.
            let checked = Corpus::open_with(&dir, mode).unwrap();
            let trusted = Corpus::open_with_trust(&dir, mode, true).unwrap();
            assert!(trusted.trusts_checksums());
            assert!(!checked.trusts_checksums());
            assert_eq!(
                *checked.load(0, None).unwrap(),
                *trusted.load(0, None).unwrap()
            );
            assert!(trusted.source().describe().contains("trusted"));

            // Corrupt the *stored header checksum* only: the payload
            // (and CSR structure) stays intact, so a trusted load still
            // succeeds while a checked load refuses.
            let victim = dir.join(&checked.manifest().graphs[0].file);
            let mut bytes = std::fs::read(&victim).unwrap();
            bytes[24] ^= 0xFF; // first byte of the stored FNV checksum
            std::fs::write(&victim, &bytes).unwrap();

            let checked = Corpus::open_with(&dir, mode).unwrap();
            assert!(checked.load(0, None).is_err(), "{mode:?}");
            let trusted = Corpus::open_with_trust(&dir, mode, true).unwrap();
            assert!(trusted.load(0, None).is_ok(), "{mode:?}");
            // `verify` is the integrity authority: it always hashes and
            // catches the tampering even on a trusting corpus.
            assert!(trusted.verify().is_err(), "{mode:?}");

            // Structural corruption still fails even when trusted: only
            // the payload hash is skipped, not validation.
            let mut bytes = std::fs::read(&victim).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF; // clobber an edge-list entry
            std::fs::write(&victim, &bytes).unwrap();
            let trusted = Corpus::open_with_trust(&dir, mode, true).unwrap();
            assert!(trusted.load(0, None).is_err(), "{mode:?}");

            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn healing_verify_quarantines_and_regenerates_byte_identical_files() {
        let (dir, plain) = built_corpus("heal_verify");
        assert!(!plain.heals());
        let victim_rel = plain.manifest().graphs[0].file.clone();
        let victim = dir.join(&victim_rel);
        let original = std::fs::read(&victim).unwrap();

        // Flip one payload bit.
        let mut corrupt = original.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x10;
        std::fs::write(&victim, &corrupt).unwrap();

        // Without healing the corruption is fatal; with healing the
        // verify repairs it and reports the repair.
        assert!(plain.verify().is_err());
        let healing = Corpus::open_healing(&dir, LoadMode::Heap, false, true).unwrap();
        assert!(healing.heals());
        let report = healing.verify().unwrap();
        assert_eq!(report.files, healing.manifest().file_count());
        assert_eq!(report.healed, 1);
        assert_eq!(report.quarantined, 1);

        // The regenerated bytes are identical to the originals, the
        // corrupt blob sits in quarantine, and a fresh non-healing
        // corpus passes verify against the untouched manifest.
        assert_eq!(std::fs::read(&victim).unwrap(), original);
        let basename = victim.file_name().unwrap();
        let parked = dir.join(QUARANTINE_DIR).join(basename);
        assert_eq!(std::fs::read(&parked).unwrap(), corrupt);
        let report = Corpus::open(&dir).unwrap().verify().unwrap();
        assert_eq!(report.healed, 0);
        assert_eq!(report.quarantined, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn healing_verify_restores_deleted_files_without_quarantining() {
        let (dir, _) = built_corpus("heal_missing");
        let healing = Corpus::open_healing(&dir, LoadMode::Heap, false, true).unwrap();
        // Delete one original and one variant outright.
        let entry = healing.manifest().graphs[1].clone();
        std::fs::remove_file(dir.join(&entry.file)).unwrap();
        std::fs::remove_file(dir.join(&entry.variants[0].file)).unwrap();

        let report = healing.verify().unwrap();
        assert_eq!(report.healed, 2);
        assert_eq!(report.quarantined, 0, "nothing to park for deletions");
        assert_eq!(report.files, healing.manifest().file_count());
        assert!(Corpus::open(&dir).unwrap().verify().is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn healing_load_repairs_the_file_it_was_asked_for() {
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let (dir, _) = built_corpus(match mode {
                LoadMode::Heap => "heal_load_heap",
                LoadMode::Mmap => "heal_load_mmap",
            });
            let clean = Corpus::open_with(&dir, mode).unwrap();
            let victim = dir.join(&clean.manifest().graphs[0].file);
            // An owned decode, not a mapped view: the corruption below
            // rewrites the file, which a live mapping would observe.
            let expected = nsg::read_graph_file(&victim).unwrap();

            // Truncate the stored file mid-payload.
            let bytes = std::fs::read(&victim).unwrap();
            std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
            assert!(Corpus::open_with(&dir, mode)
                .unwrap()
                .load(0, None)
                .is_err());

            let healing = Corpus::open_healing(&dir, mode, false, true).unwrap();
            let healed = healing.load(0, None).unwrap();
            assert_eq!(*healed, expected, "{mode:?}: healed graph differs");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn healing_regenerates_variants_through_the_recorded_swap_chain() {
        let (dir, plain) = built_corpus("heal_variant");
        let vfile = plain.manifest().graphs[0].variants[0].file.clone();
        let vpath = dir.join(&vfile);
        let original = std::fs::read(&vpath).unwrap();
        std::fs::write(&vpath, b"NSG1 but not really").unwrap();

        let healing = Corpus::open_healing(&dir, LoadMode::Heap, false, true).unwrap();
        let report = healing.verify().unwrap();
        assert_eq!(report.healed, 1);
        assert_eq!(std::fs::read(&vpath).unwrap(), original);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn files_outside_the_manifest_cannot_be_healed() {
        let (dir, _) = built_corpus("heal_unknown");
        let healing = Corpus::open_healing(&dir, LoadMode::Heap, false, true).unwrap();
        let err = healing.heal_file("graphs/s9999_t9999.nsg").unwrap_err();
        assert!(err.to_string().contains("cannot be regenerated"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("corpus_none_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        assert!(Corpus::open(&dir).is_err());
    }
}
