//! Vertex permutations and their action on graphs (Definition 1).

use nonsearch_graph::{NodeId, UndirectedCsr};
use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation `σ` of the vertex set `[[1, n]]`.
///
/// `σ(G)` "is obtained by applying permutation σ on the vertices of G"
/// (Definition 1): every edge `(u, v)` becomes `(σ(u), σ(v))`.
///
/// # Example
///
/// ```
/// use nonsearch_core::Permutation;
/// use nonsearch_graph::{NodeId, UndirectedCsr};
///
/// let g = UndirectedCsr::from_edges(3, [(0, 1)])?;
/// let sigma = Permutation::transposition(3, NodeId::new(1), NodeId::new(2));
/// let h = sigma.apply_to_graph(&g);
/// // The edge 0–1 became 0–2.
/// assert!(h.is_adjacent(NodeId::new(0), NodeId::new(2)));
/// assert!(!h.is_adjacent(NodeId::new(0), NodeId::new(1)));
/// # Ok::<(), nonsearch_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Permutation {
        Permutation {
            map: (0..n as u32).collect(),
        }
    }

    /// The transposition swapping `u` and `v` on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn transposition(n: usize, u: NodeId, v: NodeId) -> Permutation {
        assert!(u.index() < n && v.index() < n, "transposition out of range");
        let mut p = Permutation::identity(n);
        p.map.swap(u.index(), v.index());
        p
    }

    /// Builds a permutation from an explicit image vector
    /// (`map[i]` is the image of vertex `i`).
    ///
    /// Returns `None` if `map` is not a bijection on `0..map.len()`.
    pub fn from_images(map: Vec<usize>) -> Option<Permutation> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &img in &map {
            if img >= n || seen[img] {
                return None;
            }
            seen[img] = true;
        }
        Some(Permutation {
            map: map.into_iter().map(|x| x as u32).collect(),
        })
    }

    /// A permutation fixing everything outside `window` and applying a
    /// uniformly random shuffle inside it.
    ///
    /// # Panics
    ///
    /// Panics if any window vertex is out of range.
    pub fn random_window_shuffle<R: Rng + ?Sized>(
        n: usize,
        window: &[NodeId],
        rng: &mut R,
    ) -> Permutation {
        let mut p = Permutation::identity(n);
        let mut images: Vec<u32> = window
            .iter()
            .map(|v| {
                assert!(v.index() < n, "window vertex out of range");
                v.index() as u32
            })
            .collect();
        images.shuffle(rng);
        for (slot, &v) in window.iter().enumerate() {
            p.map[v.index()] = images[slot];
        }
        p
    }

    /// Number of vertices the permutation acts on.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The image `σ(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn image(&self, v: NodeId) -> NodeId {
        NodeId::new(self.map[v.index()] as usize)
    }

    /// The inverse permutation `σ⁻¹`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.map.len()];
        for (i, &img) in self.map.iter().enumerate() {
            inv[img as usize] = i as u32;
        }
        Permutation { map: inv }
    }

    /// The composition `self ∘ other` (apply `other` first).
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "composition size mismatch");
        Permutation {
            map: other
                .map
                .iter()
                .map(|&mid| self.map[mid as usize])
                .collect(),
        }
    }

    /// `true` if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &img)| i as u32 == img)
    }

    /// Applies `σ` to a graph: `σ(G)` (Definition 1). Edge ids are
    /// preserved in order.
    ///
    /// # Panics
    ///
    /// Panics if the permutation size differs from the vertex count.
    pub fn apply_to_graph(&self, graph: &UndirectedCsr) -> UndirectedCsr {
        assert_eq!(self.len(), graph.node_count(), "permutation size mismatch");
        let edges = graph
            .edges()
            .map(|(_, (u, v))| (self.image(u).index(), self.image(v).index()));
        UndirectedCsr::from_edges(graph.node_count(), edges)
            .expect("permuted endpoints are in range")
    }

    /// Applies `σ` to a father assignment (tree models): vertex `k`'s
    /// father list entry moves to `σ(k)` with value `σ(father)`.
    ///
    /// `fathers[i]` is the father label of the vertex with label `i + 2`
    /// (the root has none). Returns the permuted assignment in the same
    /// layout.
    ///
    /// # Panics
    ///
    /// Panics if the permutation does not fix label ordering prerequisites,
    /// i.e. if a permuted child would precede its father — callers should
    /// only permute equivalence windows conditional on the event, where
    /// fathers stay at or below the anchor.
    pub fn apply_to_fathers(&self, fathers: &[usize]) -> Vec<usize> {
        let n = fathers.len() + 1;
        assert_eq!(self.len(), n, "permutation size mismatch");
        let mut out = vec![0usize; fathers.len()];
        for (i, &f) in fathers.iter().enumerate() {
            let child = NodeId::from_label(i + 2);
            let new_child = self.image(child);
            let new_father = self.image(NodeId::from_label(f));
            assert!(
                new_father.label() < new_child.label(),
                "permutation breaks arrival order: father {new_father:?} ≥ child {new_child:?}"
            );
            out[new_child.label() - 2] = new_father.label();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_acts_trivially() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let id = Permutation::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.apply_to_graph(&g), g);
    }

    #[test]
    fn transposition_is_an_involution() {
        let t = Permutation::transposition(5, NodeId::new(1), NodeId::new(3));
        assert!(t.compose(&t).is_identity());
        assert_eq!(t.inverse(), t);
    }

    #[test]
    fn from_images_validates() {
        assert!(Permutation::from_images(vec![1, 0, 2]).is_some());
        assert!(Permutation::from_images(vec![1, 1, 2]).is_none());
        assert!(Permutation::from_images(vec![3, 0, 1]).is_none());
    }

    #[test]
    fn compose_and_inverse_satisfy_group_laws() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let window: Vec<NodeId> = (2..8).map(NodeId::new).collect();
        let a = Permutation::random_window_shuffle(10, &window, &mut rng);
        let b = Permutation::random_window_shuffle(10, &window, &mut rng);
        // (a∘b)⁻¹ = b⁻¹∘a⁻¹
        let left = a.compose(&b).inverse();
        let right = b.inverse().compose(&a.inverse());
        assert_eq!(left, right);
        // a∘a⁻¹ = id
        assert!(a.compose(&a.inverse()).is_identity());
    }

    #[test]
    fn window_shuffle_fixes_outside() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let window: Vec<NodeId> = (5..9).map(NodeId::new).collect();
        let p = Permutation::random_window_shuffle(12, &window, &mut rng);
        for i in (0..5).chain(9..12) {
            assert_eq!(p.image(NodeId::new(i)), NodeId::new(i));
        }
        // Window images stay inside the window.
        for i in 5..9 {
            let img = p.image(NodeId::new(i)).index();
            assert!((5..9).contains(&img));
        }
    }

    #[test]
    fn graph_action_preserves_structure() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = Permutation::from_images(vec![3, 2, 1, 0]).unwrap();
        let h = p.apply_to_graph(&g);
        assert_eq!(h.edge_count(), 3);
        // Path reversed is still the same path as a labelled edge set.
        assert!(h.is_adjacent(NodeId::new(3), NodeId::new(2)));
        assert!(h.is_adjacent(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn father_action_on_window() {
        // Tree 1←2, 1←3, 2←4 (fathers of 2,3,4 are 1,1,2); swap 3 and 4.
        let sigma = Permutation::transposition(4, NodeId::from_label(3), NodeId::from_label(4));
        let out = sigma.apply_to_fathers(&[1, 1, 2]);
        // New: vertex 3's father = old vertex 4's father = 2;
        //      vertex 4's father = old vertex 3's father = 1.
        assert_eq!(out, vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn father_action_rejects_order_violations() {
        // Swapping 2 and 3 when 3's father is 2 breaks arrival order.
        let sigma = Permutation::transposition(3, NodeId::from_label(2), NodeId::from_label(3));
        let _ = sigma.apply_to_fathers(&[1, 2]);
    }
}
