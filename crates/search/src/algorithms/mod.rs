//! The search algorithm suite.
//!
//! Weak-model searchers ([`WeakSearcher`](crate::WeakSearcher)):
//!
//! * [`RandomWalk`] — the pure random walk of Adamic et al.
//! * [`AvoidingWalk`] — a walk preferring unexplored edges.
//! * [`BfsFlood`] / [`DfsWalk`] — exhaustive frontier expansions.
//! * [`HighDegreeGreedy`] — Adamic et al.'s degree-seeking strategy.
//! * [`GreedyIdProximity`] — exploit identity labels (ages) greedily.
//! * [`OldestFirst`] — head for the oldest (core) vertices first.
//!
//! Strong-model searchers ([`StrongSearcher`](crate::StrongSearcher)):
//! [`StrongBfs`], [`StrongHighDegree`], [`StrongGreedyId`].
//!
//! Two related-work protocols with *different* knowledge models live
//! here as standalone functions: [`greedy_route`] (Kleinberg's lattice
//! greedy routing, which knows coordinates) and [`percolation_search`]
//! (Sarshar et al.'s replication + bond-percolation broadcast).

mod flood;
mod greedy_id;
mod high_degree;
mod kleinberg_greedy;
mod lookahead;
mod percolation;
mod strong_greedy;
mod walks;

pub use flood::{BfsFlood, DfsWalk};
pub use greedy_id::{GreedyIdProximity, OldestFirst};
pub use high_degree::HighDegreeGreedy;
pub use kleinberg_greedy::{greedy_route, GreedyRouteOutcome};
pub use lookahead::{LookaheadWalk, RestartingWalk};
pub use percolation::{
    percolation_search, percolation_search_in, PercolationConfig, PercolationOutcome,
    PercolationScratch,
};
pub use strong_greedy::{StrongBfs, StrongGreedyId, StrongHighDegree};
pub use walks::{AvoidingWalk, RandomWalk};
