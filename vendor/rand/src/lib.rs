//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact trait surface its crates use: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Semantics follow the upstream crate closely enough for this project's
//! needs: integer ranges sample uniformly via rejection-free 128-bit
//! multiply-shift, floats use the 53-bit mantissa construction, and
//! `seed_from_u64` stretches the seed with SplitMix64, so streams are
//! stable across platforms. **Output values do not match upstream
//! `rand`** (which stretches seeds with a PCG32 step and samples ranges
//! differently); only the API matches. Swapping the real crates back in
//! changes every seeded stream — see README "Offline dependency stubs".

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (always infallible here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A random number generator seedable from fixed-size byte seeds.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, stretching it through SplitMix64
    /// (xorshift* finalizer).
    ///
    /// Upstream `rand` 0.8 stretches seeds with a PCG32 step instead, so
    /// the key material this produces differs from upstream for every
    /// seed — streams are stable within this workspace, not across the
    /// stub/real-crate boundary.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 0x2545_F491_4F6C_DD1D;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = (z ^ (z >> 31)).wrapping_mul(MUL);
            let bytes = (z >> 32) as u32 ^ z as u32;
            let bytes = bytes.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Minimal distribution machinery backing [`Rng::gen`](crate::Rng::gen).

    use crate::RngCore;

    /// Types that can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for primitives: full-range uniform for
    /// integers, `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 mantissa bits, uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift: floor(next_u64 * span / 2^64) is uniform
                // enough for span << 2^64 (bias < span / 2^64).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against FP rounding landing exactly on `end`.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Samples a value from `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use crate::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
