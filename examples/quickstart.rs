//! Quickstart: sample a Móri graph, search for its newest vertex, and
//! compare the measured cost with the paper's Theorem 1 lower bound.
//!
//! Run with: `cargo run --release --example quickstart`

use nonsearch::core::{theorem1_weak_bound, EquivalenceWindow};
use nonsearch::generators::{rng_from_seed, MergedMori};
use nonsearch::graph::{NodeId, StructuralSummary};
use nonsearch::search::{run_weak, SearchTask, SearcherKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8192;
    let p = 0.5;
    let m = 2;
    let mut rng = rng_from_seed(2007);

    println!("sampling merged Móri graph: n = {n}, p = {p}, m = {m}");
    let mori = MergedMori::sample(n, m, p, &mut rng)?;
    let graph = mori.undirected();
    println!("  {}", StructuralSummary::of(&graph));

    // The searcher starts at the oldest vertex (the best-connected hub)
    // and must find the newest vertex n, knowing only what the weak
    // oracle reveals.
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(50 * n);

    println!("\nsearching for vertex {n} in the weak model:");
    let mut best: Option<(&str, usize)> = None;
    for kind in SearcherKind::all() {
        let mut searcher = kind.build();
        let outcome = run_weak(&graph, &task, &mut *searcher, &mut rng)?;
        println!(
            "  {:>24}: {:>8} requests ({})",
            kind.name(),
            outcome.requests,
            if outcome.found { "found" } else { "not found" }
        );
        if outcome.found && best.is_none_or(|(_, r)| outcome.requests < r) {
            best = Some((kind.name(), outcome.requests));
        }
    }

    let window = EquivalenceWindow::for_target(n);
    let bound = theorem1_weak_bound(n, p)?;
    println!("\nTheorem 1 machinery:");
    println!(
        "  equivalence window [[{}, {}]] has {} indistinguishable vertices",
        window.a() + 1,
        window.b(),
        window.len()
    );
    println!("  lower bound |V|·P(E)/2 = {bound:.1} expected requests");
    if let Some((name, requests)) = best {
        println!("  best observed: {requests} requests by {name}");
        println!(
            "  → even the best local searcher pays ≥ the Ω(√n) bound ({})",
            if (requests as f64) >= bound {
                "consistent"
            } else {
                "VIOLATION?"
            }
        );
    }
    Ok(())
}
