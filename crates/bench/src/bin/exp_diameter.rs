//! E9 — the contrast: diameters and average distances stay logarithmic
//! while search cost is polynomial (paper §conclusion).

use nonsearch_analysis::{
    average_distance, diameter_lower_bound_double_sweep, fit_linear, SampleStats, Table,
};
use nonsearch_bench::{banner, sweep, trials};
use nonsearch_core::{BarabasiAlbertModel, CooperFriezeModel, GraphModel, MergedMoriModel};
use nonsearch_generators::SeedSequence;
use nonsearch_graph::NodeId;

fn main() {
    banner(
        "E9 / logarithmic distances",
        "avg distance & diameter grow like log n across the evolving models \
         — while Theorem 1/2 search cost grows like √n",
    );

    let sizes = sweep(&[1024, 4096, 16384, 65536]);
    let trial_count = trials(5);
    let seeds = SeedSequence::new(0xE9);

    let models: Vec<(&str, Box<dyn GraphModel>)> = vec![
        (
            "mori(p=0.6,m=2)",
            Box::new(MergedMoriModel { p: 0.6, m: 2 }),
        ),
        (
            "cooper-frieze(α=0.7)",
            Box::new(CooperFriezeModel::balanced(0.7)),
        ),
        (
            "barabasi-albert(m=2)",
            Box::new(BarabasiAlbertModel { m: 2 }),
        ),
    ];

    let mut table = Table::with_columns(&["model", "n", "avg distance", "diam ≥", "avg / log2(n)"]);
    for (mi, (name, model)) in models.iter().enumerate() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (si, &n) in sizes.iter().enumerate() {
            let mut avgs = Vec::new();
            let mut diams = Vec::new();
            for t in 0..trial_count {
                let mut rng = seeds
                    .subsequence(mi as u64)
                    .subsequence(si as u64)
                    .child_rng(t as u64);
                let graph = model.sample_graph(n, &mut rng);
                avgs.push(average_distance(&graph, 8, &mut rng).expect("connected"));
                diams.push(
                    diameter_lower_bound_double_sweep(&graph, NodeId::from_label(1))
                        .expect("connected") as f64,
                );
            }
            let avg = SampleStats::from_slice(&avgs).expect("trials ≥ 1");
            let diam = SampleStats::from_slice(&diams).expect("trials ≥ 1");
            table.row(vec![
                name.to_string(),
                n.to_string(),
                format!("{:.2} ±{:.2}", avg.mean(), avg.ci95_half_width()),
                format!("{:.1}", diam.mean()),
                format!("{:.3}", avg.mean() / (n as f64).log2()),
            ]);
            xs.push((n as f64).ln());
            ys.push(avg.mean());
        }
        if let Some(fit) = fit_linear(&xs, &ys) {
            println!(
                "{name}: avg distance ≈ {:.2}·ln(n) + {:.2} (R² = {:.3})",
                fit.slope, fit.intercept, fit.r_squared
            );
        }
    }
    println!("\n{table}");
    println!("avg/log2(n) stabilizing to a constant = logarithmic growth; the");
    println!("same graphs cost Θ(√n) to search (E1/E3) — the paper's contrast.");
}
