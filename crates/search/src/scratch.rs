//! Reusable per-worker search state: the dense view plus the oracle
//! buffers, reset in O(1) between trials.
//!
//! A Monte-Carlo sweep runs thousands of searches on graphs of one
//! size. Allocating a fresh view (and oracle buffers) per trial made
//! per-request hashing and allocation the hot path's dominant cost;
//! instead, a worker owns one [`SearchScratch`], the `*_in` runners
//! ([`run_weak_in`](crate::run_weak_in),
//! [`run_strong_in`](crate::run_strong_in)) borrow it for the duration
//! of one search, and `begin` resets it by epoch bump — no memory is
//! released or re-acquired once the arrays have grown to the graph
//! size.

use crate::DiscoveredView;
use nonsearch_graph::{NodeId, UndirectedCsr};

/// Reusable buffers for one search at a time: the searcher's
/// [`DiscoveredView`] plus the strong oracle's expansion-order and
/// answer buffers.
///
/// Create one per worker (or per call site) and pass it to
/// [`WeakSearchState::new_in`](crate::WeakSearchState::new_in),
/// [`StrongSearchState::new_in`](crate::StrongSearchState::new_in), or
/// the `*_in` runners. Reuse across trials is observationally
/// identical to fresh state — the engine's trial records are
/// bit-identical either way (asserted by the scratch-reuse tests).
///
/// # Example
///
/// ```
/// use nonsearch_generators::rng_from_seed;
/// use nonsearch_graph::{NodeId, UndirectedCsr};
/// use nonsearch_search::{run_weak_in, BfsFlood, SearchScratch, SearchTask};
///
/// let g = UndirectedCsr::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let task = SearchTask::new(NodeId::new(0), NodeId::new(3));
/// let mut scratch = SearchScratch::new();
/// let mut flood = BfsFlood::new();
/// // Both trials share one allocation; outcomes match fresh-state runs.
/// let a = run_weak_in(&mut scratch, &g, &task, &mut flood, &mut rng_from_seed(1))?;
/// let b = run_weak_in(&mut scratch, &g, &task, &mut flood, &mut rng_from_seed(1))?;
/// assert_eq!(a, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    pub(crate) view: DiscoveredView,
    /// Vertices expanded by a strong-model search, in request order.
    pub(crate) expanded: Vec<NodeId>,
    /// The neighbors revealed by the latest strong request.
    pub(crate) revealed: Vec<NodeId>,
}

impl SearchScratch {
    /// Creates an empty scratch; the arrays grow to the first graph's
    /// size on first use and are reused from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for graphs with `nodes` vertices and
    /// `edges` edges, so even the first search allocates nothing after
    /// construction.
    pub fn for_graph_size(nodes: usize, edges: usize) -> Self {
        let mut scratch = Self::new();
        scratch.view.reserve_graph(nodes, edges);
        scratch
    }

    /// The view as left by the last search (empty before any).
    pub fn view(&self) -> &DiscoveredView {
        &self.view
    }

    /// O(1) reset called by the oracles at search start: epoch-bumps
    /// the view and truncates the buffers, keeping all capacity.
    pub(crate) fn begin(&mut self, graph: &UndirectedCsr) {
        self.view.reset();
        self.view
            .reserve_graph(graph.node_count(), graph.edge_count());
        self.expanded.clear();
        self.revealed.clear();
    }
}

/// A dense set of vertices with O(1) `insert`/`contains`/`clear`,
/// backed by an epoch-stamped array (same trick as
/// [`DiscoveredView`]; see the `discovered` module docs).
///
/// Replaces the `HashSet<NodeId>` bookkeeping in the strong-model
/// searchers and percolation search: membership is one array read, and
/// clearing for the next trial is an epoch bump, not a rehash.
#[derive(Debug, Clone)]
pub struct StampedNodeSet {
    epoch: u32,
    stamp: Vec<u32>,
    len: usize,
}

impl Default for StampedNodeSet {
    fn default() -> Self {
        StampedNodeSet {
            epoch: 1,
            stamp: Vec::new(),
            len: 0,
        }
    }
}

impl StampedNodeSet {
    /// Creates an empty set; the backing array grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `v` is in the set.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.stamp.get(v.index()) == Some(&self.epoch)
    }

    /// Inserts `v`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let i = v.index();
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
        }
        if self.stamp[i] == self.epoch {
            return false;
        }
        self.stamp[i] = self.epoch;
        self.len += 1;
        true
    }

    /// Empties the set in O(1) (epoch bump), keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::NodeId;

    #[test]
    fn stamped_set_behaves_like_a_set() {
        let mut set = StampedNodeSet::new();
        assert!(set.is_empty());
        assert!(set.insert(NodeId::new(5)));
        assert!(!set.insert(NodeId::new(5)));
        assert!(set.insert(NodeId::new(0)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(NodeId::new(5)));
        assert!(!set.contains(NodeId::new(4)));
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(NodeId::new(5)));
        assert!(set.insert(NodeId::new(5)));
    }

    #[test]
    fn stamped_set_epoch_wrap_is_sound() {
        let mut set = StampedNodeSet::new();
        set.insert(NodeId::new(1));
        set.epoch = u32::MAX;
        set.stamp[1] = u32::MAX;
        assert!(set.contains(NodeId::new(1)));
        set.clear();
        assert_eq!(set.epoch, 1);
        assert!(!set.contains(NodeId::new(1)));
    }

    #[test]
    fn scratch_presizing_and_view_access() {
        let scratch = SearchScratch::for_graph_size(16, 32);
        assert!(scratch.view().is_empty());
    }
}
