//! Process resource sampling from `/proc`, with no libc dependency.
//!
//! The container has no network and the workspace vendors no FFI
//! crates, so — in the same hand-rolled spirit as the corpus crate's
//! `mmap(2)` wrapper — peak RSS, page faults, and context switches are
//! read straight out of `/proc/self/status` and `/proc/self/stat` with
//! plain `std::fs` text parsing. On non-Linux targets every field is
//! zero and [`ResourceSample::current`] is an allocation of nothing
//! but honesty.
//!
//! Samples are **process-wide and monotone-ish** (peak RSS never
//! falls; fault and switch counters only grow), so the engine records
//! one per size cell rather than per trial: the per-cell deltas are
//! what a regression reader actually wants, and sampling stays off the
//! allocation-free trial hot path (reading `/proc` allocates).

/// One point-in-time reading of the process's resource counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResourceSample {
    /// Peak resident set size in bytes (`VmHWM`); 0 off Linux.
    pub peak_rss_bytes: u64,
    /// Minor page faults serviced without I/O (`minflt`).
    pub minor_faults: u64,
    /// Major page faults that required I/O (`majflt`).
    pub major_faults: u64,
    /// Voluntary context switches (blocking waits, yields).
    pub voluntary_ctx_switches: u64,
}

impl ResourceSample {
    /// Reads the current process counters. All-zero when `/proc` is
    /// unavailable (non-Linux, or an exotic sandbox).
    pub fn current() -> ResourceSample {
        if cfg!(target_os = "linux") {
            let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
            let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
            ResourceSample::from_proc(&status, &stat)
        } else {
            ResourceSample::default()
        }
    }

    /// Parses the two `/proc` documents; split out for testability
    /// (fields default to 0 when missing or malformed — a resource
    /// sample must never abort a run).
    pub fn from_proc(status: &str, stat: &str) -> ResourceSample {
        ResourceSample {
            peak_rss_bytes: status_kb(status, "VmHWM:").map_or(0, |kb| kb.saturating_mul(1024)),
            minor_faults: stat_field(stat, 7).unwrap_or(0),
            major_faults: stat_field(stat, 9).unwrap_or(0),
            voluntary_ctx_switches: status_u64(status, "voluntary_ctxt_switches:").unwrap_or(0),
        }
    }
}

/// The numeric value of a `Key:\t  N` line in `/proc/self/status`.
fn status_u64(status: &str, key: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|line| line.strip_prefix(key))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|token| token.parse().ok())
}

/// The numeric value of a `Key:\t  N kB` line in `/proc/self/status`.
fn status_kb(status: &str, key: &str) -> Option<u64> {
    status_u64(status, key)
}

/// Zero-based field index into `/proc/self/stat`, counted **after**
/// the `comm` field: `(pid) (comm) state ppid …`. The comm can contain
/// spaces and parentheses, so parsing anchors on the *last* `)` — the
/// kernel guarantees everything after it is space-separated numbers
/// and single-character flags. Index 0 is `state` (stat field 3, one
/// based), so `minflt` (stat field 10) is index 7 and `majflt`
/// (field 12) is index 9.
fn stat_field(stat: &str, index_after_comm: usize) -> Option<u64> {
    let rest = stat.rsplit_once(')').map(|(_, rest)| rest)?;
    rest.split_whitespace()
        .nth(index_after_comm)
        .and_then(|token| token.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATUS: &str = "Name:\tnonsearch\nVmPeak:\t  202348 kB\nVmHWM:\t   51004 kB\n\
                          VmRSS:\t   50892 kB\nThreads:\t5\n\
                          voluntary_ctxt_switches:\t1289\n\
                          nonvoluntary_ctxt_switches:\t44\n";
    // A comm with spaces and a ')' inside — the adversarial case the
    // last-paren anchor exists for. Fields after the comm:
    // state ppid pgrp session tty tpgid flags minflt cminflt majflt …
    const STAT: &str = "4242 (xp bench) suite) R 1 4242 4242 0 -1 4194304 \
                        31415 0 27 0 12 3 0 0 20 0 5 0 100 2072576 12723";

    #[test]
    fn parses_status_fields() {
        let s = ResourceSample::from_proc(STATUS, STAT);
        assert_eq!(s.peak_rss_bytes, 51004 * 1024);
        assert_eq!(s.voluntary_ctx_switches, 1289);
    }

    #[test]
    fn parses_stat_fields_past_a_hostile_comm() {
        let s = ResourceSample::from_proc(STATUS, STAT);
        assert_eq!(s.minor_faults, 31415);
        assert_eq!(s.major_faults, 27);
    }

    #[test]
    fn malformed_documents_fall_back_to_zero() {
        let s = ResourceSample::from_proc("", "");
        assert_eq!(s, ResourceSample::default());
        let s = ResourceSample::from_proc("VmHWM:\tnot-a-number kB\n", "no parens here");
        assert_eq!(s.peak_rss_bytes, 0);
        assert_eq!(s.minor_faults, 0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_sample_reports_nonzero_rss() {
        let s = ResourceSample::current();
        assert!(s.peak_rss_bytes > 0, "{s:?}");
        // Fault counters are monotone: a later sample never shrinks.
        let t = ResourceSample::current();
        assert!(t.minor_faults >= s.minor_faults);
        assert!(t.peak_rss_bytes >= s.peak_rss_bytes);
    }
}
