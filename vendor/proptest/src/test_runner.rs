//! Configuration, case-level errors, and the deterministic test RNG.

use std::ops::Range;

/// Per-suite configuration, set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: smaller than upstream's 256 so full-workspace CI stays
    /// fast; suites override via `with_cases` where they need more.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed; the test fails with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// The stub's internal RNG: SplitMix64, seeded from a hash of the test's
/// fully qualified name.
///
/// This makes every property suite deterministic across runs *and*
/// machines while keeping distinct tests on uncorrelated streams. There
/// is deliberately no time- or entropy-based seeding: reproducibility is
/// a workspace-wide invariant (see the root `determinism` suite).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for the named test (FNV-1a of the name).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output (SplitMix64 finalizer).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi)`; requires `lo < hi` and a span that
    /// fits in `u64`.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        debug_assert!(span <= u64::MAX as u128 + 1);
        let off = ((self.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
        lo + off
    }

    /// Uniform `usize` in `range`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start >= range.end {
            return range.start;
        }
        self.int_in(range.start as i128, range.end as i128) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("x::z");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn int_in_covers_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.int_in(0, 4);
            assert!((0..4).contains(&v));
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }
}
