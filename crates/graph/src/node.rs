//! Strongly typed vertex and edge identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex.
///
/// In the evolving models of the paper, vertex identities are the integers
/// `1..=n` in *arrival order*: `NodeId` with index `i` is the `(i+1)`-th
/// vertex ever inserted. The searcher's goal in the paper is to find the
/// *last* inserted vertex, `NodeId::from_label(n)`.
///
/// Internally zero-based; [`NodeId::label`] exposes the paper's one-based
/// labelling.
///
/// ```
/// use nonsearch_graph::NodeId;
/// let v = NodeId::new(0);
/// assert_eq!(v.label(), 1); // the paper's vertex "1"
/// assert_eq!(NodeId::from_label(7).index(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Creates a node id from the paper's one-based label.
    ///
    /// # Panics
    ///
    /// Panics if `label` is zero or does not fit in `u32`.
    #[inline]
    pub fn from_label(label: usize) -> Self {
        assert!(label >= 1, "labels are one-based");
        NodeId::new(label - 1)
    }

    /// Zero-based index of this vertex (usable as a slice index).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// One-based label, matching the paper's `[[1, n]]` identity range.
    #[inline]
    pub fn label(self) -> usize {
        self.0 as usize + 1
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.label())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Identifier of a directed edge in insertion order.
///
/// Edge ids are dense: the `k`-th inserted edge has id `k` (zero-based).
/// They survive unchanged into the [`UndirectedCsr`](crate::UndirectedCsr)
/// view, which lets provenance data recorded at construction time be joined
/// back to edges seen during a search.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Zero-based index of this edge (usable as a slice index).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<EdgeId> for usize {
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 5, 1000, u32::MAX as usize] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn node_label_is_one_based() {
        assert_eq!(NodeId::new(0).label(), 1);
        assert_eq!(NodeId::from_label(1).index(), 0);
        assert_eq!(NodeId::from_label(42).label(), 42);
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn zero_label_panics() {
        let _ = NodeId::from_label(0);
    }

    #[test]
    fn ordering_follows_arrival() {
        assert!(NodeId::new(3) < NodeId::new(4));
        assert!(NodeId::from_label(1) < NodeId::from_label(2));
    }

    #[test]
    fn debug_display_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(0)), "v1");
        assert_eq!(format!("{}", NodeId::new(0)), "1");
        assert_eq!(format!("{:?}", EdgeId::new(3)), "e3");
        assert_eq!(format!("{}", EdgeId::new(3)), "3");
    }

    #[test]
    fn edge_id_roundtrip() {
        assert_eq!(EdgeId::new(17).index(), 17);
        let u: usize = EdgeId::new(17).into();
        assert_eq!(u, 17);
    }
}
