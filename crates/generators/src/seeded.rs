//! Deterministic, portable random-number streams.
//!
//! Every experiment in this workspace is reproducible from a single `u64`
//! seed. We use ChaCha8 (from `rand_chacha`, the rand project's companion
//! crate) because it is explicitly portable across platforms and rand
//! versions, unlike `StdRng`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG from a `u64` seed.
///
/// ```
/// use nonsearch_generators::rng_from_seed;
/// use rand::Rng;
///
/// let mut a = rng_from_seed(42);
/// let mut b = rng_from_seed(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives independent child seeds from a root seed.
///
/// Experiments that fan out over (model, size, trial) tuples need a
/// distinct, reproducible stream per cell; `SeedSequence` provides them
/// without the correlations of `root + i` seeding (it feeds the pair
/// through SplitMix64-style mixing).
///
/// ```
/// use nonsearch_generators::SeedSequence;
///
/// let seq = SeedSequence::new(7);
/// assert_ne!(seq.child(0), seq.child(1));
/// // Deterministic: the same index always yields the same seed.
/// assert_eq!(seq.child(3), SeedSequence::new(7).child(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the `index`-th child seed.
    pub fn child(&self, index: u64) -> u64 {
        // SplitMix64 finalizer over (root, index); avalanche ensures
        // adjacent indices produce unrelated streams.
        let mut z = self
            .root
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(0x94D0_49BB_1331_11EB);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives a child RNG directly.
    pub fn child_rng(&self, index: u64) -> ChaCha8Rng {
        rng_from_seed(self.child(index))
    }

    /// Derives a nested sequence (e.g. per-model, then per-trial).
    pub fn subsequence(&self, index: u64) -> SeedSequence {
        SeedSequence {
            root: self.child(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(1);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn children_are_distinct() {
        let seq = SeedSequence::new(99);
        let children: HashSet<u64> = (0..1000).map(|i| seq.child(i)).collect();
        assert_eq!(children.len(), 1000);
    }

    #[test]
    fn children_are_deterministic() {
        let a = SeedSequence::new(5);
        let b = SeedSequence::new(5);
        for i in 0..20 {
            assert_eq!(a.child(i), b.child(i));
        }
    }

    #[test]
    fn subsequences_do_not_collide_with_children() {
        let seq = SeedSequence::new(7);
        let sub = seq.subsequence(0);
        let direct: HashSet<u64> = (0..100).map(|i| seq.child(i)).collect();
        let nested: HashSet<u64> = (0..100).map(|i| sub.child(i)).collect();
        // Streams should be essentially disjoint.
        assert!(direct.intersection(&nested).count() <= 1);
    }

    #[test]
    fn child_rng_matches_child_seed() {
        let seq = SeedSequence::new(3);
        let mut via_rng = seq.child_rng(4);
        let mut via_seed = rng_from_seed(seq.child(4));
        assert_eq!(via_rng.gen::<u64>(), via_seed.gen::<u64>());
    }
}
