//! The Móri model of random trees and its merged `m`-out variant.
//!
//! Paper, §1 (Graph models): *"The Móri model `G_t` of random trees
//! starts, at time `t = 2`, with two vertices 1, 2 and a single edge
//! between them; then, at each later time, a new vertex `t` is added,
//! together with a single outgoing edge to an older vertex `u`, selected
//! […] with probability proportional to `p·d_t(u) + (1 − p)`, `d_t(u)`
//! being the indegree of `u` at time `t`. To get the m-out Móri graph of
//! size `n`, `G_t^{(m)}`, take the Móri tree of size `nm` and, for each
//! `1 ≤ i ≤ n`, merge vertices `m(i−1)+1` to `mi` into a new vertex `i`."*

use crate::error::check_probability;
use crate::{
    AttachmentKind, AttachmentRecord, AttachmentTrace, GeneratorError, Result, UrnSampler,
};
use nonsearch_graph::{EvolvingDigraph, NodeId, UndirectedCsr};
use rand::Rng;

/// A sampled Móri tree `G_t` together with its construction provenance.
///
/// The weight of an existing vertex `u` when vertex `t` arrives is
/// `p·d(u) + (1−p)` with `d(u)` the **indegree** of `u` — the paper's
/// rephrasing, which "makes it possible to explore a wider range of
/// parameters" than total-degree preferential attachment.
///
/// Sampling is O(1) per vertex: the weight function is the exact mixture
/// "indegree-proportional with probability `pD/(pD + (1−p)N)`, uniform
/// otherwise" (where `D` is the total indegree and `N` the number of
/// candidates), and indegree-proportional draws come from an
/// [`UrnSampler`] holding one ticket per edge target.
///
/// # Example
///
/// ```
/// use nonsearch_generators::{rng_from_seed, MoriTree};
///
/// let mut rng = rng_from_seed(1);
/// let tree = MoriTree::sample(500, 0.5, &mut rng)?;
/// // Every vertex after the root has exactly one outgoing edge,
/// // pointing to an older vertex.
/// for k in 2..=500 {
///     let father = tree.father_of_label(k).expect("non-root has a father");
///     assert!(father.label() < k);
/// }
/// # Ok::<(), nonsearch_generators::GeneratorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MoriTree {
    digraph: EvolvingDigraph,
    trace: AttachmentTrace,
    p: f64,
}

impl MoriTree {
    /// Samples a Móri tree on `n ≥ 2` vertices with mixing parameter
    /// `p ∈ [0, 1]`.
    ///
    /// `p = 0` degenerates to uniform attachment (a random recursive
    /// tree); `p = 1` is pure indegree-preferential attachment. The
    /// paper's Theorem 1 covers `0 < p ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::TooSmall`] if `n < 2` and
    /// [`GeneratorError::InvalidParameter`] if `p ∉ [0, 1]`.
    pub fn sample<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<MoriTree> {
        check_probability("p", p)?;
        if n < 2 {
            return Err(GeneratorError::TooSmall {
                requested: n,
                minimum: 2,
            });
        }
        let mut digraph = EvolvingDigraph::with_capacity(n, n - 1);
        let mut trace = AttachmentTrace::with_capacity(n - 1);
        let mut urn = UrnSampler::with_capacity(n - 1);

        // Seed: vertices 1, 2 and the edge 2 → 1.
        let v1 = digraph.add_node();
        let v2 = digraph.add_node();
        digraph.add_edge(v2, v1).expect("seed endpoints exist");
        trace.push(AttachmentRecord {
            child: v2,
            father: v1,
            kind: AttachmentKind::Seed,
        });
        urn.push(v1);

        for t in 3..=n {
            let candidates = t - 1; // existing vertices
            let total_indegree = t - 2; // edges so far
                                        // P(preferential component) = pD / (pD + (1−p)N): drawing from
                                        // the urn within that component is ∝ indegree, so the overall
                                        // law is ∝ p·d(u) + (1−p), exactly the paper's weight.
            let pref_mass = p * total_indegree as f64;
            let unif_mass = (1.0 - p) * candidates as f64;
            let threshold = pref_mass / (pref_mass + unif_mass);
            let (father, kind) = if rng.gen::<f64>() < threshold {
                let f = urn.sample(rng).expect("urn non-empty after seed");
                (f, AttachmentKind::Preferential)
            } else {
                (
                    NodeId::new(rng.gen_range(0..candidates)),
                    AttachmentKind::Uniform,
                )
            };
            let child = digraph.add_node();
            digraph.add_edge(child, father).expect("endpoints exist");
            trace.push(AttachmentRecord {
                child,
                father,
                kind,
            });
            urn.push(father);
        }

        Ok(MoriTree { digraph, trace, p })
    }

    /// The mixing parameter `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of vertices `t` of the tree.
    pub fn len(&self) -> usize {
        self.digraph.node_count()
    }

    /// `false`: a sampled tree always has at least two vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying oriented tree (edges point child → father).
    pub fn digraph(&self) -> &EvolvingDigraph {
        &self.digraph
    }

    /// The attachment history (seed edge first).
    pub fn trace(&self) -> &AttachmentTrace {
        &self.trace
    }

    /// The father `N_k` of the vertex with one-based label `k ≥ 2`.
    pub fn father_of_label(&self, k: usize) -> Option<NodeId> {
        self.trace.father_of_label(k)
    }

    /// Builds the unoriented view searching takes place in.
    pub fn undirected(&self) -> UndirectedCsr {
        UndirectedCsr::from_digraph(&self.digraph)
    }

    /// Merges this tree into the `m`-out Móri graph (consumes the tree).
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `m` is zero or does
    /// not divide the vertex count.
    pub fn into_merged(self, m: usize) -> Result<MergedMori> {
        if m == 0 {
            return Err(GeneratorError::invalid("m", 0usize, "a positive integer"));
        }
        if !self.len().is_multiple_of(m) {
            return Err(GeneratorError::invalid(
                "m",
                m,
                "a divisor of the tree size",
            ));
        }
        let merged = self
            .digraph
            .merge_blocks(m)
            .expect("tree is non-empty and m divides its size");
        Ok(MergedMori {
            merged,
            tree_trace: self.trace,
            m,
            p: self.p,
        })
    }
}

/// The merged `m`-out Móri graph `G_t^{(m)}` of Theorem 1.
///
/// Built by sampling a Móri tree on `n·m` vertices and merging each block
/// of `m` consecutive vertices; the result is a connected multigraph (it
/// may contain self-loops and parallel edges) in which every merged vertex
/// has out-degree exactly `m` — except vertex 1, which absorbs the root.
#[derive(Debug, Clone)]
pub struct MergedMori {
    merged: EvolvingDigraph,
    tree_trace: AttachmentTrace,
    m: usize,
    p: f64,
}

impl MergedMori {
    /// Samples a merged Móri graph with `n ≥ 2` merged vertices, block
    /// size `m ≥ 1` and mixing parameter `p ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`MoriTree::sample`] and
    /// [`MoriTree::into_merged`].
    pub fn sample<R: Rng + ?Sized>(n: usize, m: usize, p: f64, rng: &mut R) -> Result<MergedMori> {
        if m == 0 {
            return Err(GeneratorError::invalid("m", 0usize, "a positive integer"));
        }
        if n < 2 {
            return Err(GeneratorError::TooSmall {
                requested: n,
                minimum: 2,
            });
        }
        MoriTree::sample(n * m, p, rng)?.into_merged(m)
    }

    /// Block size `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Mixing parameter `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The merged multigraph (edges keep tree insertion order).
    pub fn digraph(&self) -> &EvolvingDigraph {
        &self.merged
    }

    /// The attachment trace of the *underlying tree* (labels in tree
    /// space, i.e. `1..=n·m`).
    pub fn tree_trace(&self) -> &AttachmentTrace {
        &self.tree_trace
    }

    /// The merged vertex that tree vertex `k` (one-based) belongs to.
    pub fn block_of_tree_label(&self, k: usize) -> NodeId {
        NodeId::new((k - 1) / self.m)
    }

    /// Builds the unoriented view searching takes place in.
    pub fn undirected(&self) -> UndirectedCsr {
        UndirectedCsr::from_digraph(&self.merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use nonsearch_graph::{is_connected, GraphProperties};

    #[test]
    fn tree_shape_invariants() {
        let mut rng = rng_from_seed(1);
        let tree = MoriTree::sample(200, 0.5, &mut rng).unwrap();
        let g = tree.digraph();
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.edge_count(), 199);
        // Root has no out-edge; everyone else exactly one, to an older vertex.
        assert_eq!(g.out_degree(NodeId::from_label(1)), 0);
        for k in 2..=200 {
            let v = NodeId::from_label(k);
            assert_eq!(g.out_degree(v), 1);
            let father = tree.father_of_label(k).unwrap();
            assert!(father < v, "father {father:?} not older than {v:?}");
        }
        assert!(tree.undirected().is_tree());
    }

    #[test]
    fn trace_covers_every_non_root() {
        let mut rng = rng_from_seed(2);
        let tree = MoriTree::sample(50, 0.3, &mut rng).unwrap();
        assert_eq!(tree.trace().len(), 49);
        assert_eq!(tree.trace().records()[0].kind, AttachmentKind::Seed);
    }

    #[test]
    fn p_one_is_a_star_from_the_seed() {
        // With p = 1 the weight is ∝ indegree; only vertex 1 ever has
        // positive indegree, so the tree is deterministically a star.
        let mut rng = rng_from_seed(3);
        let tree = MoriTree::sample(100, 1.0, &mut rng).unwrap();
        for k in 2..=100 {
            assert_eq!(tree.father_of_label(k), Some(NodeId::from_label(1)));
        }
        assert_eq!(tree.digraph().in_degree(NodeId::from_label(1)), 99);
    }

    #[test]
    fn p_zero_uses_only_uniform_draws() {
        let mut rng = rng_from_seed(4);
        let tree = MoriTree::sample(100, 0.0, &mut rng).unwrap();
        assert_eq!(tree.trace().preferential_fraction(), Some(0.0));
    }

    #[test]
    fn third_vertex_father_distribution_matches_closed_form() {
        // P(N_3 = 1) = (p·1 + (1−p)) / (p·1 + (1−p)·2) = 1 / (2 − p).
        let p = 0.5;
        let expect = 1.0 / (2.0 - p);
        let mut rng = rng_from_seed(5);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| {
                let tree = MoriTree::sample(3, p, &mut rng).unwrap();
                tree.father_of_label(3) == Some(NodeId::from_label(1))
            })
            .count();
        let frac = hits as f64 / trials as f64;
        assert!(
            (frac - expect).abs() < 0.02,
            "frac = {frac}, expect = {expect}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = MoriTree::sample(64, 0.7, &mut rng_from_seed(9)).unwrap();
        let b = MoriTree::sample(64, 0.7, &mut rng_from_seed(9)).unwrap();
        assert_eq!(a.digraph(), b.digraph());
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = rng_from_seed(0);
        assert!(MoriTree::sample(1, 0.5, &mut rng).is_err());
        assert!(MoriTree::sample(10, -0.1, &mut rng).is_err());
        assert!(MoriTree::sample(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn merged_graph_shape() {
        let mut rng = rng_from_seed(6);
        let merged = MergedMori::sample(50, 3, 0.6, &mut rng).unwrap();
        let g = merged.digraph();
        assert_eq!(g.node_count(), 50);
        // The tree on 150 vertices has 149 edges; merging preserves them.
        assert_eq!(g.edge_count(), 149);
        assert!(is_connected(&merged.undirected()));
    }

    #[test]
    fn merged_out_degree_is_m_except_root_block() {
        let mut rng = rng_from_seed(7);
        let m = 4;
        let merged = MergedMori::sample(30, m, 0.5, &mut rng).unwrap();
        let g = merged.digraph();
        // Block 1 contains the root (no out-edge): out-degree m − 1.
        assert_eq!(g.out_degree(NodeId::from_label(1)), m - 1);
        for i in 2..=30 {
            assert_eq!(g.out_degree(NodeId::from_label(i)), m, "block {i}");
        }
    }

    #[test]
    fn merged_m1_matches_tree() {
        let tree = MoriTree::sample(40, 0.4, &mut rng_from_seed(8)).unwrap();
        let tree_graph = tree.digraph().clone();
        let merged = tree.into_merged(1).unwrap();
        assert_eq!(merged.digraph(), &tree_graph);
    }

    #[test]
    fn block_mapping() {
        let mut rng = rng_from_seed(10);
        let merged = MergedMori::sample(10, 3, 0.5, &mut rng).unwrap();
        assert_eq!(merged.block_of_tree_label(1), NodeId::from_label(1));
        assert_eq!(merged.block_of_tree_label(3), NodeId::from_label(1));
        assert_eq!(merged.block_of_tree_label(4), NodeId::from_label(2));
        assert_eq!(merged.block_of_tree_label(30), NodeId::from_label(10));
    }

    #[test]
    fn merged_rejects_bad_params() {
        let mut rng = rng_from_seed(11);
        assert!(MergedMori::sample(10, 0, 0.5, &mut rng).is_err());
        assert!(MergedMori::sample(1, 2, 0.5, &mut rng).is_err());
        let tree = MoriTree::sample(10, 0.5, &mut rng).unwrap();
        assert!(tree.into_merged(3).is_err()); // 3 does not divide 10
    }

    #[test]
    fn merged_graph_can_contain_loops() {
        // With m = 2, a father inside the same block creates a loop; over
        // many samples at p = 0 this happens with substantial probability.
        let mut rng = rng_from_seed(12);
        let mut saw_loop = false;
        for _ in 0..50 {
            let merged = MergedMori::sample(20, 2, 0.0, &mut rng).unwrap();
            if merged.undirected().self_loop_count() > 0 {
                saw_loop = true;
                break;
            }
        }
        assert!(
            saw_loop,
            "expected at least one self-loop across 50 samples"
        );
    }

    #[test]
    fn preferential_fraction_increases_with_p() {
        let mut rng = rng_from_seed(13);
        let lo = MoriTree::sample(2000, 0.2, &mut rng).unwrap();
        let hi = MoriTree::sample(2000, 0.9, &mut rng).unwrap();
        assert!(
            lo.trace().preferential_fraction().unwrap()
                < hi.trace().preferential_fraction().unwrap()
        );
    }
}
