//! `xp report` — render a run's JSONL records as a terminal summary.
//!
//! Where `xp validate` checks a record stream and `xp profile-diff`
//! gates it, `xp report` is for *reading* it: a per-cell throughput
//! table from the `"type":"profile"` records, a per-phase time
//! breakdown from the `"type":"resource"` records, an ASCII render of
//! the merged log₂ request histogram from the `"type":"metrics"`
//! records, and (with `--baseline`) regression deltas against a
//! committed profile baseline.
//!
//! ```text
//! xp report <run.jsonl> [--baseline FILE] [--prometheus] [--require-phases]
//! ```
//!
//! * `--baseline FILE` — append a deltas section comparing the run's
//!   profile records to a `profile-diff` baseline. The report never
//!   fails on a regression (that is `profile-diff`'s job); it only
//!   shows the ratios.
//! * `--prometheus` — append the merged metrics in the Prometheus text
//!   exposition format, the future daemon's stats endpoint wire format.
//! * `--require-phases` — exit `1` unless the run carries at least one
//!   resource record with a nonzero phase total (CI's assertion that
//!   phase timing is actually wired through the binaries it smokes).
//!
//! Exit codes: `0` rendered, `1` `--require-phases` unmet, `2` usage or
//! I/O error.

use crate::json::{self, JsonValue};
use crate::profile_diff::{baseline_from_json, diff, measured_from_jsonl, DEFAULT_THRESHOLD};
use crate::record::{METRICS_TYPE, PROFILE_TYPE, RESOURCE_TYPE, RUN_TYPE};
use nonsearch_analysis::Table;
use nonsearch_obs::{prometheus_text, render_log2_histogram, Metrics};
use std::path::PathBuf;

const USAGE: &str =
    "usage: xp report <run.jsonl> [--baseline FILE] [--prometheus] [--require-phases]";

/// One parsed `"type":"profile"` record, for the throughput table.
#[derive(Debug, Clone, PartialEq)]
struct ProfileRow {
    n: f64,
    trials: f64,
    requests: f64,
    wall_ms: f64,
    requests_per_sec: f64,
}

/// One parsed `"type":"resource"` record, for the phase breakdown.
#[derive(Debug, Clone, PartialEq)]
struct ResourceRow {
    label: String,
    wall_ms: f64,
    workers: f64,
    phases: [(&'static str, f64); 5],
    allocations: f64,
    peak_rss_bytes: f64,
}

/// Everything [`parse_run`] extracts from a run's JSONL stream.
#[derive(Debug, Clone, PartialEq, Default)]
struct RunReport {
    experiment: String,
    profiles: Vec<ProfileRow>,
    resources: Vec<ResourceRow>,
    metrics: Metrics,
    metrics_records: usize,
    footer: Option<(u64, bool, u64)>, // (seed, quick, wall_ms)
}

const PHASE_KEYS: [&str; 5] = [
    "phase_generate_ns",
    "phase_load_ns",
    "phase_search_ns",
    "phase_harvest_ns",
    "phase_merge_ns",
];

fn num(value: &JsonValue, key: &str) -> f64 {
    value.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

/// Collects the renderable records from a JSONL stream. Lenient by
/// design — `xp validate` is the strict checker; the report renders
/// whatever well-formed records it finds.
fn parse_run(text: &str) -> Result<RunReport, String> {
    let mut report = RunReport::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if report.experiment.is_empty() {
            if let Some(e) = value.get("experiment").and_then(|v| v.as_str()) {
                report.experiment = e.to_string();
            }
        }
        match value.get("type").and_then(|t| t.as_str()) {
            Some(t) if t == PROFILE_TYPE => report.profiles.push(ProfileRow {
                n: num(&value, "n"),
                trials: num(&value, "trials"),
                requests: num(&value, "requests"),
                wall_ms: num(&value, "wall_ms"),
                requests_per_sec: num(&value, "requests_per_sec"),
            }),
            Some(t) if t == RESOURCE_TYPE => {
                let mut phases = [("", 0.0); 5];
                for (slot, key) in phases.iter_mut().zip(PHASE_KEYS) {
                    *slot = (key.strip_prefix("phase_").unwrap_or(key), num(&value, key));
                }
                report.resources.push(ResourceRow {
                    label: value
                        .get("n")
                        .and_then(|v| v.as_f64())
                        .map(|n| format!("n={n}"))
                        .unwrap_or_else(|| "-".to_string()),
                    wall_ms: num(&value, "wall_ms"),
                    workers: num(&value, "workers"),
                    phases,
                    allocations: num(&value, "allocations"),
                    peak_rss_bytes: num(&value, "peak_rss_bytes"),
                });
            }
            Some(t) if t == METRICS_TYPE => {
                report.metrics_records += 1;
                report.metrics.trials += num(&value, "trials") as u64;
                report.metrics.requests += num(&value, "requests") as u64;
                report.metrics.discoveries += num(&value, "discoveries") as u64;
                report.metrics.edge_resolutions += num(&value, "edge_resolutions") as u64;
                report.metrics.frontier_rescans += num(&value, "frontier_rescans") as u64;
                report.metrics.scratch_resets += num(&value, "scratch_resets") as u64;
                if let Some(buckets) = value.get("hist_requests_log2").and_then(|v| v.as_array()) {
                    for (i, bucket) in buckets.iter().enumerate() {
                        if let Some(count) = bucket.as_f64().filter(|x| *x >= 0.0) {
                            report.metrics.trial_requests.add_to_bucket(i, count as u64);
                        }
                    }
                }
            }
            Some(t) if t == RUN_TYPE => {
                report.footer = Some((
                    num(&value, "seed") as u64,
                    value
                        .get("quick")
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false),
                    num(&value, "wall_ms") as u64,
                ));
            }
            _ => {}
        }
    }
    Ok(report)
}

fn render(report: &RunReport) -> String {
    let mut out = String::new();
    let (seed, quick, wall_ms) = report.footer.unwrap_or((0, false, 0));
    out.push_str(&format!(
        "run: {} (seed {:#x}{}, {} ms)\n",
        if report.experiment.is_empty() {
            "<unknown>"
        } else {
            &report.experiment
        },
        seed,
        if quick { ", quick" } else { "" },
        wall_ms
    ));

    if !report.profiles.is_empty() {
        out.push_str("\nthroughput:\n");
        let mut t = Table::with_columns(&["n", "trials", "requests", "wall_ms", "req/s"]);
        for p in &report.profiles {
            t.row(vec![
                format!("{}", p.n),
                format!("{}", p.trials),
                format!("{}", p.requests),
                format!("{:.1}", p.wall_ms),
                format!("{:.0}", p.requests_per_sec),
            ]);
        }
        out.push_str(&t.to_string());
    }

    if !report.resources.is_empty() {
        out.push_str("\nphases (per-worker busy ms):\n");
        let mut t = Table::with_columns(&[
            "cell", "wall_ms", "workers", "generate", "load", "search", "harvest", "merge",
            "allocs", "rss_mb",
        ]);
        for r in &report.resources {
            let mut row = vec![
                r.label.clone(),
                format!("{:.0}", r.wall_ms),
                format!("{:.0}", r.workers),
            ];
            row.extend(r.phases.iter().map(|&(_, ns)| format!("{:.2}", ns / 1e6)));
            row.push(format!("{:.0}", r.allocations));
            row.push(format!("{:.1}", r.peak_rss_bytes / (1024.0 * 1024.0)));
            t.row(row);
        }
        out.push_str(&t.to_string());
    }

    if report.metrics_records > 0 {
        out.push_str(&format!(
            "\nmetrics ({} records merged): {} trials, {} requests, {} discoveries\n",
            report.metrics_records,
            report.metrics.trials,
            report.metrics.requests,
            report.metrics.discoveries
        ));
        out.push_str("per-trial request histogram:\n");
        out.push_str(&render_log2_histogram(&report.metrics.trial_requests, 40));
    }
    out
}

/// The `xp report` subcommand body. Returns the process exit code.
pub fn main(args: &[String]) -> i32 {
    let mut run_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut prometheus = false;
    let mut require_phases = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => match iter.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("xp report: --baseline requires a value\n{USAGE}");
                    return 2;
                }
            },
            "--prometheus" => prometheus = true,
            "--require-phases" => require_phases = true,
            other if other.starts_with("--") => {
                eprintln!("xp report: unknown argument {other:?}\n{USAGE}");
                return 2;
            }
            _ if run_path.is_none() => run_path = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("xp report: unexpected extra argument {arg:?}\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(run_path) = run_path else {
        eprintln!("{USAGE}");
        return 2;
    };
    let text = match std::fs::read_to_string(&run_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xp report: cannot read {}: {e}", run_path.display());
            return 2;
        }
    };
    let report = match parse_run(&text) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xp report: {}: {e}", run_path.display());
            return 2;
        }
    };
    print!("{}", render(&report));

    if let Some(baseline_path) = baseline_path {
        match (
            measured_from_jsonl(&text),
            std::fs::read_to_string(&baseline_path)
                .map_err(|e| e.to_string())
                .and_then(|text| baseline_from_json(&text)),
        ) {
            (Ok(measured), Ok(baseline)) => {
                println!("\nbaseline deltas (threshold {DEFAULT_THRESHOLD}):");
                for row in diff(&measured, &baseline, DEFAULT_THRESHOLD) {
                    println!(
                        "  n={:<8} {:>12.0} req/s vs {:>12.0} (n={}) ratio {:.3}{}",
                        row.n,
                        row.measured,
                        row.baseline,
                        row.baseline_n,
                        row.ratio,
                        if row.regressed {
                            "  [below threshold]"
                        } else {
                            ""
                        }
                    );
                }
            }
            (Err(e), _) => eprintln!("xp report: baseline deltas skipped — {e}"),
            (_, Err(e)) => {
                eprintln!(
                    "xp report: baseline deltas skipped — {}: {e}",
                    baseline_path.display()
                );
            }
        }
    }

    if prometheus {
        println!("\nprometheus exposition:");
        print!("{}", prometheus_text(&report.metrics));
    }

    if require_phases {
        let phase_total: f64 = report
            .resources
            .iter()
            .flat_map(|r| r.phases.iter().map(|&(_, ns)| ns))
            .sum();
        if report.resources.is_empty() || phase_total <= 0.0 {
            eprintln!(
                "xp report: --require-phases — no resource records with nonzero phase times \
                 in {}",
                run_path.display()
            );
            return 1;
        }
        println!(
            "\nrequire-phases: {} resource records, {:.2} ms total phase time — OK",
            report.resources.len(),
            phase_total / 1e6
        );
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"type\":\"cell\",\"experiment\":\"demo\",\"n\":128,\"mean\":10.0}\n",
        "{\"type\":\"profile\",\"experiment\":\"demo\",\"n\":128,\"trials\":4,\
         \"requests\":512,\"wall_ms\":2.5,\"requests_per_sec\":204800.0}\n",
        "{\"type\":\"metrics\",\"experiment\":\"demo\",\"n\":128,\"trials\":4,\
         \"requests\":512,\"discoveries\":32,\"edge_resolutions\":64,\
         \"frontier_rescans\":0,\"scratch_resets\":4,\"hist_requests_log2\":[0,0,0,0,0,0,0,4]}\n",
        "{\"type\":\"resource\",\"experiment\":\"demo\",\"n\":128,\"wall_ms\":3,\"workers\":2,\
         \"phase_generate_ns\":1000000,\"phase_load_ns\":0,\"phase_search_ns\":4000000,\
         \"phase_harvest_ns\":200000,\"phase_merge_ns\":100000,\"allocations\":0,\
         \"peak_rss_bytes\":52428800,\"minor_faults\":10,\"major_faults\":0,\
         \"voluntary_ctx_switches\":2}\n",
        "{\"type\":\"run\",\"experiment\":\"demo\",\"seed\":225,\"quick\":true,\"threads\":2,\
         \"git\":\"x\",\"wall_ms\":9,\"cells\":1,\"profiles\":1,\"metrics\":1,\"resources\":1}\n",
    );

    #[test]
    fn parse_collects_every_record_kind() {
        let r = parse_run(SAMPLE).unwrap();
        assert_eq!(r.experiment, "demo");
        assert_eq!(r.profiles.len(), 1);
        assert_eq!(r.profiles[0].requests_per_sec, 204800.0);
        assert_eq!(r.resources.len(), 1);
        assert_eq!(r.resources[0].phases[2], ("search_ns", 4000000.0));
        assert_eq!(r.metrics_records, 1);
        assert_eq!(r.metrics.trials, 4);
        assert_eq!(r.metrics.trial_requests.total(), 4);
        assert_eq!(r.footer, Some((225, true, 9)));
    }

    #[test]
    fn render_covers_throughput_phases_and_histogram() {
        let text = render(&parse_run(SAMPLE).unwrap());
        assert!(text.contains("run: demo"), "{text}");
        assert!(text.contains("quick"), "{text}");
        assert!(text.contains("throughput:"), "{text}");
        assert!(text.contains("204800"), "{text}");
        assert!(text.contains("phases"), "{text}");
        assert!(text.contains("n=128"), "{text}");
        assert!(text.contains("histogram"), "{text}");
        // All four trials land in bucket 7: [64, 128).
        assert!(text.contains("[64, 128)"), "{text}");
    }

    #[test]
    fn main_reports_and_gates_phases_end_to_end() {
        let dir = std::env::temp_dir();
        let unique = format!("{}_report", std::process::id());
        let run = dir.join(format!("rep_{unique}.jsonl"));
        std::fs::write(&run, SAMPLE).unwrap();
        let s = |x: &str| x.to_string();
        let p = s(run.to_str().unwrap());
        assert_eq!(main(std::slice::from_ref(&p)), 0);
        assert_eq!(main(&[p.clone(), s("--require-phases")]), 0);
        assert_eq!(main(&[p.clone(), s("--prometheus")]), 0);
        // A run with no resource records fails --require-phases.
        let bare = dir.join(format!("rep_bare_{unique}.jsonl"));
        std::fs::write(&bare, "{\"type\":\"cell\",\"experiment\":\"demo\"}\n").unwrap();
        assert_eq!(main(&[s(bare.to_str().unwrap()), s("--require-phases")]), 1);
        // Zeroed phase times also fail the gate.
        let zeroed = dir.join(format!("rep_zero_{unique}.jsonl"));
        std::fs::write(
            &zeroed,
            SAMPLE
                .replace("\"phase_generate_ns\":1000000", "\"phase_generate_ns\":0")
                .replace("\"phase_search_ns\":4000000", "\"phase_search_ns\":0")
                .replace("\"phase_harvest_ns\":200000", "\"phase_harvest_ns\":0")
                .replace("\"phase_merge_ns\":100000", "\"phase_merge_ns\":0"),
        )
        .unwrap();
        assert_eq!(
            main(&[s(zeroed.to_str().unwrap()), s("--require-phases")]),
            1
        );
        // Usage errors exit 2.
        assert_eq!(main(&[]), 2);
        assert_eq!(main(&[p.clone(), s("--wat")]), 2);
        assert_eq!(main(&[s("/nonexistent/run.jsonl")]), 2);
        std::fs::remove_file(&run).ok();
        std::fs::remove_file(&bare).ok();
        std::fs::remove_file(&zeroed).ok();
    }
}
