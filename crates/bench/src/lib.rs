//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every experiment regenerates one evaluation artifact from
//! EXPERIMENTS.md; the unified `xp` binary fronts them all (`xp list`),
//! and the legacy `exp_*` binaries dispatch to the same registered
//! implementations. All entry points share the engine's flag set —
//! `--quick`, `--threads`, `--seed`, `--out`, `--format`, `--trials`,
//! `--sizes` — parsed once into [`CliOptions`].
//!
//! The cell helpers here ([`strong_cell`], [`weak_cell_with_policy`])
//! execute on the `nonsearch_engine` trial runner: sharded across worker
//! threads, per-trial RNG streams derived from the trial index, streamed
//! aggregation in strict trial order — so their numbers are bit-identical
//! for any thread count (and match the historical sequential loops'
//! trial seeding).

#![forbid(unsafe_code)]

pub mod bench_suite;
pub mod chaos;
pub mod experiments;

use nonsearch_core::{GraphModel, ModelSource};
use nonsearch_engine::{
    resolved_workers, run_cell_observed, CliOptions, GraphSource, TrialMeasure, TrialObs,
};
use nonsearch_generators::SeedSequence;
use nonsearch_graph::NodeId;
use nonsearch_obs::{elapsed_ns, Metrics, PhaseTimes, ResourceSample};
use nonsearch_search::{
    run_strong_in, run_weak_in, SearchScratch, SearchTask, StrongSearcher, SuccessCriterion,
};

/// `true` when the caller asked for a reduced sweep (`--quick` or
/// `NONSEARCH_QUICK=1`); read from the process-wide options, which are
/// parsed exactly once.
pub fn quick() -> bool {
    CliOptions::global().quick
}

/// Truncates a size sweep in quick mode (and honours `--sizes`).
pub fn sweep(full: &[usize]) -> Vec<usize> {
    CliOptions::global().sweep(full)
}

/// Scales a trial count down in quick mode (and honours `--trials`).
pub fn trials(full: usize) -> usize {
    CliOptions::global().trial_count(full)
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("claim: {claim}");
    if quick() {
        println!("mode: QUICK (reduced sweep; run without --quick for the full table)");
    }
    println!();
}

/// Aggregated measurement of one (model, size, searcher) cell.
///
/// `mean`/`ci95`/`success` are deterministic (bit-identical for any
/// thread count); `wall_ms`/`requests_per_sec` are volatile wall-clock
/// throughput for `--profile` reporting and never belong in cell
/// records.
#[derive(Debug, Clone, Copy)]
pub struct CellStats {
    /// Mean request count.
    pub mean: f64,
    /// 95% CI half-width.
    pub ci95: f64,
    /// Fraction of trials that found the target.
    pub success: f64,
    /// Wall-clock time of the whole cell in milliseconds.
    pub wall_ms: f64,
    /// Total requests across trials divided by wall seconds.
    pub requests_per_sec: f64,
    /// Deterministically merged per-worker counters for the cell
    /// (exact u64 sums, bit-identical for any thread count).
    pub metrics: Metrics,
    /// Merged per-worker phase timers (generate / load / search /
    /// harvest / merge) — volatile CPU-side busy time, like `wall_ms`.
    pub phases: PhaseTimes,
    /// Heap allocations during trial bodies (zero unless the binary
    /// installs `nonsearch_alloc_counter::CountingAllocator`).
    pub allocations: u64,
    /// Process-wide resource sample taken when the cell finished.
    pub resource: ResourceSample,
    /// Worker threads the engine actually ran for this cell.
    pub workers: usize,
}

impl CellStats {
    fn from_lane(
        lane: &nonsearch_engine::LaneAggregate,
        trial_count: usize,
        wall_ms: f64,
        obs: TrialObs,
        workers: usize,
    ) -> CellStats {
        let requests = lane.mean() * trial_count as f64;
        CellStats {
            mean: lane.mean(),
            ci95: lane.ci95(),
            success: lane.success_rate(),
            wall_ms,
            requests_per_sec: requests / (wall_ms / 1e3).max(f64::EPSILON),
            metrics: obs.metrics,
            phases: obs.phases,
            allocations: obs.allocations,
            // Sampled outside the trial hot path (reading /proc
            // allocates), after every trial has finished.
            resource: ResourceSample::current(),
            workers,
        }
    }
}

/// Strong-model searcher selection for the Theorem 1 strong experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrongKind {
    /// Discovery-order expansion.
    Bfs,
    /// Max-degree-first expansion.
    HighDegree,
    /// Target-label-proximity expansion.
    GreedyId,
}

impl StrongKind {
    /// All strong searchers.
    pub fn all() -> &'static [StrongKind] {
        &[
            StrongKind::Bfs,
            StrongKind::HighDegree,
            StrongKind::GreedyId,
        ]
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            StrongKind::Bfs => "strong-bfs",
            StrongKind::HighDegree => "strong-high-degree",
            StrongKind::GreedyId => "strong-greedy-id",
        }
    }

    /// Builds a fresh instance.
    pub fn build(&self) -> Box<dyn StrongSearcher> {
        match self {
            StrongKind::Bfs => Box::new(nonsearch_search::StrongBfs::new()),
            StrongKind::HighDegree => Box::new(nonsearch_search::StrongHighDegree::new()),
            StrongKind::GreedyId => Box::new(nonsearch_search::StrongGreedyId::new()),
        }
    }
}

/// Measures a strong-model searcher on `model` at size `n` — mean
/// requests to find the newest vertex from vertex 1 — on `threads`
/// engine workers (0 = all cores).
pub fn strong_cell<M: GraphModel + Sync>(
    model: &M,
    n: usize,
    kind: StrongKind,
    trial_count: usize,
    threads: usize,
    seeds: &SeedSequence,
) -> CellStats {
    strong_cell_from(
        &ModelSource::new(model),
        n,
        kind,
        trial_count,
        threads,
        seeds,
    )
}

/// [`strong_cell`] with the trial graphs supplied by an arbitrary
/// [`GraphSource`] (generate-per-trial or corpus-backed).
pub fn strong_cell_from(
    source: &(impl GraphSource + ?Sized),
    n: usize,
    kind: StrongKind,
    trial_count: usize,
    threads: usize,
    seeds: &SeedSequence,
) -> CellStats {
    // Per-worker pool: scratch + searcher built once, reused (and reset)
    // across all of the worker's trials.
    // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
    let start = std::time::Instant::now();
    let (lane, obs) = run_cell_observed(
        trial_count,
        threads,
        seeds,
        || (SearchScratch::new(), kind.build()),
        |(scratch, searcher), obs, trial, cell_seeds| {
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let fetch_start = std::time::Instant::now();
            let graph = source.trial_graph(n, trial, &cell_seeds);
            let fetch_ns = elapsed_ns(fetch_start);
            if source.is_stored() {
                obs.phases.load_ns += fetch_ns;
            } else {
                obs.phases.generate_ns += fetch_ns;
            }
            let actual = graph.node_count();
            let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(actual))
                .with_budget(50 * actual);
            let mut search_rng = cell_seeds.child_rng(1);
            let resolutions_before = scratch.view().edge_resolutions();
            let resets_before = scratch.view().resets();
            let rescans_before = searcher.frontier_rescans();
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let search_start = std::time::Instant::now();
            let outcome = run_strong_in(scratch, &graph, &task, &mut **searcher, &mut search_rng)
                .expect("suite searchers never violate the protocol");
            obs.phases.search_ns += elapsed_ns(search_start);
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let harvest_start = std::time::Instant::now();
            let m = &mut obs.metrics;
            m.requests += outcome.requests as u64;
            m.discoveries += outcome.discovered as u64;
            m.frontier_rescans += searcher.frontier_rescans() - rescans_before;
            m.edge_resolutions += scratch.view().edge_resolutions() - resolutions_before;
            m.scratch_resets += scratch.view().resets() - resets_before;
            m.observe_trial_requests(outcome.requests as u64);
            obs.phases.harvest_ns += elapsed_ns(harvest_start);
            TrialMeasure::new(outcome.requests as f64, outcome.found)
        },
    );
    CellStats::from_lane(
        &lane,
        trial_count,
        start.elapsed().as_secs_f64() * 1e3,
        obs,
        resolved_workers(threads, trial_count),
    )
}

/// Where the searcher starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartPolicy {
    /// The oldest vertex (label 1) — the model's best-connected hub.
    OldestHub,
    /// A uniformly random vertex.
    Uniform,
    /// The second-newest vertex (label n−1) — right next to the window.
    NearTarget,
}

impl StartPolicy {
    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            StartPolicy::OldestHub => "hub(v1)",
            StartPolicy::Uniform => "uniform",
            StartPolicy::NearTarget => "near(v[n-1])",
        }
    }

    fn pick(&self, n: usize, rng: &mut rand_chacha::ChaCha8Rng) -> NodeId {
        use rand::Rng;
        match self {
            StartPolicy::OldestHub => NodeId::from_label(1),
            StartPolicy::Uniform => NodeId::new(rng.gen_range(0..n.saturating_sub(1))),
            StartPolicy::NearTarget => NodeId::from_label((n - 1).max(1)),
        }
    }
}

/// Measures a weak-model searcher on `model` at size `n` with explicit
/// start/criterion policy (used by the ablation experiment), on
/// `threads` engine workers (0 = all cores).
#[allow(clippy::too_many_arguments)]
pub fn weak_cell_with_policy<M: GraphModel + Sync>(
    model: &M,
    n: usize,
    kind: nonsearch_search::SearcherKind,
    criterion: SuccessCriterion,
    start_policy: StartPolicy,
    trial_count: usize,
    budget_multiplier: usize,
    threads: usize,
    seeds: &SeedSequence,
) -> CellStats {
    weak_cell_with_policy_from(
        &ModelSource::new(model),
        n,
        kind,
        criterion,
        start_policy,
        trial_count,
        budget_multiplier,
        threads,
        seeds,
    )
}

/// [`weak_cell_with_policy`] with the trial graphs supplied by an
/// arbitrary [`GraphSource`].
///
/// Per-trial child streams: `0` the graph (inside generate-backed
/// sources), `1` the searcher, `2` the start-policy pick — each on its
/// own stream, so generate-backed and corpus-backed runs pick the same
/// start vertices from the same trial seeds.
#[allow(clippy::too_many_arguments)]
pub fn weak_cell_with_policy_from(
    source: &(impl GraphSource + ?Sized),
    n: usize,
    kind: nonsearch_search::SearcherKind,
    criterion: SuccessCriterion,
    start_policy: StartPolicy,
    trial_count: usize,
    budget_multiplier: usize,
    threads: usize,
    seeds: &SeedSequence,
) -> CellStats {
    // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
    let start = std::time::Instant::now();
    let (lane, obs) = run_cell_observed(
        trial_count,
        threads,
        seeds,
        || (SearchScratch::new(), kind.build()),
        |(scratch, searcher), obs, trial, cell_seeds| {
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let fetch_start = std::time::Instant::now();
            let graph = source.trial_graph(n, trial, &cell_seeds);
            let fetch_ns = elapsed_ns(fetch_start);
            if source.is_stored() {
                obs.phases.load_ns += fetch_ns;
            } else {
                obs.phases.generate_ns += fetch_ns;
            }
            let actual = graph.node_count();
            let start = start_policy.pick(actual, &mut cell_seeds.child_rng(2));
            let task = SearchTask::new(start, NodeId::from_label(actual))
                .with_criterion(criterion)
                .with_budget(budget_multiplier * actual);
            let mut search_rng = cell_seeds.child_rng(1);
            let resolutions_before = scratch.view().edge_resolutions();
            let resets_before = scratch.view().resets();
            let rescans_before = searcher.frontier_rescans();
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let search_start = std::time::Instant::now();
            let outcome = run_weak_in(scratch, &graph, &task, &mut **searcher, &mut search_rng)
                .expect("suite searchers never violate the protocol");
            obs.phases.search_ns += elapsed_ns(search_start);
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let harvest_start = std::time::Instant::now();
            let m = &mut obs.metrics;
            m.requests += outcome.requests as u64;
            m.discoveries += outcome.discovered as u64;
            m.frontier_rescans += searcher.frontier_rescans() - rescans_before;
            m.edge_resolutions += scratch.view().edge_resolutions() - resolutions_before;
            m.scratch_resets += scratch.view().resets() - resets_before;
            m.observe_trial_requests(outcome.requests as u64);
            obs.phases.harvest_ns += elapsed_ns(harvest_start);
            TrialMeasure::new(outcome.requests as f64, outcome.found)
        },
    );
    CellStats::from_lane(
        &lane,
        trial_count,
        start.elapsed().as_secs_f64() * 1e3,
        obs,
        resolved_workers(threads, trial_count),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_core::MergedMoriModel;
    use nonsearch_search::SearcherKind;

    #[test]
    fn strong_cell_measures_something() {
        let model = MergedMoriModel { p: 0.5, m: 1 };
        let seeds = SeedSequence::new(1);
        let cell = strong_cell(&model, 256, StrongKind::HighDegree, 4, 0, &seeds);
        assert!(cell.mean > 0.0);
        assert!(cell.success > 0.9);
        assert!(cell.wall_ms >= 0.0);
        assert!(cell.requests_per_sec > 0.0);
        assert!(cell.requests_per_sec.is_finite());
        assert_eq!(cell.metrics.trials, 4);
        assert_eq!(cell.metrics.trial_requests.total(), 4);
        assert!(cell.metrics.requests > 0);
        assert!(cell.metrics.discoveries > 0);
        assert_eq!(cell.metrics.scratch_resets, 4);
        // Phase timers rode alongside: generate (this source is not
        // stored), search, and the consumer's merge all registered.
        assert!(cell.phases.generate_ns > 0);
        assert_eq!(cell.phases.load_ns, 0);
        assert!(cell.phases.search_ns > 0);
        assert!(cell.phases.merge_ns > 0);
        assert!(cell.workers >= 1);
        if cfg!(target_os = "linux") {
            assert!(cell.resource.peak_rss_bytes > 0);
        }
    }

    #[test]
    fn weak_cell_policies_work() {
        let model = MergedMoriModel { p: 0.5, m: 1 };
        let seeds = SeedSequence::new(2);
        for policy in [
            StartPolicy::OldestHub,
            StartPolicy::Uniform,
            StartPolicy::NearTarget,
        ] {
            let cell = weak_cell_with_policy(
                &model,
                256,
                SearcherKind::BfsFlood,
                SuccessCriterion::DiscoverTarget,
                policy,
                4,
                100,
                0,
                &seeds,
            );
            assert!(cell.success > 0.9, "{}", policy.name());
        }
    }

    #[test]
    fn cells_are_bit_identical_across_thread_counts() {
        let model = MergedMoriModel { p: 0.5, m: 1 };
        let seeds = SeedSequence::new(3);
        let a = strong_cell(&model, 128, StrongKind::Bfs, 6, 1, &seeds);
        let b = strong_cell(&model, 128, StrongKind::Bfs, 6, 4, &seeds);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.ci95, b.ci95);
        assert_eq!(a.success, b.success);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn strong_kind_names_unique() {
        let names: Vec<&str> = StrongKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"strong-bfs"));
    }

    #[test]
    fn sweep_respects_quick() {
        if !quick() {
            assert_eq!(sweep(&[1, 2, 3, 4]), vec![1, 2, 3, 4]);
            assert_eq!(trials(12), 12);
        }
    }
}
