//! E2 — Theorem 1, strong model: for `p < 1/2`, strong-model search
//! needs `Ω(n^{1/2−p−ε})` requests; the slowdown argument runs strong
//! algorithms natively and through the weak-model simulation.

use super::{open_corpus, print_banner, resolve_source};
use crate::{strong_cell_from, StrongKind};
use nonsearch_analysis::{fit_log_log, Table};
use nonsearch_core::{strong_model_exponent, MergedMoriModel};
use nonsearch_engine::{ExpContext, ExperimentSpec, JsonValue};
use nonsearch_generators::SeedSequence;

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "theorem1-strong",
    id: "E2",
    claim: "for p < 1/2, strong-model search needs Ω(n^(1/2−p−ε)) requests",
    default_seed: 0xE2,
    run,
};

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E2 / Theorem 1 (strong model)",
        "for p < 1/2, strong-model search needs Ω(n^(1/2−p−ε)) requests; \
         max degree t^p bounds the weak→strong slowdown",
    );

    let sizes = ctx.options.sweep(&[512, 1024, 2048, 4096, 8192, 16384]);
    let trial_count = ctx.options.trial_count(10);
    let p_values = if ctx.options.quick {
        vec![0.2]
    } else {
        vec![0.2, 0.4]
    };
    let seeds = SeedSequence::new(ctx.seed);
    let corpus = open_corpus(ctx);
    let tracer = ctx.tracer.clone();

    for &p in &p_values {
        let model = MergedMoriModel { p, m: 1 };
        let source = resolve_source(corpus.as_ref(), &model, &sizes);
        println!("model: mori(p={p}, m=1), strong oracle");
        let mut table = Table::with_columns(&["searcher", "n", "mean requests", "ci95", "success"]);
        let mut best_series: Vec<(usize, f64)> = Vec::new();
        for kind in StrongKind::all() {
            let mut series = Vec::new();
            for (i, &n) in sizes.iter().enumerate() {
                let _cell_span = tracer.span("size-cell");
                let cell_seeds = seeds
                    .subsequence((p * 100.0) as u64)
                    .subsequence(i as u64)
                    .subsequence(kind.name().len() as u64);
                let cell = strong_cell_from(
                    &*source,
                    n,
                    *kind,
                    trial_count,
                    ctx.options.threads,
                    &cell_seeds,
                );
                table.row(vec![
                    kind.name().to_string(),
                    n.to_string(),
                    format!("{:.1}", cell.mean),
                    format!("{:.1}", cell.ci95),
                    format!("{:.2}", cell.success),
                ]);
                ctx.writer
                    .record_cell(vec![
                        ("model", JsonValue::from("mori")),
                        ("p", JsonValue::from(p)),
                        ("m", JsonValue::from(1usize)),
                        ("searcher", JsonValue::from(kind.name())),
                        ("n", JsonValue::from(n)),
                        ("trials", JsonValue::from(trial_count)),
                        ("seed", JsonValue::from(ctx.seed)),
                        ("mean", JsonValue::from(cell.mean)),
                        ("ci95", JsonValue::from(cell.ci95)),
                        ("success", JsonValue::from(cell.success)),
                    ])
                    .expect("write cell record");
                if ctx.options.profile {
                    ctx.writer
                        .record_profile(vec![
                            ("model", JsonValue::from("mori")),
                            ("p", JsonValue::from(p)),
                            ("searcher", JsonValue::from(kind.name())),
                            ("n", JsonValue::from(n)),
                            ("trials", JsonValue::from(trial_count)),
                            ("requests", JsonValue::from(cell.mean * trial_count as f64)),
                            ("wall_ms", JsonValue::from(cell.wall_ms)),
                            ("requests_per_sec", JsonValue::from(cell.requests_per_sec)),
                        ])
                        .expect("write profile record");
                    ctx.writer
                        .record_metrics(
                            vec![
                                ("model", JsonValue::from("mori")),
                                ("p", JsonValue::from(p)),
                                ("searcher", JsonValue::from(kind.name())),
                                ("n", JsonValue::from(n)),
                            ],
                            &cell.metrics,
                        )
                        .expect("write metrics record");
                    ctx.writer
                        .record_resource(
                            vec![
                                ("model", JsonValue::from("mori")),
                                ("p", JsonValue::from(p)),
                                ("searcher", JsonValue::from(kind.name())),
                                ("n", JsonValue::from(n)),
                            ],
                            cell.wall_ms as u64,
                            cell.workers,
                            &cell.phases,
                            cell.allocations,
                            &cell.resource,
                        )
                        .expect("write resource record");
                }
                series.push((n, cell.mean));
            }
            // Track the cheapest searcher at the largest size.
            if best_series.is_empty()
                || series.last().expect("non-empty").1 < best_series.last().expect("non-empty").1
            {
                best_series = series;
            }
        }
        println!("{table}");
        let xs: Vec<f64> = best_series.iter().map(|&(n, _)| n as f64).collect();
        let ys: Vec<f64> = best_series.iter().map(|&(_, c)| c.max(1.0)).collect();
        if let Some(fit) = fit_log_log(&xs, &ys) {
            let floor = strong_model_exponent(p, 0.0);
            println!(
                "best strong searcher exponent: {:.3} (theoretical floor 1/2−p = {:.2})\n",
                fit.slope, floor
            );
        }
    }
}
