//! `nonsearch_fault` — deterministic seeded fault plans.
//!
//! Chaos testing is only useful here if it preserves the workspace's
//! core invariant: **byte-reproducibility for any `--threads` value**.
//! So a [`FaultPlan`] never rolls dice at injection time — every
//! decision ("does trial 17 panic?", "which bit of file 3 flips?") is a
//! pure function of `(plan seed, index)`, derived with the exact
//! [`SeedSequence::subsequence`] discipline the trial engine uses for
//! trial RNG streams. Two chaos runs with the same plan seed inject
//! the same faults into the same trials and files regardless of worker
//! scheduling, and the `xp chaos` gate can therefore demand that a
//! healed run's cell records be byte-identical to a fault-free run's.
//!
//! The plan covers two fault families:
//!
//! * **Trial faults** ([`TrialFault`]) — worker panics and slow-worker
//!   stalls, consumed by the engine's fault-injection seam
//!   (`nonsearch_engine::install_faults`). Faults fire only on a
//!   trial's *first* attempt, so a `Retry` policy always converges.
//! * **Storage faults** ([`StorageFault`]) — bit flips, truncation,
//!   and file removal applied to stored `.nsg` blobs
//!   ([`corrupt_file`]), exercising the corpus checksum +
//!   quarantine-and-regenerate healing path for real.
//!
//! This crate deliberately has no external dependencies and touches no
//! clocks or environment — a plan is plain data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nonsearch_generators::SeedSequence;
use std::path::Path;

/// Subsequence index of the per-trial fault stream.
pub const TRIAL_STREAM: u64 = 0;
/// Subsequence index of the per-file storage fault stream.
pub const STORAGE_STREAM: u64 = 1;

/// A fault injected into one trial attempt before its body runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialFault {
    /// The worker panics (contained or propagated per the engine's
    /// `FailurePolicy`).
    Panic,
    /// The worker stalls for `ms` milliseconds, simulating a straggler.
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// A corruption applied to one stored blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Flip one bit of the file (index taken modulo the bit length).
    BitFlip {
        /// Absolute bit index to flip.
        bit: u64,
    },
    /// Truncate the file to at most `keep` bytes.
    Truncate {
        /// Bytes to keep from the front.
        keep: usize,
    },
    /// Remove the file entirely (a read error, not just bad bytes).
    Remove,
}

/// A seeded, deterministic fault plan.
///
/// Freshly constructed plans inject nothing; the `with_*` builders
/// switch fault families on. `every = N` means indices whose derived
/// roll is `0 (mod N)` fault — so `every = 1` faults everything and
/// larger values thin the faults out deterministically (which indices
/// fault depends on the seed, not on the index being a multiple of N).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seeds: SeedSequence,
    root: u64,
    panic_every: u64,
    stall_every: u64,
    stall_ms: u64,
    storage_every: u64,
    force_heap: bool,
}

impl FaultPlan {
    /// A plan rooted at `seed` with every fault family disabled.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seeds: SeedSequence::new(seed),
            root: seed,
            panic_every: 0,
            stall_every: 0,
            stall_ms: 0,
            storage_every: 0,
            force_heap: false,
        }
    }

    /// The root seed the plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.root
    }

    /// Enables trial panics on roughly one in `every` trials
    /// (0 disables).
    pub fn with_trial_panics(mut self, every: u64) -> FaultPlan {
        self.panic_every = every;
        self
    }

    /// Enables `ms`-millisecond stalls on roughly one in `every` trials
    /// (0 disables). A trial selected for both a panic and a stall
    /// panics — the harsher fault wins.
    pub fn with_trial_stalls(mut self, every: u64, ms: u64) -> FaultPlan {
        self.stall_every = every;
        self.stall_ms = ms;
        self
    }

    /// Enables storage corruption on roughly one in `every` files
    /// (0 disables).
    pub fn with_storage_faults(mut self, every: u64) -> FaultPlan {
        self.storage_every = every;
        self
    }

    /// Requests that corpus opens force the aligned-heap fallback
    /// instead of `mmap(2)`, exercising the degraded path for real.
    pub fn with_forced_heap(mut self, on: bool) -> FaultPlan {
        self.force_heap = on;
        self
    }

    /// Whether the plan forces the heap fallback for mapped loads.
    pub fn forces_heap(&self) -> bool {
        self.force_heap
    }

    /// Whether the plan injects any trial faults at all.
    pub fn injects_trial_faults(&self) -> bool {
        self.panic_every > 0 || self.stall_every > 0
    }

    /// The fault (if any) for attempt `attempt` of trial `trial`.
    ///
    /// Only attempt 0 ever faults: a retried attempt re-derives the
    /// same trial seed stream and must be allowed to succeed, which is
    /// what makes `FailurePolicy::Retry` aggregates bit-identical to a
    /// fault-free run.
    pub fn trial_fault(&self, trial: usize, attempt: u32) -> Option<TrialFault> {
        if attempt > 0 {
            return None;
        }
        let roll = self.seeds.subsequence(TRIAL_STREAM).child(trial as u64);
        if selected(roll, self.panic_every) {
            return Some(TrialFault::Panic);
        }
        if selected(roll >> 16, self.stall_every) {
            return Some(TrialFault::Stall { ms: self.stall_ms });
        }
        None
    }

    /// The corruption (if any) for the `index`-th stored file of
    /// `len` bytes.
    pub fn storage_fault(&self, index: u64, len: usize) -> Option<StorageFault> {
        let roll = self.seeds.subsequence(STORAGE_STREAM).child(index);
        if !selected(roll, self.storage_every) {
            return None;
        }
        let bits = (len as u64).saturating_mul(8).max(1);
        Some(match (roll >> 8) % 3 {
            0 => StorageFault::BitFlip {
                bit: (roll >> 16) % bits,
            },
            1 => StorageFault::Truncate {
                keep: ((roll >> 16) % (len as u64).max(1)) as usize,
            },
            _ => StorageFault::Remove,
        })
    }
}

/// Deterministic selection: a derived roll `r` is selected at rate
/// `1/every` iff `r % every == 0` (never, when `every` is 0).
fn selected(roll: u64, every: u64) -> bool {
    every > 0 && roll.is_multiple_of(every)
}

/// Applies `fault` to an in-memory blob. `Remove` clears the buffer
/// (the file-level equivalent is deletion — see [`corrupt_file`]).
pub fn apply_storage_fault(bytes: &mut Vec<u8>, fault: StorageFault) {
    match fault {
        StorageFault::BitFlip { bit } => {
            if !bytes.is_empty() {
                let i = ((bit / 8) as usize) % bytes.len();
                bytes[i] ^= 1 << (bit % 8);
            }
        }
        StorageFault::Truncate { keep } => bytes.truncate(keep),
        StorageFault::Remove => bytes.clear(),
    }
}

/// Applies `fault` to the file at `path`: bit flips and truncations
/// rewrite the file in place, `Remove` deletes it.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn corrupt_file(path: &Path, fault: StorageFault) -> std::io::Result<()> {
    if fault == StorageFault::Remove {
        return std::fs::remove_file(path);
    }
    let mut bytes = std::fs::read(path)?;
    apply_storage_fault(&mut bytes, fault);
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_plans_inject_nothing() {
        let plan = FaultPlan::new(7);
        assert!(!plan.injects_trial_faults());
        assert!(!plan.forces_heap());
        for t in 0..200 {
            assert_eq!(plan.trial_fault(t, 0), None);
        }
        for i in 0..200 {
            assert_eq!(plan.storage_fault(i, 4096), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::new(42)
            .with_trial_panics(3)
            .with_storage_faults(2);
        let b = FaultPlan::new(42)
            .with_trial_panics(3)
            .with_storage_faults(2);
        for t in 0..500 {
            assert_eq!(a.trial_fault(t, 0), b.trial_fault(t, 0));
        }
        for i in 0..500 {
            assert_eq!(a.storage_fault(i, 1000), b.storage_fault(i, 1000));
        }
        // A different seed selects different indices.
        let c = FaultPlan::new(43).with_trial_panics(3);
        let picks = |p: &FaultPlan| -> Vec<usize> {
            (0..500)
                .filter(|&t| p.trial_fault(t, 0).is_some())
                .collect()
        };
        assert_ne!(picks(&a), picks(&c));
    }

    #[test]
    fn faults_fire_at_roughly_the_requested_rate() {
        let plan = FaultPlan::new(1).with_trial_panics(4);
        let hits = (0..2000)
            .filter(|&t| plan.trial_fault(t, 0).is_some())
            .count();
        // 1-in-4 over 2000 trials: wide deterministic bounds.
        assert!((300..700).contains(&hits), "{hits} hits");
    }

    #[test]
    fn only_the_first_attempt_faults() {
        let plan = FaultPlan::new(5).with_trial_panics(1);
        for t in 0..50 {
            assert_eq!(plan.trial_fault(t, 0), Some(TrialFault::Panic));
            assert_eq!(plan.trial_fault(t, 1), None);
            assert_eq!(plan.trial_fault(t, 7), None);
        }
    }

    #[test]
    fn stall_carries_the_configured_duration() {
        let plan = FaultPlan::new(5).with_trial_stalls(1, 25);
        let fault = plan.trial_fault(0, 0).expect("every=1 always stalls");
        assert_eq!(fault, TrialFault::Stall { ms: 25 });
        // Panic wins when both families select the same trial.
        let both = FaultPlan::new(5)
            .with_trial_stalls(1, 25)
            .with_trial_panics(1);
        assert_eq!(both.trial_fault(0, 0), Some(TrialFault::Panic));
    }

    #[test]
    fn storage_faults_stay_in_bounds() {
        let plan = FaultPlan::new(9).with_storage_faults(1);
        for i in 0..200 {
            match plan.storage_fault(i, 100).expect("every=1 always faults") {
                StorageFault::BitFlip { bit } => assert!(bit < 800),
                StorageFault::Truncate { keep } => assert!(keep < 100),
                StorageFault::Remove => {}
            }
        }
        // Zero-length files cannot out-of-bounds the apply step.
        let mut empty = Vec::new();
        if let Some(fault) = plan.storage_fault(0, 0) {
            apply_storage_fault(&mut empty, fault);
        }
        assert!(empty.is_empty());
    }

    #[test]
    fn apply_bit_flip_changes_exactly_one_bit() {
        let mut bytes = vec![0u8; 64];
        apply_storage_fault(&mut bytes, StorageFault::BitFlip { bit: 8 * 3 + 5 });
        assert_eq!(bytes[3], 1 << 5);
        assert_eq!(bytes.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        // Flipping again restores the original.
        apply_storage_fault(&mut bytes, StorageFault::BitFlip { bit: 8 * 3 + 5 });
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn corrupt_file_round_trips_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("fault_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        std::fs::write(&path, [0u8; 16]).unwrap();
        corrupt_file(&path, StorageFault::BitFlip { bit: 1 }).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[0], 2);
        corrupt_file(&path, StorageFault::Truncate { keep: 4 }).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 4);
        corrupt_file(&path, StorageFault::Remove).unwrap();
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
