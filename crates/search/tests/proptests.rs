//! Property-based tests: oracle accounting, searcher invariants, the
//! dense view's observational equivalence against a hash-map reference
//! model, and scratch-reuse bit-identity.

use nonsearch_generators::{rng_from_seed, MergedMori};
use nonsearch_graph::{EdgeId, NodeId, UndirectedCsr};
use nonsearch_search::{
    run_strong, run_strong_in, run_weak, run_weak_in, DiscoveredView, SearchScratch, SearchTask,
    SearcherKind, StampedMap, StrongBfs, StrongSearchState, SuccessCriterion, WeakSearchState,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// A connected multigraph via the merged Móri generator.
fn connected_graph(n: usize, m: usize, p: f64, seed: u64) -> UndirectedCsr {
    MergedMori::sample(n, m, p, &mut rng_from_seed(seed))
        .unwrap()
        .undirected()
}

/// The pre-refactor `HashMap`-based view, kept as the reference model:
/// the dense epoch-stamped implementation must agree with it on every
/// observable query after any script of inserts and resolutions.
#[derive(Default)]
struct ReferenceView {
    order: Vec<NodeId>,
    vertices: HashMap<NodeId, Vec<EdgeId>>,
    edges: HashMap<EdgeId, (NodeId, Option<NodeId>)>,
}

impl ReferenceView {
    fn insert_vertex(&mut self, v: NodeId, incident: &[EdgeId]) {
        if self.vertices.contains_key(&v) {
            return;
        }
        for &e in incident {
            match self.edges.get_mut(&e) {
                None => {
                    self.edges.insert(e, (v, None));
                }
                Some((_, other @ None)) => *other = Some(v),
                Some(_) => {}
            }
        }
        self.order.push(v);
        self.vertices.insert(v, incident.to_vec());
    }

    fn resolve_edge(&mut self, u: NodeId, e: EdgeId, other: NodeId) {
        match self.edges.get_mut(&e) {
            // Resolving re-anchors on the requesting endpoint `u`: the
            // recorded first sighting may be this request's *far*
            // endpoint, and keeping it would store the degenerate pair
            // {other, other}.
            Some(entry) if entry.1.is_none() => *entry = (u, Some(other)),
            Some(_) => {}
            None => {
                self.edges.insert(e, (u, Some(other)));
            }
        }
    }

    fn contains(&self, v: NodeId) -> bool {
        self.vertices.contains_key(&v)
    }

    fn degree_of(&self, v: NodeId) -> Option<usize> {
        self.vertices.get(&v).map(Vec::len)
    }

    fn is_resolved(&self, e: EdgeId) -> bool {
        self.edges.get(&e).is_some_and(|(_, other)| other.is_some())
    }

    fn other_endpoint(&self, u: NodeId, e: EdgeId) -> Option<NodeId> {
        let &(a, b) = self.edges.get(&e)?;
        match (a, b?) {
            (a, b) if a == u => Some(b),
            (a, b) if b == u => Some(a),
            _ => None,
        }
    }

    fn unexplored(&self, v: NodeId) -> Vec<EdgeId> {
        self.vertices.get(&v).map_or(Vec::new(), |incident| {
            incident
                .iter()
                .copied()
                .filter(|&e| !self.is_resolved(e))
                .collect()
        })
    }
}

/// One scripted operation against both views.
#[derive(Debug, Clone)]
enum Op {
    Insert(usize, Vec<usize>),
    Resolve(usize, usize, usize),
    Reset,
}

/// One scripted operation against a raw [`StampedMap`] and a `HashMap`.
#[derive(Debug, Clone)]
enum MapOp {
    Insert(usize, u8),
    Put(usize, u8),
    Reset,
}

fn map_op_strategy(indices: usize) -> impl Strategy<Value = MapOp> {
    (0usize..8, 0..indices, 0u8..=255).prop_map(|(sel, i, x)| match sel {
        0..=2 => MapOp::Insert(i, x),
        3..=5 => MapOp::Put(i, x),
        _ => MapOp::Reset,
    })
}

fn op_strategy(nodes: usize, edges: usize) -> impl Strategy<Value = Op> {
    (
        0usize..9,
        0..nodes,
        proptest::collection::vec(0..edges, 0..6),
        0..edges,
        0..nodes,
    )
        .prop_map(|(sel, v, incident, e, w)| match sel {
            0..=3 => Op::Insert(v, incident),
            4..=7 => Op::Resolve(v, e, w),
            _ => Op::Reset,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_view_matches_the_hashmap_reference_model(
        ops in proptest::collection::vec(op_strategy(12, 16), 1..60),
    ) {
        let mut dense = DiscoveredView::new();
        let mut reference = ReferenceView::default();
        for op in &ops {
            match op {
                Op::Insert(v, incident) => {
                    let incident: Vec<EdgeId> =
                        incident.iter().map(|&e| EdgeId::new(e)).collect();
                    dense.insert_vertex(NodeId::new(*v), &incident);
                    reference.insert_vertex(NodeId::new(*v), &incident);
                }
                Op::Resolve(u, e, w) => {
                    dense.resolve_edge(NodeId::new(*u), EdgeId::new(*e), NodeId::new(*w));
                    reference.resolve_edge(NodeId::new(*u), EdgeId::new(*e), NodeId::new(*w));
                }
                Op::Reset => {
                    dense.reset();
                    reference = ReferenceView::default();
                }
            }
            // After every step the two implementations agree on every
            // observable query over the whole id space.
            prop_assert_eq!(dense.len(), reference.order.len());
            prop_assert_eq!(dense.discovered(), &reference.order[..]);
            for v in (0..12).map(NodeId::new) {
                prop_assert_eq!(dense.contains(v), reference.contains(v));
                prop_assert_eq!(dense.degree_of(v), reference.degree_of(v));
                prop_assert_eq!(
                    dense.unexplored_edges_of(v).collect::<Vec<_>>(),
                    reference.unexplored(v)
                );
                if let Some(info) = dense.vertex(v) {
                    prop_assert_eq!(info.incident(), &reference.vertices[&v][..]);
                }
            }
            for e in (0..16).map(EdgeId::new) {
                prop_assert_eq!(dense.is_resolved(e), reference.is_resolved(e));
                for u in (0..12).map(NodeId::new) {
                    prop_assert_eq!(
                        dense.other_endpoint(u, e),
                        reference.other_endpoint(u, e)
                    );
                }
            }
        }
    }

    #[test]
    fn stamped_map_reset_soak_matches_a_hashmap_across_the_wrap(
        ops in proptest::collection::vec(map_op_strategy(24), 1..80),
    ) {
        // Start at the epoch-wrap boundary so the very first reset takes
        // the zero-fill path; every subsequent reset takes the bump
        // path. The map must behave exactly like a freshly-cleared
        // HashMap throughout.
        let mut dense: StampedMap<u8> = StampedMap::near_wrap();
        let mut reference: HashMap<usize, u8> = HashMap::new();
        for op in &ops {
            match *op {
                MapOp::Insert(i, x) => {
                    let inserted = dense.insert(i, x);
                    prop_assert_eq!(inserted, !reference.contains_key(&i));
                    reference.entry(i).or_insert(x);
                }
                MapOp::Put(i, x) => {
                    dense.put(i, x);
                    reference.insert(i, x);
                }
                MapOp::Reset => {
                    dense.reset();
                    reference.clear();
                }
            }
            prop_assert_eq!(dense.len(), reference.len());
            prop_assert_eq!(dense.is_empty(), reference.is_empty());
            for i in 0..24 {
                prop_assert_eq!(dense.contains(i), reference.contains_key(&i));
                prop_assert_eq!(dense.get(i), reference.get(&i));
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_state(
        n in 4usize..50,
        p in 0.0f64..=1.0,
        seed in 0u64..300,
    ) {
        let graph = connected_graph(n, 1, p, seed);
        // One scratch and one searcher instance serve consecutive trials
        // with different tasks; every outcome must equal a fresh-state
        // run with the same seed.
        let mut scratch = SearchScratch::new();
        for kind in [
            SearcherKind::BfsFlood,
            SearcherKind::HighDegree,
            SearcherKind::RandomWalk,
            SearcherKind::SimStrongHighDegree,
        ] {
            let mut pooled = kind.build();
            for target in [n - 1, n / 2, 0] {
                let task = SearchTask::new(NodeId::from_label(1), NodeId::new(target))
                    .with_budget(200 * n);
                let reused = run_weak_in(
                    &mut scratch, &graph, &task, &mut *pooled, &mut rng_from_seed(seed ^ 0x5C),
                ).unwrap();
                let fresh = run_weak(
                    &graph, &task, &mut *kind.build(), &mut rng_from_seed(seed ^ 0x5C),
                ).unwrap();
                prop_assert_eq!(reused, fresh, "{} target {}", kind, target);
            }
        }
        // Same property for the strong oracle.
        let mut strong = StrongBfs::new();
        for target in [n - 1, 0] {
            let task = SearchTask::new(NodeId::from_label(1), NodeId::new(target))
                .with_budget(200 * n);
            let reused = run_strong_in(
                &mut scratch, &graph, &task, &mut strong, &mut rng_from_seed(seed),
            ).unwrap();
            let fresh = run_strong(
                &graph, &task, &mut StrongBfs::new(), &mut rng_from_seed(seed),
            ).unwrap();
            prop_assert_eq!(reused, fresh, "strong target {}", target);
        }
    }

    #[test]
    fn every_searcher_finds_every_target_on_connected_graphs(
        n in 2usize..80,
        m in 1usize..3,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
        target_sel in 0usize..1000,
    ) {
        let graph = connected_graph(n, m, p, seed);
        let target = NodeId::new(target_sel % n);
        let task = SearchTask::new(NodeId::from_label(1), target)
            .with_budget(200 * n * m);
        let mut rng = rng_from_seed(seed ^ 0xABCD);
        for kind in SearcherKind::all() {
            let mut searcher = kind.build();
            let outcome = run_weak(&graph, &task, &mut *searcher, &mut rng).unwrap();
            prop_assert!(
                outcome.found,
                "{kind} missed {target:?} on n={n}, m={m}, p={p}"
            );
        }
    }

    #[test]
    fn request_counts_are_monotone_in_discovery(
        n in 2usize..60,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
    ) {
        // Discovered vertices ≤ requests + 1 always (each request reveals
        // at most one new vertex).
        let graph = connected_graph(n, 1, p, seed);
        let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n))
            .with_budget(100 * n);
        let mut rng = rng_from_seed(seed ^ 0xBEEF);
        for kind in SearcherKind::all() {
            let mut searcher = kind.build();
            let o = run_weak(&graph, &task, &mut *searcher, &mut rng).unwrap();
            prop_assert!(o.discovered <= o.requests + 1, "{kind}");
        }
    }

    #[test]
    fn neighbor_criterion_never_costs_more(
        n in 3usize..60,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
    ) {
        let graph = connected_graph(n, 1, p, seed);
        // Deterministic searcher ⇒ comparable runs.
        let strict_task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n))
            .with_budget(100 * n);
        let relaxed_task = strict_task.with_criterion(SuccessCriterion::ReachNeighbor);
        for kind in [SearcherKind::BfsFlood, SearcherKind::HighDegree, SearcherKind::Dfs] {
            let mut a = kind.build();
            let strict =
                run_weak(&graph, &strict_task, &mut *a, &mut rng_from_seed(1)).unwrap();
            let mut b = kind.build();
            let relaxed =
                run_weak(&graph, &relaxed_task, &mut *b, &mut rng_from_seed(1)).unwrap();
            prop_assert!(relaxed.requests <= strict.requests, "{kind}");
        }
    }

    #[test]
    fn weak_oracle_counts_every_request(
        n in 2usize..40,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
        steps in 1usize..50,
    ) {
        let graph = connected_graph(n, 1, p, seed);
        let mut scratch = SearchScratch::new();
        let mut state =
            WeakSearchState::new_in(&mut scratch, &graph, NodeId::from_label(1)).unwrap();
        let mut issued = 0usize;
        let mut rng = rng_from_seed(seed);
        use rand::Rng;
        for _ in 0..steps {
            // Pick any discovered vertex with positive degree.
            let order = state.view().discovered().to_vec();
            let v = order[rng.gen_range(0..order.len())];
            let info = state.view().vertex(v).unwrap();
            if info.degree() == 0 {
                continue;
            }
            let e = info.incident()[rng.gen_range(0..info.degree())];
            state.request(v, e).unwrap();
            issued += 1;
            prop_assert_eq!(state.requests(), issued);
        }
    }

    #[test]
    fn strong_oracle_reveals_whole_neighborhoods(
        n in 2usize..40,
        m in 1usize..3,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
    ) {
        let graph = connected_graph(n, m, p, seed);
        let mut scratch = SearchScratch::new();
        let mut state =
            StrongSearchState::new_in(&mut scratch, &graph, NodeId::from_label(1)).unwrap();
        let revealed = state.request(NodeId::from_label(1)).unwrap().to_vec();
        prop_assert_eq!(revealed.len(), graph.degree(NodeId::from_label(1)));
        for v in revealed {
            prop_assert!(state.view().contains(v));
            prop_assert_eq!(state.view().degree_of(v), Some(graph.degree(v)));
        }
    }

    #[test]
    fn strong_and_weak_bfs_agree_on_reachability(
        n in 2usize..60,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
        target_sel in 0usize..1000,
    ) {
        let graph = connected_graph(n, 1, p, seed);
        let target = NodeId::new(target_sel % n);
        let task = SearchTask::new(NodeId::from_label(1), target)
            .with_budget(100 * n);
        let weak = run_weak(
            &graph,
            &task,
            &mut *SearcherKind::BfsFlood.build(),
            &mut rng_from_seed(0),
        )
        .unwrap();
        let strong =
            run_strong(&graph, &task, &mut StrongBfs::new(), &mut rng_from_seed(0))
                .unwrap();
        prop_assert_eq!(weak.found, strong.found);
        // The strong oracle is at least as informative per request.
        prop_assert!(strong.requests <= weak.requests.max(1));
    }
}
