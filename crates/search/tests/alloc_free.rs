//! Proves the view/frontier hot path is allocation-free in steady
//! state: once a `SearchScratch` and a pooled searcher have served one
//! trial on a graph size, further trials on that size perform **zero**
//! heap allocations.
//!
//! The shared counting global allocator (`nonsearch_alloc_counter`,
//! also installed by the `oracle_ops` bench so both harnesses measure
//! the same thing) makes the claim checkable rather than aspirational.
//! The counter is per-thread (concurrent libtest threads cannot
//! pollute a measurement window), so everything lives in one `#[test]`
//! purely to keep the warm-up → steady-state sequencing explicit.

use nonsearch_alloc_counter::{allocations, CountingAllocator};
use nonsearch_generators::{rng_from_seed, MergedMori};
use nonsearch_graph::NodeId;
use nonsearch_search::{
    run_strong_in, run_weak_in, SearchScratch, SearchTask, SearcherKind, StrongBfs, StrongSearcher,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_trials_allocate_nothing() {
    let n = 512;
    let graph = MergedMori::sample(n, 2, 0.5, &mut rng_from_seed(3))
        .unwrap()
        .undirected();
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(50 * n);

    let mut scratch = SearchScratch::new();

    // The deterministic weak searchers built on the dense view/frontier
    // path. (Walk searchers draw from the RNG; the vendored ChaCha is
    // alloc-free too, so RandomWalk rides along as a bonus check.)
    for kind in [
        SearcherKind::BfsFlood,
        SearcherKind::Dfs,
        SearcherKind::HighDegree,
        SearcherKind::GreedyId,
        SearcherKind::OldestFirst,
        SearcherKind::RandomWalk,
        SearcherKind::SimStrongHighDegree,
    ] {
        let mut searcher = kind.build();
        // Warm-up trial: arrays grow to the graph size, heaps/queues
        // reach their high-water marks.
        let mut rng = rng_from_seed(11);
        let warm = run_weak_in(&mut scratch, &graph, &task, &mut *searcher, &mut rng).unwrap();
        assert!(warm.found, "{kind}");

        // Steady state: bit-identical outcome, zero allocations.
        let mut rng = rng_from_seed(11);
        let before = allocations();
        let steady = run_weak_in(&mut scratch, &graph, &task, &mut *searcher, &mut rng).unwrap();
        let allocated = allocations() - before;
        assert_eq!(steady, warm, "{kind}: scratch reuse changed the outcome");
        assert_eq!(
            allocated, 0,
            "{kind}: steady-state trial performed {allocated} heap allocations"
        );
    }

    // The strong oracle's expansion/answer buffers are pooled too.
    let mut strong = StrongBfs::new();
    let mut rng = rng_from_seed(13);
    let warm = run_strong_in(&mut scratch, &graph, &task, &mut strong, &mut rng).unwrap();
    let mut rng = rng_from_seed(13);
    let before = allocations();
    let steady = run_strong_in(&mut scratch, &graph, &task, &mut strong, &mut rng).unwrap();
    let allocated = allocations() - before;
    assert_eq!(steady, warm);
    assert_eq!(
        allocated, 0,
        "strong-bfs: steady-state trial performed {allocated} heap allocations"
    );
}

#[test]
fn steady_state_trials_allocate_nothing_with_metrics_enabled() {
    // The observability counters ride the hot path for free: harvesting
    // a full `Metrics` delta per trial — outcome counters, cumulative
    // view/frontier deltas, and a log2 histogram sample — is plain u64
    // arithmetic into a fixed-size struct, so the steady-state
    // allocation count stays exactly zero with metrics enabled. The
    // same holds for the phase timers (`Instant` reads folded into a
    // fixed-shape `PhaseTimes`) and for sampling the per-thread
    // allocation counter itself — everything an observed engine worker
    // does per trial.
    use nonsearch_obs::{elapsed_ns, Metrics, PhaseTimes, ResourceSample};
    use std::time::Instant;

    let n = 512;
    let graph = MergedMori::sample(n, 2, 0.5, &mut rng_from_seed(3))
        .unwrap()
        .undirected();
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(50 * n);

    let mut scratch = SearchScratch::new();
    let mut metrics = Metrics::new();
    let mut phases = PhaseTimes::default();

    for kind in [
        SearcherKind::BfsFlood,
        SearcherKind::Dfs,
        SearcherKind::HighDegree,
        SearcherKind::GreedyId,
        SearcherKind::OldestFirst,
        SearcherKind::RandomWalk,
        SearcherKind::SimStrongHighDegree,
    ] {
        let mut searcher = kind.build();
        let mut rng = rng_from_seed(11);
        let warm = run_weak_in(&mut scratch, &graph, &task, &mut *searcher, &mut rng).unwrap();
        assert!(warm.found, "{kind}");

        // Steady state, with the full per-trial metrics harvest inside
        // the measurement window — exactly what the engine's metered
        // runners do per trial.
        let mut rng = rng_from_seed(11);
        let before = allocations();
        let mut delta = Metrics::new();
        let resolutions_before = scratch.view().edge_resolutions();
        let resets_before = scratch.view().resets();
        let rescans_before = searcher.frontier_rescans();
        let search_start = Instant::now();
        let steady = run_weak_in(&mut scratch, &graph, &task, &mut *searcher, &mut rng).unwrap();
        let search_ns = elapsed_ns(search_start);
        let harvest_start = Instant::now();
        delta.requests += steady.requests as u64;
        delta.discoveries += steady.discovered as u64;
        delta.frontier_rescans += searcher.frontier_rescans() - rescans_before;
        delta.edge_resolutions += scratch.view().edge_resolutions() - resolutions_before;
        delta.scratch_resets += scratch.view().resets() - resets_before;
        delta.observe_trial_requests(steady.requests as u64);
        delta.trials = 1;
        metrics.merge(&delta);
        phases.search_ns += search_ns;
        phases.harvest_ns += elapsed_ns(harvest_start);
        // Reading the per-thread allocation counter mid-window is also
        // free — the observed runner samples it once per trial.
        let _mid_window_sample = allocations();
        let allocated = allocations() - before;
        assert_eq!(steady, warm, "{kind}: metrics harvest changed the outcome");
        assert_eq!(
            allocated, 0,
            "{kind}: metered steady-state trial performed {allocated} heap allocations"
        );
        assert!(delta.requests > 0, "{kind}: empty metrics delta");
        assert_eq!(delta.scratch_resets, 1, "{kind}");
    }

    assert_eq!(metrics.trials, 7);
    assert_eq!(metrics.trial_requests.total(), 7);
    assert!(metrics.requests > 0);
    assert!(metrics.discoveries > 0);

    // Phase timers accumulated real time inside the zero-alloc windows,
    // and the fixed-shape record shows exactly what ran: search and
    // harvest only, never generate/load/merge (no engine in this test).
    assert!(phases.search_ns > 0, "no search time recorded");
    let named = phases.named();
    assert_eq!(named.len(), 5);
    assert_eq!(named[0].0, "phase_generate_ns");
    assert_eq!(named[0].1, 0);
    assert_eq!(named[1], ("phase_load_ns", 0));
    assert_eq!(named[4], ("phase_merge_ns", 0));

    // `ResourceSample::current()` reads /proc and *does* allocate — it
    // belongs outside the trial windows, once per cell, which is where
    // the engine calls it. Sanity-check it works from a test harness.
    let sample = ResourceSample::current();
    if cfg!(target_os = "linux") {
        assert!(sample.peak_rss_bytes > 0, "peak RSS not sampled");
    }
}

#[test]
fn presized_first_trials_allocate_nothing() {
    // The stronger claim: with a scratch pre-sized via `for_graph_size`
    // and a searcher pre-sized via the `reserve` hook, even the *first*
    // trial performs zero heap allocations — no warm-up required. This
    // is what used to fail through `FrontierCursors`, which had no
    // `reserve` and grew its stamp/cursor arrays inside the request
    // loop of trial 1.
    let n = 512;
    let graph = MergedMori::sample(n, 2, 0.5, &mut rng_from_seed(3))
        .unwrap()
        .undirected();
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(50 * n);
    let nodes = graph.node_count();
    let edges = graph.edge_count();

    for kind in [
        SearcherKind::BfsFlood,
        SearcherKind::Dfs,
        SearcherKind::HighDegree,
        SearcherKind::GreedyId,
        SearcherKind::OldestFirst,
        SearcherKind::RandomWalk,
        SearcherKind::SimStrongHighDegree,
    ] {
        let mut scratch = SearchScratch::for_graph_size(nodes, edges);
        let mut searcher = kind.build();
        searcher.reserve(nodes, edges);
        let mut rng = rng_from_seed(11);
        let before = allocations();
        let first = run_weak_in(&mut scratch, &graph, &task, &mut *searcher, &mut rng).unwrap();
        let allocated = allocations() - before;
        assert!(first.found, "{kind}");
        assert_eq!(
            allocated, 0,
            "{kind}: pre-sized first trial performed {allocated} heap allocations"
        );
        // Pre-sizing is invisible to the outcome.
        let mut rng = rng_from_seed(11);
        let unsized_run = run_weak_in(
            &mut SearchScratch::new(),
            &graph,
            &task,
            &mut *kind.build(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(first, unsized_run, "{kind}: pre-sizing changed the outcome");
    }

    let mut scratch = SearchScratch::for_graph_size(nodes, edges);
    let mut strong = StrongBfs::new();
    strong.reserve(nodes, edges);
    let mut rng = rng_from_seed(13);
    let before = allocations();
    let first = run_strong_in(&mut scratch, &graph, &task, &mut strong, &mut rng).unwrap();
    let allocated = allocations() - before;
    assert_eq!(
        allocated, 0,
        "strong-bfs: pre-sized first trial performed {allocated} heap allocations"
    );
    let mut rng = rng_from_seed(13);
    let unsized_run = run_strong_in(
        &mut SearchScratch::new(),
        &graph,
        &task,
        &mut StrongBfs::new(),
        &mut rng,
    )
    .unwrap();
    assert_eq!(first, unsized_run);
}
