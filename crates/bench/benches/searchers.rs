//! Searcher throughput: one full search per iteration for each suite
//! member on a fixed Móri graph, in both execution modes — the classic
//! per-run state (`run_weak`) and the engine's pooled per-worker
//! scratch (`run_weak_in`), so the scratch win is visible per searcher.

use criterion::{criterion_group, criterion_main, Criterion};
use nonsearch_generators::{rng_from_seed, MoriTree};
use nonsearch_graph::NodeId;
use nonsearch_search::{run_weak, run_weak_in, SearchScratch, SearchTask, SearcherKind};

fn bench_searchers(c: &mut Criterion) {
    let n = 4096;
    let tree = MoriTree::sample(n, 0.5, &mut rng_from_seed(1)).unwrap();
    let graph = tree.undirected();
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(n)).with_budget(50 * n);

    let mut group = c.benchmark_group("searchers_mori_4096");
    group.sample_size(10);
    for kind in SearcherKind::all() {
        group.bench_function(kind.name(), |b| {
            let mut searcher = kind.build();
            let mut rng = rng_from_seed(7);
            b.iter(|| run_weak(&graph, &task, &mut *searcher, &mut rng).unwrap());
        });
    }
    group.finish();

    // Same suite on a pooled scratch: what a Monte-Carlo worker's
    // steady state looks like (outcomes are bit-identical; only the
    // per-trial setup cost differs).
    let mut group = c.benchmark_group("searchers_mori_4096_pooled");
    group.sample_size(10);
    for kind in SearcherKind::all() {
        group.bench_function(kind.name(), |b| {
            let mut scratch = SearchScratch::new();
            let mut searcher = kind.build();
            let mut rng = rng_from_seed(7);
            b.iter(|| run_weak_in(&mut scratch, &graph, &task, &mut *searcher, &mut rng).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_searchers);
criterion_main!(benches);
