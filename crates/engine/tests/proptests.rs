//! Property-based tests: engine determinism and seed-sharding safety
//! under arbitrary parameters.

use nonsearch_engine::{
    install_faults, parse_json, run_cell, run_lanes, trial_seeds, FailurePolicy, FaultHook,
    FaultInjection, InjectedFault, JsonValue, TrialMeasure,
};
use nonsearch_fault::{FaultPlan, TrialFault};
use nonsearch_generators::SeedSequence;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// A deterministic synthetic measurement: everything derives from the
/// trial's seed stream, exactly like a real graph-sampling trial.
fn synthetic_measure(seeds: &SeedSequence) -> TrialMeasure {
    let draw = seeds.child(0);
    TrialMeasure::new((draw % 10_000) as f64 / 7.0, !draw.is_multiple_of(5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharding trials across workers can never make two trials share a
    /// seed: the per-trial roots (and the graph/search child streams
    /// hanging off them) are pairwise distinct across the whole sweep.
    #[test]
    fn sharded_trial_seeds_never_collide(
        root in 0u64..u64::MAX,
        trials in 1usize..1500,
    ) {
        let seeds = SeedSequence::new(root);
        let mut roots = HashSet::with_capacity(trials);
        let mut child_streams = HashSet::with_capacity(2 * trials);
        for t in 0..trials {
            let trial = trial_seeds(&seeds, t);
            prop_assert!(roots.insert(trial.root()), "trial {t} reuses a root");
            // child 0 seeds the graph sampler, child 1 the searcher.
            prop_assert!(child_streams.insert(trial.child(0)));
            prop_assert!(child_streams.insert(trial.child(1)));
        }
        prop_assert_eq!(roots.len(), trials);
        prop_assert_eq!(child_streams.len(), 2 * trials);
    }

    /// The aggregate of a cell is bit-identical no matter how many
    /// workers the trials were sharded over.
    #[test]
    fn aggregates_do_not_depend_on_worker_count(
        root in 0u64..u64::MAX,
        trials in 1usize..200,
        threads in 2usize..9,
    ) {
        let seeds = SeedSequence::new(root);
        let single = run_cell(trials, 1, &seeds, |_, s| synthetic_measure(&s));
        let sharded = run_cell(trials, threads, &seeds, |_, s| synthetic_measure(&s));
        prop_assert_eq!(single, sharded);
        prop_assert_eq!(single.count(), trials as u64);
    }

    /// Multi-lane cells aggregate every lane independently and
    /// deterministically.
    #[test]
    fn lanes_are_schedule_independent(
        root in 0u64..u64::MAX,
        trials in 1usize..100,
        lanes in 1usize..6,
    ) {
        let seeds = SeedSequence::new(root);
        let run = |threads: usize| {
            run_lanes(trials, lanes, threads, &seeds, |_, s| {
                (0..lanes)
                    .map(|lane| {
                        let draw = s.child(10 + lane as u64);
                        TrialMeasure::new((draw % 1000) as f64, draw % 2 == 0)
                    })
                    .collect()
            })
        };
        let a = run(1);
        let b = run(4);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), lanes);
        for lane in &a {
            prop_assert_eq!(lane.count(), trials as u64);
        }
    }

    /// `FailurePolicy::Retry` is invisible in the aggregates: a cell
    /// whose trials panic per an arbitrary seeded fault plan and are
    /// retried produces bit-identical results to a fault-free
    /// single-thread run, for any worker count.
    #[test]
    fn retried_aggregates_are_bit_identical_to_fault_free(
        root in 0u64..u64::MAX,
        plan_seed in 0u64..u64::MAX,
        trials in 1usize..60,
        threads in 1usize..5,
        panic_every in 1u64..4,
    ) {
        let seeds = SeedSequence::new(root);
        let reference = run_cell(trials, 1, &seeds, |_, s| synthetic_measure(&s));

        let plan = FaultPlan::new(plan_seed).with_trial_panics(panic_every);
        let hook: FaultHook = Arc::new(move |trial, attempt| {
            plan.trial_fault(trial, attempt).map(|fault| match fault {
                TrialFault::Panic => InjectedFault::Panic,
                TrialFault::Stall { ms } => InjectedFault::Stall { ms },
            })
        });
        let scope = install_faults(FaultInjection {
            policy: FailurePolicy::Retry { max: 3 },
            hook: Some(hook),
            cell_deadline_ms: None,
        });
        let retried = run_cell(trials, threads, &seeds, |_, s| synthetic_measure(&s));
        drop(scope);

        prop_assert_eq!(reference, retried);
        prop_assert_eq!(retried.count(), trials as u64);
    }

    /// JSON documents built from arbitrary scalars round-trip through
    /// the serializer and parser.
    #[test]
    fn json_scalars_round_trip(
        ints in proptest::collection::vec(-1_000_000i64..1_000_000, 0..8),
        text_seed in 0u64..1_000_000,
        flag in 0u8..2,
    ) {
        // Exercise escaping: quotes, backslashes, newlines, controls.
        let text = format!("run \"{text_seed}\" \\ tab\t nl\n ctrl\u{1} ✓");
        let fractions: Vec<JsonValue> = ints
            .iter()
            .map(|&i| JsonValue::Float(i as f64 / 16.0))
            .collect();
        let doc = JsonValue::object(vec![
            ("ints", JsonValue::from(ints.clone())),
            ("floats", JsonValue::Array(fractions)),
            ("text", JsonValue::from(text.as_str())),
            ("flag", JsonValue::from(flag == 1)),
        ]);
        let parsed = parse_json(&doc.to_string());
        prop_assert_eq!(parsed.as_ref(), Ok(&doc));
    }
}
