//! Degree sequences and degree histograms.

use crate::{NodeId, UndirectedCsr};

/// Undirected degree sequence, indexed by vertex.
pub fn degree_sequence(graph: &UndirectedCsr) -> Vec<usize> {
    (0..graph.node_count())
        .map(|i| graph.degree(NodeId::new(i)))
        .collect()
}

/// Histogram of undirected degrees: entry `d` holds the number of vertices
/// of degree exactly `d`.
///
/// The returned vector has length `max_degree + 1` (empty for an empty
/// graph).
pub fn degree_histogram(graph: &UndirectedCsr) -> Vec<usize> {
    let seq = degree_sequence(graph);
    let max = seq.iter().copied().max().unwrap_or(0);
    if graph.node_count() == 0 {
        return Vec::new();
    }
    let mut hist = vec![0usize; max + 1];
    for d in seq {
        hist[d] += 1;
    }
    hist
}

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m/n`).
    pub mean: f64,
    /// Population variance of the degrees.
    pub variance: f64,
}

impl DegreeStats {
    /// Computes degree statistics for `graph`.
    ///
    /// Returns `None` for the empty graph.
    pub fn of(graph: &UndirectedCsr) -> Option<DegreeStats> {
        let seq = degree_sequence(graph);
        if seq.is_empty() {
            return None;
        }
        let n = seq.len() as f64;
        let min = *seq.iter().min().expect("non-empty");
        let max = *seq.iter().max().expect("non-empty");
        let mean = seq.iter().map(|&d| d as f64).sum::<f64>() / n;
        let variance = seq.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n;
        Some(DegreeStats {
            min,
            max,
            mean,
            variance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedCsr;

    #[test]
    fn star_degrees() {
        let g = UndirectedCsr::from_edges(5, (1..5).map(|i| (0, i))).unwrap();
        assert_eq!(degree_sequence(&g), vec![4, 1, 1, 1, 1]);
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = UndirectedCsr::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn empty_graph_histogram() {
        let g = UndirectedCsr::from_edges(0, []).unwrap();
        assert!(degree_histogram(&g).is_empty());
        assert!(DegreeStats::of(&g).is_none());
    }

    #[test]
    fn stats_on_regular_graph() {
        // 4-cycle: all degrees 2, variance 0.
        let g = UndirectedCsr::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let s = DegreeStats::of(&g).unwrap();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.variance.abs() < 1e-12);
    }

    #[test]
    fn mean_is_2m_over_n() {
        let g =
            UndirectedCsr::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
        let s = DegreeStats::of(&g).unwrap();
        assert!((s.mean - 2.0 * 6.0 / 5.0).abs() < 1e-12);
    }
}
