//! Error type for graph operations.

use crate::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id referred to a vertex that does not exist.
    NodeOutOfBounds {
        /// The offending vertex.
        node: NodeId,
        /// Current number of vertices.
        node_count: usize,
    },
    /// An edge id referred to an edge that does not exist.
    EdgeOutOfBounds {
        /// The offending edge.
        edge: EdgeId,
        /// Current number of edges.
        edge_count: usize,
    },
    /// An incident-edge slot index was out of range for the vertex.
    IncidenceOutOfBounds {
        /// The vertex whose incidence list was indexed.
        node: NodeId,
        /// The requested slot.
        slot: usize,
        /// The vertex degree.
        degree: usize,
    },
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// A malformed textual edge list was encountered while parsing.
    ParseEdgeList {
        /// One-based line number of the malformed record.
        line: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// Raw CSR buffers handed to
    /// [`UndirectedCsr::from_raw_parts`](crate::UndirectedCsr::from_raw_parts)
    /// were internally inconsistent.
    InvalidCsr {
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "vertex {node:?} out of bounds (graph has {node_count} vertices)"
                )
            }
            GraphError::EdgeOutOfBounds { edge, edge_count } => {
                write!(
                    f,
                    "edge {edge:?} out of bounds (graph has {edge_count} edges)"
                )
            }
            GraphError::IncidenceOutOfBounds { node, slot, degree } => {
                write!(
                    f,
                    "incidence slot {slot} out of bounds for vertex {node:?} of degree {degree}"
                )
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::ParseEdgeList { line, reason } => {
                write!(f, "malformed edge list at line {line}: {reason}")
            }
            GraphError::InvalidCsr { reason } => {
                write!(f, "inconsistent CSR buffers: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId::new(9),
            node_count: 5,
        };
        assert!(e.to_string().contains("v10"));
        assert!(e.to_string().contains("5 vertices"));

        let e = GraphError::EdgeOutOfBounds {
            edge: EdgeId::new(3),
            edge_count: 2,
        };
        assert!(e.to_string().contains("e3"));

        let e = GraphError::IncidenceOutOfBounds {
            node: NodeId::new(0),
            slot: 7,
            degree: 3,
        };
        assert!(e.to_string().contains("slot 7"));

        assert!(!GraphError::EmptyGraph.to_string().is_empty());

        let e = GraphError::ParseEdgeList {
            line: 4,
            reason: "expected two fields".into(),
        };
        assert!(e.to_string().contains("line 4"));

        let e = GraphError::InvalidCsr {
            reason: "offsets must start at 0".into(),
        };
        assert!(e.to_string().contains("offsets must start at 0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
