//! Empirical searchability certification.
//!
//! The theorems quantify over *all* local algorithms; empirically we
//! approximate that by racing a diverse suite of searchers over a size
//! sweep and fitting the scaling exponent of the best one. A model is
//! consistent with the paper's non-searchability claim when even the
//! best measured exponent stays near (or above) `1/2` — and a navigable
//! contrast (e.g. a path-structured label metric) would show up as an
//! exponent near zero.

use crate::model::GraphModel;
use nonsearch_analysis::{fit_log_log, LinearFit, Table};
use nonsearch_engine::{resolved_workers, run_lanes_observed, GraphSource, TrialMeasure, TrialObs};
use nonsearch_generators::SeedSequence;
use nonsearch_graph::NodeId;
use nonsearch_obs::{elapsed_ns, Metrics, PhaseTimes, ResourceSample, Tracer};
use nonsearch_search::{
    run_weak_in, SearchScratch, SearchTask, SearcherKind, SuccessCriterion, WeakSearcher,
};
use std::fmt;

/// Configuration of a certification sweep.
#[derive(Debug, Clone)]
pub struct CertifyConfig {
    /// Graph sizes to sweep (the target is always the newest vertex).
    pub sizes: Vec<usize>,
    /// Independent graph samples per size.
    pub trials: usize,
    /// Root seed; every (size, trial, searcher) cell derives its own
    /// stream, so reports are reproducible bit-for-bit.
    pub seed: u64,
    /// The searcher suite to race.
    pub searchers: Vec<SearcherKind>,
    /// Success criterion passed to the runner.
    pub criterion: SuccessCriterion,
    /// Request budget per run, as a multiple of the graph size.
    pub budget_multiplier: usize,
    /// Worker threads for the trial engine (`0` = all cores). Results
    /// are bit-identical for any value.
    pub threads: usize,
    /// Span tracer for `size-cell` / `trial-batch` / `trial` scopes;
    /// disabled by default (every scope then costs one `Option` check).
    /// Never consulted by the measurement path itself, so enabling it
    /// cannot perturb the deterministic aggregates.
    pub tracer: Tracer,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            sizes: vec![512, 1024, 2048, 4096, 8192],
            trials: 12,
            seed: 0xC0FFEE,
            searchers: SearcherKind::informed().to_vec(),
            criterion: SuccessCriterion::DiscoverTarget,
            budget_multiplier: 50,
            threads: 0,
            tracer: Tracer::disabled(),
        }
    }
}

/// One measured point of an algorithm's scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Requested model size.
    pub n: usize,
    /// Mean request count over trials.
    pub mean_requests: f64,
    /// 95% confidence half-width of the mean.
    pub ci95: f64,
    /// Fraction of trials that found the target within budget.
    pub success_rate: f64,
}

/// An algorithm's measured scaling across the size sweep.
#[derive(Debug, Clone)]
pub struct AlgorithmScaling {
    /// Which searcher.
    pub kind: SearcherKind,
    /// One point per size.
    pub points: Vec<ScalingPoint>,
    /// Log–log fit of mean requests vs. size (`None` if degenerate).
    pub fit: Option<LinearFit>,
}

impl AlgorithmScaling {
    /// The fitted scaling exponent, if available.
    pub fn exponent(&self) -> Option<f64> {
        self.fit.map(|f| f.slope)
    }

    /// Mean requests at the largest size measured.
    pub fn final_cost(&self) -> Option<f64> {
        self.points.last().map(|p| p.mean_requests)
    }
}

/// Throughput of one certification cell: all lanes (searchers) of one
/// graph size, timed around the engine call.
///
/// Unlike [`ScalingPoint`]s, profiles carry volatile wall-clock data —
/// they exist for `--profile`-style reporting and regression tracking
/// against `BENCH_search_hot_path.json`, never for determinism checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellProfile {
    /// Requested model size.
    pub n: usize,
    /// Trials per lane.
    pub trials: usize,
    /// Lanes (searchers) raced per trial.
    pub lanes: usize,
    /// Wall-clock time of the whole cell in milliseconds.
    pub wall_ms: f64,
    /// Total oracle requests served across all lanes and trials.
    pub requests: f64,
    /// `requests` divided by the cell's wall time in seconds.
    pub requests_per_sec: f64,
    /// The cell's merged engine metrics — exact counters folded in
    /// strict trial order, bit-identical for any thread count (unlike
    /// the wall-clock fields around them).
    pub metrics: Metrics,
    /// Merged per-worker phase timers (generate / load / search /
    /// harvest / merge) — CPU-side busy time, volatile like `wall_ms`.
    pub phases: PhaseTimes,
    /// Heap allocations during trial bodies, harvested from the
    /// per-thread counting allocator (zero unless the binary installs
    /// `nonsearch_alloc_counter::CountingAllocator`).
    pub allocations: u64,
    /// Process-wide resource sample (peak RSS, faults, context
    /// switches) taken once when the cell finishes.
    pub resource: ResourceSample,
    /// Worker threads the engine actually ran for this cell.
    pub workers: usize,
}

/// The certification verdict for one model.
#[derive(Debug, Clone)]
pub struct SearchabilityReport {
    /// Model name with parameters.
    pub model: String,
    /// Per-algorithm scaling results.
    pub algorithms: Vec<AlgorithmScaling>,
    /// One throughput profile per swept size, in sweep order.
    pub profiles: Vec<CellProfile>,
    /// The exponent the paper proves no algorithm can beat (1/2 for the
    /// weak model).
    pub theoretical_exponent: f64,
}

impl SearchabilityReport {
    /// The algorithm with the lowest cost at the largest size.
    pub fn best_algorithm(&self) -> Option<&AlgorithmScaling> {
        self.algorithms
            .iter()
            .filter(|a| a.final_cost().is_some())
            .min_by(|a, b| {
                a.final_cost()
                    .partial_cmp(&b.final_cost())
                    .expect("final costs are finite")
            })
    }

    /// The best algorithm's fitted exponent.
    pub fn best_exponent(&self) -> Option<f64> {
        self.best_algorithm().and_then(|a| a.exponent())
    }

    /// Renders the report as an aligned text table (one row per
    /// algorithm × size, plus the fitted exponent).
    pub fn to_table(&self) -> Table {
        let mut t = Table::with_columns(&[
            "algorithm",
            "n",
            "mean requests",
            "ci95",
            "success",
            "exponent",
        ]);
        for a in &self.algorithms {
            for (i, pt) in a.points.iter().enumerate() {
                let expo = if i + 1 == a.points.len() {
                    a.exponent().map_or("-".to_string(), |e| format!("{e:.3}"))
                } else {
                    String::new()
                };
                t.row(vec![
                    a.kind.name().to_string(),
                    pt.n.to_string(),
                    format!("{:.1}", pt.mean_requests),
                    format!("{:.1}", pt.ci95),
                    format!("{:.2}", pt.success_rate),
                    expo,
                ]);
            }
        }
        t
    }
}

impl fmt::Display for SearchabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "searchability report for {}", self.model)?;
        write!(f, "{}", self.to_table())
    }
}

/// Runs the certification sweep for `model`, generating one fresh graph
/// per trial.
///
/// Equivalent to [`certify_with_source`] over a
/// [`ModelSource`](crate::ModelSource); see there for the execution and
/// determinism contract.
pub fn certify<M: GraphModel + Sync>(model: &M, config: &CertifyConfig) -> SearchabilityReport {
    certify_with_source(model.name(), &crate::ModelSource::new(model), config)
}

/// Runs the certification sweep with trial graphs supplied by `source` —
/// generated per trial ([`certify`]) or served from a persistent corpus
/// (`nonsearch_corpus`).
///
/// Trials execute on the `nonsearch_engine` runner: sharded across
/// scoped worker threads, with every cell's RNG stream derived from
/// `(seed, size index, trial)` and aggregation folded in strict trial
/// order — so reports are bit-identical for any `threads` setting. A
/// corpus built with the same model, root seed, and sizes list yields
/// reports bit-identical to the generate-per-trial path, because the
/// stored graphs reproduce the exact per-trial samples.
pub fn certify_with_source(
    model_name: String,
    source: &(impl GraphSource + ?Sized),
    config: &CertifyConfig,
) -> SearchabilityReport {
    let seeds = SeedSequence::new(config.seed);
    let n_searchers = config.searchers.len();
    // all_points[searcher][size index] = that searcher's scaling point.
    let mut all_points: Vec<Vec<ScalingPoint>> = vec![Vec::new(); n_searchers];
    let mut profiles = Vec::with_capacity(config.sizes.len());

    for (size_idx, &n) in config.sizes.iter().enumerate() {
        let size_seeds = seeds.subsequence(size_idx as u64);
        let _cell_span = config.tracer.span("size-cell");
        // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
        let cell_start = std::time::Instant::now();
        let (lanes, obs) = run_lanes_observed(
            config.trials,
            n_searchers,
            config.threads,
            &size_seeds,
            // Per-worker pool: one scratch plus one instance of every
            // searcher, allocated once per graph size and reused across
            // all of the worker's trials (reset per run). Outcomes stay
            // bit-identical to fresh-state runs. The pool also carries
            // the worker's `trial-batch` span, so its guard records the
            // worker's whole stint when the pool drops.
            || TrialPool {
                scratch: SearchScratch::new(),
                searchers: config.searchers.iter().map(|kind| kind.build()).collect(),
                _batch_span: config.tracer.span("trial-batch"),
            },
            |pool, obs, trial, trial_seeds| {
                let _trial_span = config.tracer.span("trial");
                run_one_trial(pool, obs, source, config, n, trial, &trial_seeds)
            },
        );
        let wall_ms = cell_start.elapsed().as_secs_f64() * 1e3;
        // Sampled outside the trial hot path: reading /proc allocates,
        // but by now every trial has finished, so the allocation-free
        // steady-state guarantee is untouched.
        let resource = ResourceSample::current();
        let metrics = obs.metrics;
        for (s_idx, lane) in lanes.iter().enumerate() {
            all_points[s_idx].push(ScalingPoint {
                n,
                mean_requests: lane.mean(),
                ci95: lane.ci95(),
                success_rate: lane.success_rate(),
            });
        }
        let requests: f64 = lanes
            .iter()
            .map(|lane| lane.mean() * config.trials as f64)
            .sum();
        profiles.push(CellProfile {
            n,
            trials: config.trials,
            lanes: n_searchers,
            wall_ms,
            requests,
            requests_per_sec: requests / (wall_ms / 1e3).max(f64::EPSILON),
            metrics,
            phases: obs.phases,
            allocations: obs.allocations,
            resource,
            workers: resolved_workers(config.threads, config.trials),
        });
    }

    let algorithms = config
        .searchers
        .iter()
        .zip(all_points)
        .map(|(&kind, points)| {
            let xs: Vec<f64> = points.iter().map(|p| p.n as f64).collect();
            let ys: Vec<f64> = points.iter().map(|p| p.mean_requests.max(1e-9)).collect();
            let fit = fit_log_log(&xs, &ys);
            AlgorithmScaling { kind, points, fit }
        })
        .collect();

    SearchabilityReport {
        model: model_name,
        algorithms,
        profiles,
        theoretical_exponent: 0.5,
    }
}

/// A worker's reusable trial state: the search scratch plus one pooled
/// instance of each configured searcher (and, when tracing, the
/// worker's open `trial-batch` span — recorded when the pool drops).
struct TrialPool<'t> {
    scratch: SearchScratch,
    searchers: Vec<Box<dyn WeakSearcher>>,
    _batch_span: nonsearch_obs::SpanGuard<'t>,
}

/// One graph sample, all searchers raced on it — one engine lane per
/// searcher, all running allocation-free on the worker's pool.
///
/// Counter deltas land in `obs.metrics`, the trial's zeroed [`Metrics`]
/// bundle: requests and discoveries come off the search outcomes;
/// frontier rescans off each searcher's cumulative counter; edge
/// resolutions and scratch resets off the pooled view's cumulative
/// counters. Reading counters never perturbs the search, so metered
/// runs stay bit-identical to unmetered ones.
///
/// Phase nanoseconds land in `obs.phases`: graph fetch is charged to
/// `generate` or `load` depending on [`GraphSource::is_stored`], the
/// searcher race to `search`, and the trailing counter sweep to
/// `harvest` (the consumer charges `merge` itself). Timer reads are
/// integer adds off the monotonic clock, so the instrumented trial
/// stays allocation-free and bit-identical to an untimed one.
fn run_one_trial(
    pool: &mut TrialPool<'_>,
    obs: &mut TrialObs,
    source: &(impl GraphSource + ?Sized),
    config: &CertifyConfig,
    n: usize,
    trial: usize,
    trial_seeds: &SeedSequence,
) -> Vec<TrialMeasure> {
    // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
    let fetch_start = std::time::Instant::now();
    let graph = source.trial_graph(n, trial, trial_seeds);
    let fetch_ns = elapsed_ns(fetch_start);
    if source.is_stored() {
        obs.phases.load_ns += fetch_ns;
    } else {
        obs.phases.generate_ns += fetch_ns;
    }
    let actual = graph.node_count();
    let task = SearchTask::new(NodeId::from_label(1), NodeId::from_label(actual))
        .with_criterion(config.criterion)
        .with_budget(config.budget_multiplier * actual);
    let TrialPool {
        scratch, searchers, ..
    } = pool;
    let resolutions_before = scratch.view().edge_resolutions();
    let resets_before = scratch.view().resets();
    let m = &mut obs.metrics;
    let requests_before = m.requests;
    // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
    let search_start = std::time::Instant::now();
    // Collected eagerly: the view's cumulative counters are read *after*
    // every lane ran, so a lazily-evaluated map would under-count.
    let measures: Vec<TrialMeasure> = searchers
        .iter_mut()
        .enumerate()
        .map(|(s_idx, searcher)| {
            let rescans_before = searcher.frontier_rescans();
            let mut rng = trial_seeds.child_rng(1 + s_idx as u64);
            let outcome = run_weak_in(scratch, &graph, &task, &mut **searcher, &mut rng)
                .expect("suite searchers never violate the protocol");
            m.requests += outcome.requests as u64;
            m.discoveries += outcome.discovered as u64;
            m.frontier_rescans += searcher.frontier_rescans() - rescans_before;
            TrialMeasure::new(outcome.requests as f64, outcome.found)
        })
        .collect();
    let search_ns = elapsed_ns(search_start);
    // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
    let harvest_start = std::time::Instant::now();
    m.edge_resolutions += scratch.view().edge_resolutions() - resolutions_before;
    m.scratch_resets += scratch.view().resets() - resets_before;
    m.observe_trial_requests(m.requests - requests_before);
    obs.phases.search_ns += search_ns;
    obs.phases.harvest_ns += elapsed_ns(harvest_start);
    measures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MergedMoriModel, UniformAttachmentModel};

    fn small_config() -> CertifyConfig {
        CertifyConfig {
            sizes: vec![128, 256, 512],
            trials: 6,
            seed: 7,
            searchers: vec![
                SearcherKind::BfsFlood,
                SearcherKind::HighDegree,
                SearcherKind::GreedyId,
            ],
            criterion: SuccessCriterion::DiscoverTarget,
            budget_multiplier: 50,
            threads: 0,
            tracer: Tracer::disabled(),
        }
    }

    #[test]
    fn report_shape_is_complete() {
        let model = MergedMoriModel { p: 0.5, m: 1 };
        let report = certify(&model, &small_config());
        assert_eq!(report.algorithms.len(), 3);
        for a in &report.algorithms {
            assert_eq!(a.points.len(), 3);
            assert!(a.fit.is_some());
            for pt in &a.points {
                assert!(pt.mean_requests > 0.0);
                assert!(pt.success_rate > 0.9, "{}: {pt:?}", a.kind);
            }
        }
        assert!(report.best_algorithm().is_some());
        assert!(report.to_table().len() >= 9);
        // One throughput profile per size, with sane totals: requests
        // equals the sum of per-lane means times the trial count.
        assert_eq!(report.profiles.len(), 3);
        for (profile, &n) in report.profiles.iter().zip(&[128usize, 256, 512]) {
            assert_eq!(profile.n, n);
            assert_eq!(profile.trials, 6);
            assert_eq!(profile.lanes, 3);
            assert!(profile.requests > 0.0);
            assert!(profile.requests_per_sec > 0.0);
            assert!(profile.requests_per_sec.is_finite());
            let lane_sum: f64 = report
                .algorithms
                .iter()
                .map(|a| a.points.iter().find(|p| p.n == n).unwrap().mean_requests * 6.0)
                .sum();
            assert!((profile.requests - lane_sum).abs() < 1e-6);
            // The merged metrics agree with the aggregates: exact
            // request totals, one histogram sample per trial, and
            // sane activity counters from the pooled oracle state.
            let m = &profile.metrics;
            assert_eq!(m.trials, 6);
            assert_eq!(m.requests as f64, profile.requests);
            assert_eq!(m.trial_requests.total(), 6);
            assert!(m.discoveries > 0);
            assert!(m.edge_resolutions > 0);
            // Three searchers per trial, each resetting the shared view.
            assert_eq!(m.scratch_resets, 6 * 3);
            // The suite includes cursor-based searchers, which skip
            // resolved slots on dense vertices.
            assert!(m.frontier_rescans > 0);
            // Phase timers rode alongside: the searcher race was timed,
            // the graph fetch was charged to `generate` (this source is
            // not stored), and `merge` captured the consumer's fold.
            assert!(profile.phases.search_ns > 0);
            assert!(profile.phases.generate_ns > 0);
            assert_eq!(profile.phases.load_ns, 0);
            assert!(profile.phases.merge_ns > 0);
            assert!(profile.workers >= 1);
            if cfg!(target_os = "linux") {
                assert!(profile.resource.peak_rss_bytes > 0);
            }
        }
    }

    #[test]
    fn certification_is_deterministic() {
        let model = MergedMoriModel { p: 0.3, m: 1 };
        let cfg = small_config();
        let a = certify(&model, &cfg);
        let b = certify(&model, &cfg);
        for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
            for (px, py) in x.points.iter().zip(&y.points) {
                assert_eq!(px.mean_requests, py.mean_requests);
            }
        }
    }

    #[test]
    fn certification_is_bit_identical_across_thread_counts() {
        let model = MergedMoriModel { p: 0.4, m: 1 };
        let single = CertifyConfig {
            threads: 1,
            ..small_config()
        };
        let quad = CertifyConfig {
            threads: 4,
            ..small_config()
        };
        let a = certify(&model, &single);
        let b = certify(&model, &quad);
        for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
            for (px, py) in x.points.iter().zip(&y.points) {
                assert_eq!(px, py);
            }
        }
        // The merged per-cell metrics are exact u64 sums folded in
        // strict trial order, so they match bit-for-bit too.
        assert_eq!(a.profiles.len(), b.profiles.len());
        for (px, py) in a.profiles.iter().zip(&b.profiles) {
            assert_eq!(px.metrics, py.metrics);
        }
    }

    #[test]
    fn mori_cost_grows_with_n() {
        let model = MergedMoriModel { p: 0.6, m: 1 };
        let report = certify(&model, &small_config());
        let best = report.best_algorithm().unwrap();
        let first = best.points.first().unwrap().mean_requests;
        let last = best.points.last().unwrap().mean_requests;
        assert!(last > first, "cost should grow: {first} → {last}");
    }

    #[test]
    fn custom_source_matches_generate_per_trial() {
        // A source that replays the generate-per-trial derivation must
        // reproduce certify() bit for bit — the contract the corpus
        // builder relies on.
        let model = MergedMoriModel { p: 0.5, m: 1 };
        let cfg = small_config();
        let replay = nonsearch_engine::FnSource::new(model.name(), |n, seeds: &SeedSequence| {
            model.sample_graph(n, &mut seeds.child_rng(0))
        });
        let a = certify(&model, &cfg);
        let b = certify_with_source(model.name(), &replay, &cfg);
        assert_eq!(b.model, model.name());
        for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
            for (px, py) in x.points.iter().zip(&y.points) {
                assert_eq!(px, py);
            }
        }
    }

    #[test]
    fn uniform_attachment_also_certifiable() {
        let model = UniformAttachmentModel { m: 1 };
        let report = certify(&model, &small_config());
        assert!(report.best_exponent().is_some());
    }
}
