//! Shortest-path distances, average path length, and diameters.
//!
//! The paper's conclusion contrasts its `Ω(√n)` search bound with "the
//! logarithmic diameter of such graphs, proved in expectation and with
//! high probability" — these helpers measure that logarithmic growth.

use nonsearch_graph::{bfs_distances, NodeId, UndirectedCsr};
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Errors from distance computations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistanceError {
    /// The graph has no vertices.
    EmptyGraph,
    /// The graph is disconnected, so the requested metric is undefined.
    Disconnected,
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceError::EmptyGraph => write!(f, "graph has no vertices"),
            DistanceError::Disconnected => {
                write!(f, "graph is disconnected; distances are undefined")
            }
        }
    }
}

impl Error for DistanceError {}

/// Eccentricity of `v`: the largest BFS distance from `v`.
///
/// # Errors
///
/// Returns [`DistanceError::Disconnected`] if some vertex is unreachable.
///
/// # Panics
///
/// Panics if `v` is out of bounds.
pub fn eccentricity(graph: &UndirectedCsr, v: NodeId) -> Result<u32, DistanceError> {
    if graph.node_count() == 0 {
        return Err(DistanceError::EmptyGraph);
    }
    let dist = bfs_distances(graph, v);
    let mut ecc = 0;
    for d in dist {
        match d {
            Some(x) => ecc = ecc.max(x),
            None => return Err(DistanceError::Disconnected),
        }
    }
    Ok(ecc)
}

/// Exact diameter by all-pairs BFS — O(n·m), fine for graphs up to a few
/// tens of thousands of edges.
///
/// # Errors
///
/// Returns [`DistanceError::EmptyGraph`] or [`DistanceError::Disconnected`].
pub fn diameter_exact(graph: &UndirectedCsr) -> Result<u32, DistanceError> {
    if graph.node_count() == 0 {
        return Err(DistanceError::EmptyGraph);
    }
    let mut best = 0;
    for v in graph.nodes() {
        best = best.max(eccentricity(graph, v)?);
    }
    Ok(best)
}

/// Diameter lower bound by the double-sweep heuristic: BFS from `start`,
/// then BFS from the farthest vertex found. Exact on trees; a lower bound
/// in general, at a cost of two BFS traversals.
///
/// # Errors
///
/// Returns [`DistanceError::EmptyGraph`] or [`DistanceError::Disconnected`].
///
/// # Panics
///
/// Panics if `start` is out of bounds.
pub fn diameter_lower_bound_double_sweep(
    graph: &UndirectedCsr,
    start: NodeId,
) -> Result<u32, DistanceError> {
    if graph.node_count() == 0 {
        return Err(DistanceError::EmptyGraph);
    }
    let first = bfs_distances(graph, start);
    let mut far = start;
    let mut far_d = 0;
    for (i, d) in first.iter().enumerate() {
        match d {
            Some(x) => {
                if *x > far_d {
                    far_d = *x;
                    far = NodeId::new(i);
                }
            }
            None => return Err(DistanceError::Disconnected),
        }
    }
    eccentricity(graph, far)
}

/// Average shortest-path distance estimated from `sources` random BFS
/// roots (exact if `sources ≥ n`). Distances from each sampled root to
/// every other vertex enter the average.
///
/// # Errors
///
/// Returns [`DistanceError::EmptyGraph`] or [`DistanceError::Disconnected`].
pub fn average_distance<R: Rng + ?Sized>(
    graph: &UndirectedCsr,
    sources: usize,
    rng: &mut R,
) -> Result<f64, DistanceError> {
    let n = graph.node_count();
    if n == 0 {
        return Err(DistanceError::EmptyGraph);
    }
    if n == 1 {
        return Ok(0.0);
    }
    let roots: Vec<NodeId> = if sources >= n {
        graph.nodes().collect()
    } else {
        (0..sources)
            .map(|_| NodeId::new(rng.gen_range(0..n)))
            .collect()
    };
    let mut total = 0u64;
    let mut pairs = 0u64;
    for root in roots {
        for d in bfs_distances(graph, root) {
            match d {
                Some(x) => {
                    total += x as u64;
                    pairs += 1;
                }
                None => return Err(DistanceError::Disconnected),
            }
        }
        pairs -= 1; // exclude the root-to-itself zero
    }
    Ok(total as f64 / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path(n: usize) -> UndirectedCsr {
        UndirectedCsr::from_edges(n, (1..n).map(|i| (i - 1, i))).unwrap()
    }

    #[test]
    fn path_metrics() {
        let g = path(6);
        assert_eq!(eccentricity(&g, NodeId::new(0)).unwrap(), 5);
        assert_eq!(eccentricity(&g, NodeId::new(3)).unwrap(), 3);
        assert_eq!(diameter_exact(&g).unwrap(), 5);
        assert_eq!(
            diameter_lower_bound_double_sweep(&g, NodeId::new(3)).unwrap(),
            5
        );
    }

    #[test]
    fn cycle_diameter() {
        let g = UndirectedCsr::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6))).unwrap();
        assert_eq!(diameter_exact(&g).unwrap(), 3);
        let lb = diameter_lower_bound_double_sweep(&g, NodeId::new(0)).unwrap();
        assert!(lb <= 3);
    }

    #[test]
    fn disconnected_is_an_error() {
        let g = UndirectedCsr::from_edges(4, [(0, 1)]).unwrap();
        assert_eq!(
            eccentricity(&g, NodeId::new(0)),
            Err(DistanceError::Disconnected)
        );
        assert_eq!(diameter_exact(&g), Err(DistanceError::Disconnected));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            average_distance(&g, 2, &mut rng),
            Err(DistanceError::Disconnected)
        );
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = UndirectedCsr::from_edges(0, []).unwrap();
        assert_eq!(diameter_exact(&g), Err(DistanceError::EmptyGraph));
    }

    #[test]
    fn exact_average_distance_on_path() {
        // Path on 3 vertices: pairs (0,1)=1 (0,2)=2 (1,2)=1 → mean 4/3.
        let g = path(3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let avg = average_distance(&g, 10, &mut rng).unwrap();
        assert!((avg - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_average_is_close_to_exact() {
        let g = path(40);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let exact = average_distance(&g, 1000, &mut rng).unwrap();
        let sampled = average_distance(&g, 10, &mut rng).unwrap();
        assert!(
            (sampled - exact).abs() / exact < 0.35,
            "{sampled} vs {exact}"
        );
    }

    #[test]
    fn single_vertex() {
        let g = UndirectedCsr::from_edges(1, []).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(average_distance(&g, 5, &mut rng).unwrap(), 0.0);
        assert_eq!(diameter_exact(&g).unwrap(), 0);
    }
}
