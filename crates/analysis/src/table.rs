//! Aligned plain-text tables for experiment output.

use std::fmt;

/// A simple column-aligned text table.
///
/// Experiment binaries print one table per paper artifact; keeping the
/// formatting here means every experiment reports rows the same way.
///
/// # Example
///
/// ```
/// use nonsearch_analysis::Table;
///
/// let mut t = Table::new(vec!["n".into(), "requests".into()]);
/// t.row(vec!["1024".into(), "53.1".into()]);
/// t.row(vec!["4096".into(), "108.9".into()]);
/// let text = t.to_string();
/// assert!(text.contains("requests"));
/// assert!(text.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from `&str` headers.
    pub fn with_columns(headers: &[&str]) -> Table {
        Table::new(headers.iter().map(|s| s.to_string()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of displayable values.
    pub fn row_display<T: fmt::Display>(&mut self, cells: &[T]) -> &mut Table {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        let _ = cols;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_columns(&["model", "n", "cost"]);
        t.row_display(&["mori", "1024", "51.2"]);
        t.row_display(&["cooper-frieze", "1024", "63.0"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal display width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w));
    }

    #[test]
    fn empty_table_has_header_and_rule() {
        let t = Table::with_columns(&["a"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn wrong_arity_panics() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn len_counts_rows() {
        let mut t = Table::with_columns(&["x"]);
        t.row_display(&[1]).row_display(&[2]);
        assert_eq!(t.len(), 2);
    }
}
