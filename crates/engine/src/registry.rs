//! The experiment registry behind the unified `xp` CLI.
//!
//! Experiments register a [`spec`](ExperimentSpec) — subcommand name,
//! paper id, one-line claim, default seed, run function — and
//! [`Registry::main`] provides the whole command line: `xp list`,
//! `xp validate`, `xp <experiment> [flags]`, with the shared flag set of
//! [`CliOptions`]. Legacy `exp_*` binaries reuse the same dispatch via
//! [`Registry::run_named`], so one experiment implementation serves both
//! entry points.

use crate::json;
use crate::options::CliOptions;
use crate::record::{RunSummary, RunWriter, CELL_TYPE, PROFILE_TYPE, RUN_TYPE};
use nonsearch_analysis::Table;
use std::io;

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Subcommand name (kebab-case, e.g. `theorem1-weak`).
    pub name: &'static str,
    /// Paper-facing experiment id (e.g. `E1`).
    pub id: &'static str,
    /// One-line statement of the claim the experiment reproduces.
    pub claim: &'static str,
    /// Root seed used when `--seed` is not given.
    pub default_seed: u64,
    /// The experiment body.
    pub run: fn(&mut ExpContext),
}

/// Everything an experiment body needs: parsed options, the resolved
/// root seed, and the structured-record sink.
pub struct ExpContext<'a> {
    /// The run's options (quick, threads, sweep overrides, …).
    pub options: &'a CliOptions,
    /// The resolved root seed (`--seed` override or the spec default).
    pub seed: u64,
    /// Structured-record sink; inert without `--out`.
    pub writer: &'a mut RunWriter,
}

/// An ordered collection of experiments with CLI dispatch.
#[derive(Default)]
pub struct Registry {
    specs: Vec<ExperimentSpec>,
    usage_notes: Vec<String>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds an experiment.
    ///
    /// # Panics
    ///
    /// Panics if `spec.name` is already registered.
    pub fn register(&mut self, spec: ExperimentSpec) -> &mut Registry {
        assert!(
            self.find(spec.name).is_none(),
            "duplicate experiment name {:?}",
            spec.name
        );
        self.specs.push(spec);
        self
    }

    /// The registered experiments, in registration order.
    pub fn specs(&self) -> &[ExperimentSpec] {
        &self.specs
    }

    /// Appends a line to the `xp help` text — for tool subcommands the
    /// front-end binary dispatches before this registry (e.g. `corpus`).
    pub fn add_usage_note(&mut self, line: impl Into<String>) -> &mut Registry {
        self.usage_notes.push(line.into());
        self
    }

    /// Looks an experiment up by subcommand name.
    pub fn find(&self, name: &str) -> Option<&ExperimentSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Runs one experiment under `options`, returning what was written.
    pub fn run_named(&self, name: &str, options: &CliOptions) -> io::Result<RunSummary> {
        let spec = self.find(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no experiment named {name:?}; see `xp list`"),
            )
        })?;
        let mut writer = RunWriter::create(spec.name, options)?;
        let mut ctx = ExpContext {
            options,
            seed: options.seed_or(spec.default_seed),
            writer: &mut writer,
        };
        (spec.run)(&mut ctx);
        let seed = ctx.seed;
        writer.finish(seed)
    }

    /// The full `xp` command line. Returns the process exit code.
    pub fn main(&self, args: &[String]) -> i32 {
        match args.first().map(String::as_str) {
            None | Some("help" | "--help" | "-h") => {
                print!("{}", self.usage());
                0
            }
            Some("list") => {
                print!("{}", self.list_table());
                0
            }
            Some("validate") => {
                if args.len() < 2 {
                    eprintln!("usage: xp validate <runs.jsonl>...");
                    return 2;
                }
                let mut ok = true;
                for path in &args[1..] {
                    match std::fs::read_to_string(path) {
                        Ok(text) => match validate_jsonl(&text) {
                            Ok(v) => println!("{path}: {v}"),
                            Err(e) => {
                                eprintln!("{path}: INVALID — {e}");
                                ok = false;
                            }
                        },
                        Err(e) => {
                            eprintln!("{path}: cannot read — {e}");
                            ok = false;
                        }
                    }
                }
                i32::from(!ok)
            }
            Some(name) => {
                let options = match CliOptions::from_args(args[1..].iter().cloned()) {
                    Ok(options) => options,
                    Err(e) => {
                        eprintln!("xp {name}: {e}");
                        return 2;
                    }
                };
                if self.find(name).is_none() {
                    eprintln!("xp: no experiment named {name:?}; registered experiments:");
                    for spec in &self.specs {
                        eprintln!("  {}", spec.name);
                    }
                    return 2;
                }
                match self.run_named(name, &options) {
                    Ok(summary) => {
                        if summary.paths.is_empty() {
                            println!(
                                "[{name}] {} cells in {} ms (no --out; records discarded)",
                                summary.cells, summary.wall_ms
                            );
                        } else {
                            let paths: Vec<String> = summary
                                .paths
                                .iter()
                                .map(|p| p.display().to_string())
                                .collect();
                            println!(
                                "[{name}] wrote {} cells to {} in {} ms",
                                summary.cells,
                                paths.join(" + "),
                                summary.wall_ms
                            );
                        }
                        0
                    }
                    Err(e) => {
                        eprintln!("xp {name}: {e}");
                        1
                    }
                }
            }
        }
    }

    /// The `xp list` table.
    pub fn list_table(&self) -> Table {
        let mut t = Table::with_columns(&["subcommand", "id", "seed", "claim"]);
        for spec in &self.specs {
            t.row(vec![
                spec.name.to_string(),
                spec.id.to_string(),
                format!("{:#x}", spec.default_seed),
                spec.claim.to_string(),
            ]);
        }
        t
    }

    /// The `xp help` text.
    pub fn usage(&self) -> String {
        let mut out = String::from(
            "xp — unified Monte-Carlo experiment runner\n\
             \n\
             usage:\n\
             \x20 xp list                      enumerate registered experiments\n\
             \x20 xp <experiment> [flags]      run one experiment\n\
             \x20 xp validate <file>...        check emitted JSONL run records\n\
             \n\
             shared flags:\n\
             \x20 --quick            reduced sweep (also NONSEARCH_QUICK=1;\n\
             \x20                    empty/0/false/off/no leave it off)\n\
             \x20 --threads N        trial-engine workers (0 = all cores)\n\
             \x20 --seed S           override the experiment's root seed\n\
             \x20 --out PATH         write structured run records to PATH\n\
             \x20 --format F         jsonl (default) | csv | both\n\
             \x20 --trials N         override the per-cell trial count\n\
             \x20 --sizes A,B,C      override the size sweep\n\
             \x20 --corpus DIR       serve trial graphs from a stored corpus\n\
             \x20 --mmap             zero-copy corpus loads via memory-mapped files\n\
             \x20 --profile          per-cell throughput records (requests/sec) in the JSONL out\n\
             \n\
             experiments:\n",
        );
        for spec in &self.specs {
            out.push_str(&format!(
                "  {:<18} {:<4} {}\n",
                spec.name, spec.id, spec.claim
            ));
        }
        if !self.usage_notes.is_empty() {
            out.push_str("\ntools:\n");
            for note in &self.usage_notes {
                out.push_str(&format!("  {note}\n"));
            }
        }
        out
    }
}

/// What [`validate_jsonl`] found in a well-formed record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidateSummary {
    /// `"type":"cell"` records.
    pub cells: usize,
    /// `"type":"run"` footers.
    pub runs: usize,
    /// `"type":"profile"` throughput records (`--profile`).
    pub profiles: usize,
}

impl std::fmt::Display for ValidateSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cell records, {} run footers, {} profile records — OK",
            self.cells, self.runs, self.profiles
        )
    }
}

/// The numeric fields every `"type":"profile"` record must carry, each a
/// finite non-negative number.
const PROFILE_REQUIRED: [&str; 5] = ["n", "trials", "requests", "wall_ms", "requests_per_sec"];

/// Checks that every non-empty line is a JSON object tagged `cell`,
/// `run`, or `profile`, that profile records carry well-formed
/// throughput fields, and that at least one record is present.
pub fn validate_jsonl(text: &str) -> Result<ValidateSummary, String> {
    let mut summary = ValidateSummary {
        cells: 0,
        runs: 0,
        profiles: 0,
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match value.get("type").and_then(|t| t.as_str()) {
            Some(t) if t == CELL_TYPE => summary.cells += 1,
            Some(t) if t == RUN_TYPE => summary.runs += 1,
            Some(t) if t == PROFILE_TYPE => {
                for key in PROFILE_REQUIRED {
                    match value.get(key).and_then(|v| v.as_f64()) {
                        Some(x) if x.is_finite() && x >= 0.0 => {}
                        Some(x) => {
                            return Err(format!(
                                "line {}: profile field {key:?} is not a finite non-negative \
                                 number (got {x})",
                                lineno + 1
                            ))
                        }
                        None => {
                            return Err(format!(
                                "line {}: profile record is missing numeric field {key:?}",
                                lineno + 1
                            ))
                        }
                    }
                }
                summary.profiles += 1;
            }
            Some(t) => return Err(format!("line {}: unknown record type {t:?}", lineno + 1)),
            None => {
                return Err(format!(
                    "line {}: record is not an object with a \"type\" tag",
                    lineno + 1
                ))
            }
        }
    }
    if summary.cells + summary.runs + summary.profiles == 0 {
        return Err("no records found".to_string());
    }
    Ok(summary)
}

/// Entry point for a legacy single-experiment binary: lenient flags from
/// the process environment, same implementation as the `xp` subcommand.
pub fn run_legacy(registry: &Registry, name: &str) {
    let options = CliOptions::global();
    let summary = registry
        .run_named(name, options)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    if !summary.paths.is_empty() {
        let paths: Vec<String> = summary
            .paths
            .iter()
            .map(|p| p.display().to_string())
            .collect();
        println!("wrote {} cells to {}", summary.cells, paths.join(" + "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn demo_run(ctx: &mut ExpContext) {
        for n in ctx.options.sweep(&[8, 16, 32]) {
            ctx.writer
                .record_cell(vec![
                    ("n", JsonValue::from(n)),
                    ("seed", JsonValue::from(ctx.seed)),
                ])
                .expect("write cell record");
        }
    }

    fn demo_registry() -> Registry {
        let mut r = Registry::new();
        r.register(ExperimentSpec {
            name: "demo",
            id: "E0",
            claim: "a demonstration",
            default_seed: 0xD0,
            run: demo_run,
        });
        r
    }

    #[test]
    fn register_find_and_list() {
        let r = demo_registry();
        assert_eq!(r.specs().len(), 1);
        assert!(r.find("demo").is_some());
        assert!(r.find("nope").is_none());
        let listing = r.list_table().to_string();
        assert!(listing.contains("demo"));
        assert!(listing.contains("E0"));
        assert!(r.usage().contains("demo"));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        let mut r = demo_registry();
        r.register(ExperimentSpec {
            name: "demo",
            id: "E0",
            claim: "again",
            default_seed: 0,
            run: demo_run,
        });
    }

    #[test]
    fn run_named_writes_records_and_honours_seed_override() {
        let path = std::env::temp_dir().join(format!("xp_registry_{}.jsonl", std::process::id()));
        let options = CliOptions {
            out: Some(path.clone()),
            seed: Some(99),
            sizes: Some(vec![4, 8]),
            ..CliOptions::default()
        };
        let summary = demo_registry().run_named("demo", &options).unwrap();
        assert_eq!(summary.cells, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let v = validate_jsonl(&text).unwrap();
        assert_eq!(
            v,
            ValidateSummary {
                cells: 2,
                runs: 1,
                profiles: 0
            }
        );
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("seed").and_then(|x| x.as_f64()), Some(99.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_named_unknown_is_not_found() {
        let err = demo_registry()
            .run_named("missing", &CliOptions::default())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("{not json}").is_err());
        assert!(validate_jsonl("{\"type\":\"alien\"}").is_err());
        assert!(validate_jsonl("[1,2]").is_err());
        let ok = validate_jsonl("{\"type\":\"cell\"}\n\n{\"type\":\"run\"}\n").unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                cells: 1,
                runs: 1,
                profiles: 0
            }
        );
    }

    #[test]
    fn validate_checks_profile_fields() {
        let good = "{\"type\":\"profile\",\"n\":128,\"trials\":4,\"requests\":512,\
                    \"wall_ms\":2.5,\"requests_per_sec\":204800.0}\n";
        let ok = validate_jsonl(good).unwrap();
        assert_eq!(
            ok,
            ValidateSummary {
                cells: 0,
                runs: 0,
                profiles: 1
            }
        );
        // A missing throughput field is an error, not a shrug.
        let missing = "{\"type\":\"profile\",\"n\":128}";
        let err = validate_jsonl(missing).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        // So is a non-finite or negative value.
        let negative = "{\"type\":\"profile\",\"n\":128,\"trials\":4,\"requests\":512,\
                        \"wall_ms\":-1,\"requests_per_sec\":1.0}";
        let err = validate_jsonl(negative).unwrap_err();
        assert!(err.contains("wall_ms"), "{err}");
    }
}
