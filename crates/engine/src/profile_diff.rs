//! `xp profile-diff` — the throughput-regression gate.
//!
//! Compares the `"type":"profile"` records of a finished run against a
//! committed JSON baseline and exits nonzero when measured throughput
//! falls below `threshold × baseline` for any size — which is what lets
//! CI fail a PR that quietly slows the oracle hot path down, without
//! ever looking at the volatile numbers by eye.
//!
//! ```text
//! xp profile-diff <run.jsonl> [--baseline FILE] [--threshold 0.7]
//!                 [--write-baseline OUT] [--scale F] [--suite]
//! ```
//!
//! * `--baseline FILE` — compare against `FILE` (one JSON document,
//!   `{"cells":[{"n":N,"requests_per_sec":X}, …]}`; extra fields are
//!   ignored). Measured cells match the baseline cell with the nearest
//!   `n`, so a `--quick`-truncated sweep still gates against a
//!   full-sweep baseline sensibly.
//! * `--threshold F` — regression ratio, default `0.7`: a cell fails
//!   when `measured < F × baseline`. Throughput *above* baseline never
//!   fails (improvements are free).
//! * `--write-baseline OUT` — instead of comparing, write a baseline
//!   from the run's measured throughput (`× --scale`, default `1.0`).
//!   Quick runs are guarded: when the run footer says `quick: true`
//!   and `OUT` lacks a `.quick.` marker, the baseline is written to
//!   `OUT` with `.json` → `.quick.json` instead, so a truncated quick
//!   sweep can never clobber a committed full-sweep baseline.
//! * `--scale F` — on write, scales the written baseline values; on
//!   compare, scales the baseline *up* before the threshold test. CI
//!   uses compare-mode `--scale 2.0` as a must-fail self-check: if the
//!   gate still passes with the bar doubled, the gate is broken.
//! * `--suite` — the input and baseline are `xp bench` suite records
//!   (`BENCH_engine_suite.json`), matched **exactly** on
//!   `section`/`key` instead of nearest-`n`: every benchmark in the
//!   suite is a named cell with a uniform higher-is-better
//!   `throughput` field. Measured cells with no baseline entry (e.g. a
//!   `--quick` suite gated against the committed full record) are
//!   skipped with a note, never failed.
//!
//! Exit codes: `0` OK (or baseline written), `1` regression detected,
//! `2` usage or I/O error — the same convention as the rest of `xp`.

use crate::json::{self, JsonValue};
use crate::record::{PROFILE_TYPE, RUN_TYPE};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Default regression threshold: fail below 70% of baseline throughput.
pub const DEFAULT_THRESHOLD: f64 = 0.7;

const USAGE: &str = "usage: xp profile-diff <run.jsonl> [--baseline FILE] [--threshold F] \
                     [--write-baseline OUT] [--scale F] [--suite]";

/// What one run's profile records measured, keyed by cell size.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredProfile {
    /// Mean requests/sec per size `n` (multiple profile records at the
    /// same `n` — e.g. one per searcher — are averaged).
    pub cells: BTreeMap<u64, f64>,
    /// Whether the run footer was stamped `quick: true`.
    pub quick: bool,
}

/// Extracts the profile records and the footer's quick flag from a
/// JSONL run stream.
pub fn measured_from_jsonl(text: &str) -> Result<MeasuredProfile, String> {
    let mut sums: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    let mut quick = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match value.get("type").and_then(|t| t.as_str()) {
            Some(t) if t == PROFILE_TYPE => {
                let n = value
                    .get("n")
                    .and_then(|v| v.as_f64())
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .ok_or_else(|| {
                        format!("line {}: profile record has no usable \"n\"", lineno + 1)
                    })? as u64;
                let rps = value
                    .get("requests_per_sec")
                    .and_then(|v| v.as_f64())
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .ok_or_else(|| {
                        format!(
                            "line {}: profile record has no usable \"requests_per_sec\"",
                            lineno + 1
                        )
                    })?;
                let slot = sums.entry(n).or_insert((0.0, 0));
                slot.0 += rps;
                slot.1 += 1;
            }
            Some(t) if t == RUN_TYPE => {
                quick = value
                    .get("quick")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
            }
            _ => {}
        }
    }
    if sums.is_empty() {
        return Err("no profile records found (was the run made with --profile?)".to_string());
    }
    Ok(MeasuredProfile {
        cells: sums
            .into_iter()
            .map(|(n, (sum, count))| (n, sum / count as f64))
            .collect(),
        quick,
    })
}

/// Parses a baseline document: `{"cells":[{"n":N,"requests_per_sec":X}]}`.
pub fn baseline_from_json(text: &str) -> Result<BTreeMap<u64, f64>, String> {
    let doc = json::parse(text.trim()).map_err(|e| e.to_string())?;
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "baseline has no \"cells\" array".to_string())?;
    let mut out = BTreeMap::new();
    for (i, cell) in cells.iter().enumerate() {
        let n = cell
            .get("n")
            .and_then(|v| v.as_f64())
            .filter(|x| x.is_finite() && *x >= 0.0)
            .ok_or_else(|| format!("baseline cell {i} has no usable \"n\""))?;
        let rps = cell
            .get("requests_per_sec")
            .and_then(|v| v.as_f64())
            .filter(|x| x.is_finite() && *x > 0.0)
            .ok_or_else(|| format!("baseline cell {i} has no usable \"requests_per_sec\""))?;
        out.insert(n as u64, rps);
    }
    if out.is_empty() {
        return Err("baseline \"cells\" array is empty".to_string());
    }
    Ok(out)
}

/// One compared cell: measured against the nearest-`n` baseline cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Measured cell size.
    pub n: u64,
    /// Baseline cell size matched (nearest `n`).
    pub baseline_n: u64,
    /// Measured mean requests/sec.
    pub measured: f64,
    /// Baseline requests/sec.
    pub baseline: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Whether this cell fell below the threshold.
    pub regressed: bool,
}

/// Compares measured cells against a baseline at `threshold`. Every
/// measured cell is matched to the baseline cell with the nearest `n`
/// (ties toward the smaller size, for determinism).
pub fn diff(
    measured: &MeasuredProfile,
    baseline: &BTreeMap<u64, f64>,
    threshold: f64,
) -> Vec<DiffRow> {
    measured
        .cells
        .iter()
        .map(|(&n, &rps)| {
            let (&baseline_n, &base_rps) = baseline
                .iter()
                .min_by_key(|(&bn, _)| (bn.abs_diff(n), bn))
                .expect("baseline verified non-empty");
            let ratio = rps / base_rps;
            DiffRow {
                n,
                baseline_n,
                measured: rps,
                baseline: base_rps,
                ratio,
                regressed: ratio < threshold,
            }
        })
        .collect()
}

/// One named benchmark cell of an `xp bench` suite record.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteCell {
    /// Suite section (`oracle`, `corpus_load`, `thread_scaling`, …).
    pub section: String,
    /// Unique key within the section (e.g. `weak_flood_n10000`).
    pub key: String,
    /// The uniform higher-is-better measurement (req/s or loads/s).
    pub throughput: f64,
}

/// Parses an `xp bench` suite record
/// (`{"schema_version":1,"bench":"engine_suite","cells":[…]}`),
/// rejecting unknown schema versions and non-finite or non-positive
/// throughput values.
pub fn suite_from_json(text: &str) -> Result<Vec<SuiteCell>, String> {
    let doc = json::parse(text.trim()).map_err(|e| e.to_string())?;
    match doc.get("schema_version").and_then(|v| v.as_f64()) {
        Some(v) if v != 1.0 => return Err(format!("unsupported suite schema_version {v}")),
        Some(_) => {}
        None => return Err("suite record has no \"schema_version\"".to_string()),
    }
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "suite record has no \"cells\" array".to_string())?;
    let mut out = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let field = |key: &str| -> Result<String, String> {
            cell.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("suite cell {i} has no string field {key:?}"))
        };
        let throughput = cell
            .get("throughput")
            .and_then(|v| v.as_f64())
            .filter(|x| x.is_finite() && *x > 0.0)
            .ok_or_else(|| format!("suite cell {i} has no usable \"throughput\""))?;
        out.push(SuiteCell {
            section: field("section")?,
            key: field("key")?,
            throughput,
        });
    }
    if out.is_empty() {
        return Err("suite \"cells\" array is empty".to_string());
    }
    Ok(out)
}

/// One compared suite cell, matched exactly on `section`/`key`.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteDiffRow {
    /// `section/key` of the matched benchmark.
    pub name: String,
    /// Measured throughput.
    pub measured: f64,
    /// Baseline throughput (after `--scale`).
    pub baseline: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Whether this cell fell below the threshold.
    pub regressed: bool,
}

/// Compares a measured suite against a baseline suite at `threshold`,
/// with baseline throughput pre-multiplied by `scale`. Returns the
/// compared rows and the names of measured cells the baseline does not
/// carry (skipped, e.g. a quick suite vs the committed full record).
pub fn diff_suite(
    measured: &[SuiteCell],
    baseline: &[SuiteCell],
    threshold: f64,
    scale: f64,
) -> (Vec<SuiteDiffRow>, Vec<String>) {
    let by_name: BTreeMap<(&str, &str), f64> = baseline
        .iter()
        .map(|c| ((c.section.as_str(), c.key.as_str()), c.throughput))
        .collect();
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for cell in measured {
        let name = format!("{}/{}", cell.section, cell.key);
        match by_name.get(&(cell.section.as_str(), cell.key.as_str())) {
            Some(&base) => {
                let baseline = base * scale;
                let ratio = cell.throughput / baseline;
                rows.push(SuiteDiffRow {
                    name,
                    measured: cell.throughput,
                    baseline,
                    ratio,
                    regressed: ratio < threshold,
                });
            }
            None => skipped.push(name),
        }
    }
    (rows, skipped)
}

/// Serializes a baseline document from measured throughput, scaling
/// each cell's requests/sec by `scale`.
pub fn baseline_to_json(measured: &MeasuredProfile, scale: f64) -> String {
    let cells: Vec<JsonValue> = measured
        .cells
        .iter()
        .map(|(&n, &rps)| {
            JsonValue::object(vec![
                ("n", JsonValue::from(n)),
                ("requests_per_sec", JsonValue::from(rps * scale)),
            ])
        })
        .collect();
    let doc = JsonValue::object(vec![
        ("quick", JsonValue::from(measured.quick)),
        ("cells", JsonValue::Array(cells)),
    ]);
    format!("{doc}\n")
}

/// Applies the quick-clobber guard to a `--write-baseline` target: a
/// quick run writing to a path without a `.quick.` marker is redirected
/// to the `.quick.json` sibling, so truncated quick sweeps never
/// overwrite committed full-sweep baselines.
pub fn guarded_baseline_path(out: &Path, quick: bool) -> PathBuf {
    let name = out.file_name().map(|n| n.to_string_lossy().to_string());
    match name {
        Some(name) if quick && !name.contains(".quick.") => {
            let guarded = match name.strip_suffix(".json") {
                Some(stem) => format!("{stem}.quick.json"),
                None => format!("{name}.quick.json"),
            };
            out.with_file_name(guarded)
        }
        _ => out.to_path_buf(),
    }
}

/// The `xp profile-diff` subcommand body. Returns the process exit code.
pub fn main(args: &[String]) -> i32 {
    let mut run_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut scale = 1.0f64;
    let mut suite = false;

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            iter.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let outcome: Result<(), String> = match arg.as_str() {
            "--baseline" => value("--baseline").map(|v| baseline_path = Some(PathBuf::from(v))),
            "--write-baseline" => {
                value("--write-baseline").map(|v| write_baseline = Some(PathBuf::from(v)))
            }
            "--threshold" => value("--threshold").and_then(|v| {
                v.parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .map(|x| threshold = x)
                    .ok_or_else(|| format!("--threshold: cannot parse {v:?}"))
            }),
            "--scale" => value("--scale").and_then(|v| {
                v.parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .map(|x| scale = x)
                    .ok_or_else(|| format!("--scale: cannot parse {v:?}"))
            }),
            "--suite" => {
                suite = true;
                Ok(())
            }
            other if other.starts_with("--") => Err(format!("unknown argument {other:?}")),
            _ if run_path.is_none() => {
                run_path = Some(PathBuf::from(arg));
                Ok(())
            }
            _ => Err(format!("unexpected extra argument {arg:?}")),
        };
        if let Err(e) = outcome {
            eprintln!("xp profile-diff: {e}");
            eprintln!("{USAGE}");
            return 2;
        }
    }

    let Some(run_path) = run_path else {
        eprintln!("{USAGE}");
        return 2;
    };
    let text = match std::fs::read_to_string(&run_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xp profile-diff: cannot read {}: {e}", run_path.display());
            return 2;
        }
    };

    if suite {
        return suite_main(&run_path, &text, baseline_path, threshold, scale);
    }

    let measured = match measured_from_jsonl(&text) {
        Ok(measured) => measured,
        Err(e) => {
            eprintln!("xp profile-diff: {}: {e}", run_path.display());
            return 2;
        }
    };

    if let Some(out) = write_baseline {
        let guarded = guarded_baseline_path(&out, measured.quick);
        if guarded != out {
            println!(
                "note: quick run — baseline redirected to {} so the full-sweep baseline \
                 stays intact",
                guarded.display()
            );
        }
        return match std::fs::write(&guarded, baseline_to_json(&measured, scale)) {
            Ok(()) => {
                println!(
                    "wrote baseline for {} sizes to {}",
                    measured.cells.len(),
                    guarded.display()
                );
                0
            }
            Err(e) => {
                eprintln!("xp profile-diff: cannot write {}: {e}", guarded.display());
                2
            }
        };
    }

    let Some(baseline_path) = baseline_path else {
        eprintln!("xp profile-diff: pass --baseline FILE to compare (or --write-baseline OUT)");
        eprintln!("{USAGE}");
        return 2;
    };
    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| baseline_from_json(&text))
    {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("xp profile-diff: {}: {e}", baseline_path.display());
            return 2;
        }
    };

    // Compare-mode --scale raises the bar: the baseline each cell is
    // measured against is scale × committed value.
    let baseline: BTreeMap<u64, f64> = baseline.into_iter().map(|(n, x)| (n, x * scale)).collect();
    let rows = diff(&measured, &baseline, threshold);
    let mut regressed = false;
    for row in &rows {
        let verdict = if row.regressed {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "n={:<8} measured {:>12.0} req/s vs baseline {:>12.0} (n={}) ratio {:.3} [{verdict}]",
            row.n, row.measured, row.baseline, row.baseline_n, row.ratio
        );
    }
    if regressed {
        eprintln!(
            "xp profile-diff: throughput regression — at least one cell below {threshold:.2}× \
             baseline"
        );
        1
    } else {
        println!("profile-diff: all {} cells within threshold", rows.len());
        0
    }
}

/// The `--suite` compare body: both sides are `xp bench` suite records.
fn suite_main(
    run_path: &Path,
    text: &str,
    baseline_path: Option<PathBuf>,
    threshold: f64,
    scale: f64,
) -> i32 {
    let measured = match suite_from_json(text) {
        Ok(measured) => measured,
        Err(e) => {
            eprintln!("xp profile-diff: {}: {e}", run_path.display());
            return 2;
        }
    };
    let Some(baseline_path) = baseline_path else {
        eprintln!("xp profile-diff: --suite requires --baseline FILE");
        eprintln!("{USAGE}");
        return 2;
    };
    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| suite_from_json(&text))
    {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("xp profile-diff: {}: {e}", baseline_path.display());
            return 2;
        }
    };
    let (rows, skipped) = diff_suite(&measured, &baseline, threshold, scale);
    for name in &skipped {
        println!("note: {name} has no baseline entry — skipped");
    }
    if rows.is_empty() {
        eprintln!(
            "xp profile-diff: no measured suite cell matches the baseline (all {} skipped)",
            skipped.len()
        );
        return 2;
    }
    let mut regressed = false;
    for row in &rows {
        let verdict = if row.regressed {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<40} measured {:>14.1} vs baseline {:>14.1} ratio {:.3} [{verdict}]",
            row.name, row.measured, row.baseline, row.ratio
        );
    }
    if regressed {
        eprintln!(
            "xp profile-diff: suite regression — at least one benchmark below {threshold:.2}× \
             baseline"
        );
        1
    } else {
        println!(
            "profile-diff: all {} suite cells within threshold",
            rows.len()
        );
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_jsonl(rps: &[(u64, f64)], quick: bool) -> String {
        let mut out = String::new();
        for (n, r) in rps {
            out.push_str(&format!(
                "{{\"type\":\"profile\",\"experiment\":\"demo\",\"n\":{n},\"trials\":3,\
                 \"requests\":100,\"wall_ms\":5.0,\"requests_per_sec\":{r}}}\n"
            ));
        }
        out.push_str(&format!(
            "{{\"type\":\"run\",\"experiment\":\"demo\",\"seed\":1,\"quick\":{quick},\
             \"threads\":1,\"git\":\"x\",\"wall_ms\":9,\"cells\":0,\"profiles\":{}}}\n",
            rps.len()
        ));
        out
    }

    #[test]
    fn measured_parses_profiles_and_quick_footer() {
        let m = measured_from_jsonl(&run_jsonl(&[(128, 1000.0), (256, 2000.0)], true)).unwrap();
        assert!(m.quick);
        assert_eq!(m.cells.len(), 2);
        assert_eq!(m.cells[&128], 1000.0);
        // Records at the same n are averaged.
        let m = measured_from_jsonl(&run_jsonl(&[(128, 1000.0), (128, 3000.0)], false)).unwrap();
        assert_eq!(m.cells[&128], 2000.0);
        assert!(!m.quick);
        // A run without profile records is an error, not a silent pass.
        let err = measured_from_jsonl("{\"type\":\"cell\"}\n").unwrap_err();
        assert!(err.contains("--profile"), "{err}");
    }

    #[test]
    fn diff_flags_cells_below_threshold_only() {
        let measured =
            measured_from_jsonl(&run_jsonl(&[(128, 500.0), (256, 3000.0)], false)).unwrap();
        let baseline = baseline_from_json(
            "{\"cells\":[{\"n\":128,\"requests_per_sec\":1000.0},\
             {\"n\":256,\"requests_per_sec\":2000.0}]}",
        )
        .unwrap();
        let rows = diff(&measured, &baseline, 0.7);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].regressed, "0.5× must regress at 0.7");
        assert!(!rows[1].regressed, "1.5× must pass");
        // At a looser threshold the same cell passes.
        let rows = diff(&measured, &baseline, 0.4);
        assert!(!rows[0].regressed);
    }

    #[test]
    fn diff_matches_nearest_baseline_size() {
        // A quick run measuring n=100 gates against the n=128 baseline.
        let measured = measured_from_jsonl(&run_jsonl(&[(100, 950.0)], true)).unwrap();
        let baseline = baseline_from_json(
            "{\"cells\":[{\"n\":128,\"requests_per_sec\":1000.0},\
             {\"n\":1024,\"requests_per_sec\":5000.0}]}",
        )
        .unwrap();
        let rows = diff(&measured, &baseline, 0.7);
        assert_eq!(rows[0].baseline_n, 128);
        assert!(!rows[0].regressed);
    }

    #[test]
    fn baseline_round_trips_through_writer() {
        let measured = measured_from_jsonl(&run_jsonl(&[(64, 1500.0)], false)).unwrap();
        let text = baseline_to_json(&measured, 1.0);
        let parsed = baseline_from_json(&text).unwrap();
        assert_eq!(parsed[&64], 1500.0);
        // Scale is applied on write (for loose CI baselines).
        let scaled = baseline_from_json(&baseline_to_json(&measured, 0.5)).unwrap();
        assert_eq!(scaled[&64], 750.0);
    }

    #[test]
    fn quick_runs_never_clobber_full_baselines() {
        let full = PathBuf::from("fixtures/BENCH_theorem1_weak.profile.json");
        let guarded = guarded_baseline_path(&full, true);
        assert_eq!(
            guarded,
            PathBuf::from("fixtures/BENCH_theorem1_weak.profile.quick.json")
        );
        // Non-quick runs and already-marked paths pass through untouched.
        assert_eq!(guarded_baseline_path(&full, false), full);
        assert_eq!(guarded_baseline_path(&guarded, true), guarded);
    }

    #[test]
    fn empty_baseline_documents_are_rejected() {
        // A zero-byte file, an empty object, and an empty cells array
        // are all hard errors — never a silent pass of the gate.
        assert!(baseline_from_json("").is_err());
        assert!(baseline_from_json("{}").is_err());
        let err = baseline_from_json("{\"cells\":[]}").unwrap_err();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn baseline_with_no_matching_n_still_gates_via_nearest() {
        // Nearest-n matching means a baseline that never measured the
        // run's sizes still produces a verdict (against its closest
        // cell) rather than skipping the gate.
        let measured = measured_from_jsonl(&run_jsonl(&[(100_000, 10.0)], false)).unwrap();
        let baseline =
            baseline_from_json("{\"cells\":[{\"n\":128,\"requests_per_sec\":1000.0}]}").unwrap();
        let rows = diff(&measured, &baseline, 0.7);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].baseline_n, 128);
        assert!(rows[0].regressed, "0.01× of the only baseline cell");
    }

    #[test]
    fn non_finite_and_negative_throughput_is_rejected() {
        // NaN/Infinity are not valid JSON numbers, so they surface as
        // parse errors; negative and zero rps are filtered by value.
        assert!(baseline_from_json("{\"cells\":[{\"n\":1,\"requests_per_sec\":NaN}]}").is_err());
        let err =
            baseline_from_json("{\"cells\":[{\"n\":1,\"requests_per_sec\":-5.0}]}").unwrap_err();
        assert!(err.contains("requests_per_sec"), "{err}");
        assert!(baseline_from_json("{\"cells\":[{\"n\":1,\"requests_per_sec\":0.0}]}").is_err());
        let err = measured_from_jsonl("{\"type\":\"profile\",\"n\":1,\"requests_per_sec\":-1.0}\n")
            .unwrap_err();
        assert!(err.contains("requests_per_sec"), "{err}");
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        // Regression means strictly below threshold × baseline: a cell
        // measuring exactly the boundary passes. 700 = 0.7 × 1000 is
        // exact in binary? 0.7 is not, so use a threshold with an exact
        // representation (0.5) for the equality case and check 0.7's
        // behaviour on both sides of the bar.
        let measured = measured_from_jsonl(&run_jsonl(&[(128, 500.0)], false)).unwrap();
        let baseline =
            baseline_from_json("{\"cells\":[{\"n\":128,\"requests_per_sec\":1000.0}]}").unwrap();
        let rows = diff(&measured, &baseline, 0.5);
        assert_eq!(rows[0].ratio, 0.5);
        assert!(
            !rows[0].regressed,
            "measured == threshold × baseline must pass"
        );
        // One ulp below the bar regresses; at the bar passes.
        let rows = diff(&measured, &baseline, 0.5 + f64::EPSILON);
        assert!(rows[0].regressed);
    }

    #[test]
    fn suite_records_parse_and_diff_exactly() {
        let measured = suite_from_json(
            "{\"schema_version\":1,\"bench\":\"engine_suite\",\"cells\":[\
             {\"section\":\"oracle\",\"key\":\"weak_flood_n1000\",\"throughput\":5000.0},\
             {\"section\":\"corpus_load\",\"key\":\"heap_n10000\",\"throughput\":800.0},\
             {\"section\":\"oracle\",\"key\":\"only_in_quick\",\"throughput\":1.0}]}",
        )
        .unwrap();
        assert_eq!(measured.len(), 3);
        let baseline = suite_from_json(
            "{\"schema_version\":1,\"bench\":\"engine_suite\",\"cells\":[\
             {\"section\":\"oracle\",\"key\":\"weak_flood_n1000\",\"throughput\":4000.0},\
             {\"section\":\"corpus_load\",\"key\":\"heap_n10000\",\"throughput\":2000.0}]}",
        )
        .unwrap();
        let (rows, skipped) = diff_suite(&measured, &baseline, 0.7, 1.0);
        assert_eq!(rows.len(), 2);
        assert_eq!(skipped, vec!["oracle/only_in_quick".to_string()]);
        assert!(!rows[0].regressed, "1.25× passes");
        assert!(rows[1].regressed, "0.4× regresses");
        // Scaling the baseline 2× fails the previously-passing cell
        // (0.625 < 0.7) — the must-fail self-check CI relies on.
        let (rows, _) = diff_suite(&measured, &baseline, 0.7, 2.0);
        assert!(rows[0].regressed);
        // Schema and value validation.
        assert!(suite_from_json("{\"cells\":[]}").is_err());
        assert!(suite_from_json("{\"schema_version\":2,\"cells\":[]}").is_err());
        let err = suite_from_json(
            "{\"schema_version\":1,\"cells\":[{\"section\":\"a\",\"key\":\"b\",\
             \"throughput\":-1.0}]}",
        )
        .unwrap_err();
        assert!(err.contains("throughput"), "{err}");
    }

    #[test]
    fn suite_main_gates_end_to_end() {
        let dir = std::env::temp_dir();
        let unique = format!("{}_suite", std::process::id());
        let suite_path = dir.join(format!("pd_suite_{unique}.json"));
        std::fs::write(
            &suite_path,
            "{\"schema_version\":1,\"bench\":\"engine_suite\",\"cells\":[\
             {\"section\":\"oracle\",\"key\":\"weak_flood_n1000\",\"throughput\":5000.0}]}",
        )
        .unwrap();
        let s = |x: &str| x.to_string();
        let p = s(suite_path.to_str().unwrap());
        // Against itself: every ratio is 1.0 — passes.
        assert_eq!(
            main(&[p.clone(), s("--suite"), s("--baseline"), p.clone()]),
            0
        );
        // Doubling the baseline via --scale must fail at default 0.7.
        assert_eq!(
            main(&[
                p.clone(),
                s("--suite"),
                s("--baseline"),
                p.clone(),
                s("--scale"),
                s("2.0"),
            ]),
            1
        );
        // --suite without --baseline is a usage error.
        assert_eq!(main(&[p.clone(), s("--suite")]), 2);
        std::fs::remove_file(&suite_path).ok();
    }

    #[test]
    fn main_gates_and_writes_end_to_end() {
        let dir = std::env::temp_dir();
        let unique = std::process::id();
        let run = dir.join(format!("pd_run_{unique}.jsonl"));
        let base = dir.join(format!("pd_base_{unique}.json"));
        std::fs::write(&run, run_jsonl(&[(128, 1000.0)], false)).unwrap();

        // Write a baseline from the run, then compare against itself: OK.
        let s = |x: &str| x.to_string();
        assert_eq!(
            main(&[
                s(run.to_str().unwrap()),
                s("--write-baseline"),
                s(base.to_str().unwrap()),
            ]),
            0
        );
        assert_eq!(
            main(&[
                s(run.to_str().unwrap()),
                s("--baseline"),
                s(base.to_str().unwrap()),
            ]),
            0
        );
        // A baseline claiming 2× the measured throughput must fail the
        // gate (measured ratio 0.5 < default 0.7 threshold) — the
        // ISSUE's acceptance criterion.
        let doubled = dir.join(format!("pd_base2_{unique}.json"));
        std::fs::write(
            &doubled,
            "{\"cells\":[{\"n\":128,\"requests_per_sec\":2000.0}]}",
        )
        .unwrap();
        assert_eq!(
            main(&[
                s(run.to_str().unwrap()),
                s("--baseline"),
                s(doubled.to_str().unwrap()),
            ]),
            1
        );
        // ...unless the threshold is loosened below the measured ratio.
        assert_eq!(
            main(&[
                s(run.to_str().unwrap()),
                s("--baseline"),
                s(doubled.to_str().unwrap()),
                s("--threshold"),
                s("0.4"),
            ]),
            0
        );
        // Usage errors exit 2.
        assert_eq!(main(&[]), 2);
        assert_eq!(main(&[s(run.to_str().unwrap())]), 2);
        assert_eq!(main(&[s(run.to_str().unwrap()), s("--wat")]), 2);
        std::fs::remove_file(&run).ok();
        std::fs::remove_file(&base).ok();
        std::fs::remove_file(&doubled).ok();
    }
}
