//! E11 — Kleinberg's navigability dichotomy: greedy routing is polylog
//! only at the critical exponent `r = 2` (2-D lattice).

use nonsearch_analysis::{fit_log_log, SampleStats, Table};
use nonsearch_bench::{banner, quick, trials};
use nonsearch_generators::{KleinbergGrid, SeedSequence};
use nonsearch_graph::NodeId;
use nonsearch_search::greedy_route;
use rand::Rng;

fn main() {
    banner(
        "E11 / Kleinberg navigability",
        "greedy routing on the 2-D small-world lattice is O(log² n) at \
         r = 2 and polynomially slower at other exponents",
    );

    let sides: Vec<usize> = if quick() {
        vec![16, 32, 64]
    } else {
        vec![16, 32, 64, 128, 256]
    };
    let r_values = [0.0, 1.0, 2.0, 3.0];
    let routes = trials(300);
    let seeds = SeedSequence::new(0xE11);

    let mut table = Table::with_columns(&["r", "side", "n", "mean hops", "hops / log2²(n)"]);
    for (ri, &r) in r_values.iter().enumerate() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (si, &side) in sides.iter().enumerate() {
            let n = side * side;
            let mut rng = seeds.subsequence(ri as u64).child_rng(si as u64);
            let grid = KleinbergGrid::sample(side, r, 1, &mut rng).expect("valid grid");
            let mut hops = Vec::new();
            for _ in 0..routes {
                let s = NodeId::new(rng.gen_range(0..n));
                let t = NodeId::new(rng.gen_range(0..n));
                let out = greedy_route(&grid, s, t, 100 * n);
                assert!(out.reached, "greedy cannot get stuck on a full lattice");
                hops.push(out.steps as f64);
            }
            let stats = SampleStats::from_slice(&hops).expect("routes ≥ 1");
            let polylog = (n as f64).log2().powi(2);
            table.row(vec![
                format!("{r:.1}"),
                side.to_string(),
                n.to_string(),
                format!("{:.1} ±{:.1}", stats.mean(), stats.ci95_half_width()),
                format!("{:.3}", stats.mean() / polylog),
            ]);
            xs.push(n as f64);
            ys.push(stats.mean());
        }
        if let Some(fit) = fit_log_log(&xs, &ys) {
            println!(
                "r = {r:.1}: hops ~ n^{:.3}  {}",
                fit.slope,
                if r == 2.0 {
                    "(navigable: ratio column flat, tiny exponent)"
                } else {
                    "(polynomial growth away from r = 2)"
                }
            );
        }
    }
    println!("\n{table}");
    println!("the r = 2 row's hops/log² column stays near-constant; r = 0, 1");
    println!("and 3 drift upward — Kleinberg's dichotomy, the positive contrast");
    println!("to the paper's negative result for scale-free graphs.");
}
