//! Search task description and outcome reporting.

use nonsearch_graph::NodeId;
use std::fmt;

/// When the runner declares a search successful.
///
/// The paper measures "the number of vertices to explore before reaching
/// the target **or a neighbor of the target**"; both readings are
/// supported and compared in the ablation experiment (E13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuccessCriterion {
    /// The target's identity has been discovered (the default; matches
    /// "finding a path to vertex n" in the theorems).
    #[default]
    DiscoverTarget,
    /// Some discovered vertex is adjacent to the target (adjudicated by
    /// the oracle from the true graph, even if the searcher cannot tell).
    ReachNeighbor,
}

/// A search assignment: find `target` starting from `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchTask {
    /// The initially discovered vertex.
    pub start: NodeId,
    /// The vertex being searched for.
    pub target: NodeId,
    /// Success adjudication rule.
    pub criterion: SuccessCriterion,
    /// Maximum number of requests before the runner aborts (`None` =
    /// unlimited).
    pub budget: Option<usize>,
}

impl SearchTask {
    /// Creates a task with the default criterion and no budget.
    pub fn new(start: NodeId, target: NodeId) -> SearchTask {
        SearchTask {
            start,
            target,
            criterion: SuccessCriterion::default(),
            budget: None,
        }
    }

    /// Sets the success criterion.
    pub fn with_criterion(mut self, criterion: SuccessCriterion) -> SearchTask {
        self.criterion = criterion;
        self
    }

    /// Sets a request budget.
    pub fn with_budget(mut self, budget: usize) -> SearchTask {
        self.budget = Some(budget);
        self
    }
}

/// The result of one search run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// `true` if the success criterion was met.
    pub found: bool,
    /// Requests issued before stopping — the paper's cost measure.
    pub requests: usize,
    /// Number of vertices discovered (including the start).
    pub discovered: usize,
    /// `true` if the algorithm returned `None` (no move to make).
    pub gave_up: bool,
    /// `true` if the runner stopped on the request budget.
    pub budget_exhausted: bool,
}

impl SearchOutcome {
    pub(crate) fn success(requests: usize, discovered: usize) -> SearchOutcome {
        SearchOutcome {
            found: true,
            requests,
            discovered,
            gave_up: false,
            budget_exhausted: false,
        }
    }
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.found {
            "found"
        } else if self.budget_exhausted {
            "budget-exhausted"
        } else if self.gave_up {
            "gave-up"
        } else {
            "stopped"
        };
        write!(
            f,
            "{status} after {} requests ({} vertices discovered)",
            self.requests, self.discovered
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let t = SearchTask::new(NodeId::new(0), NodeId::new(9))
            .with_criterion(SuccessCriterion::ReachNeighbor)
            .with_budget(100);
        assert_eq!(t.criterion, SuccessCriterion::ReachNeighbor);
        assert_eq!(t.budget, Some(100));
    }

    #[test]
    fn default_criterion_is_discover() {
        let t = SearchTask::new(NodeId::new(0), NodeId::new(1));
        assert_eq!(t.criterion, SuccessCriterion::DiscoverTarget);
        assert_eq!(t.budget, None);
    }

    #[test]
    fn outcome_display() {
        let o = SearchOutcome::success(42, 17);
        assert!(o.to_string().contains("found after 42 requests"));
        let o = SearchOutcome {
            found: false,
            requests: 10,
            discovered: 5,
            gave_up: true,
            budget_exhausted: false,
        };
        assert!(o.to_string().contains("gave-up"));
        let o = SearchOutcome {
            found: false,
            requests: 10,
            discovered: 5,
            gave_up: false,
            budget_exhausted: true,
        };
        assert!(o.to_string().contains("budget-exhausted"));
    }
}
