//! End-to-end tests of the corpus subsystem through the `xp` binary:
//! build determinism across thread counts, corpus-backed experiments
//! reproducing the generate-per-trial records, and the null-model
//! experiment's record stream.

use nonsearch_engine::{parse_json, validate_jsonl, JsonValue, CELL_TYPE};
use std::path::PathBuf;
use std::process::{Command, Output};

fn xp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xp"))
        .args(args)
        .output()
        .expect("xp binary runs")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn temp_path(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("xp_corpus_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_file(&p).ok();
    p
}

/// The manifest minus its volatile `"build"` footer, reserialized.
fn deterministic_manifest(dir: &std::path::Path) -> String {
    let text = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest exists");
    let JsonValue::Object(pairs) = parse_json(text.trim()).expect("manifest parses") else {
        panic!("manifest is not a JSON object");
    };
    JsonValue::Object(pairs.into_iter().filter(|(k, _)| k != "build").collect()).to_string()
}

fn cell_lines(text: &str) -> Vec<&str> {
    text.lines()
        .filter(|l| {
            parse_json(l)
                .expect("every emitted line parses")
                .get("type")
                .and_then(|t| t.as_str())
                .map(|t| t == CELL_TYPE)
                .unwrap_or(false)
        })
        .collect()
}

#[test]
fn corpus_build_is_byte_identical_across_thread_counts() {
    let dir1 = temp_path("build_t1");
    let dir8 = temp_path("build_t8");
    for (dir, threads) in [(&dir1, "1"), (&dir8, "8")] {
        let out = xp(&[
            "corpus",
            "build",
            dir.to_str().unwrap(),
            "--sizes",
            "64,128",
            "--trials",
            "2",
            "--seed",
            "9",
            "--variants",
            "1",
            "--swaps",
            "4",
            "--threads",
            threads,
        ]);
        assert_ok(&out, "corpus build");
    }

    // Manifests agree modulo the volatile build footer…
    assert_eq!(deterministic_manifest(&dir1), deterministic_manifest(&dir8));

    // …and every stored .nsg file is byte-identical.
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir1.join("graphs"))
        .expect("graphs dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 8, "2 sizes × 2 trials × (1 + 1 variant)");
    for file in files {
        let name = file.file_name().expect("file name");
        let a = std::fs::read(&file).expect("read t1 file");
        let b = std::fs::read(dir8.join("graphs").join(name)).expect("read t8 twin");
        assert_eq!(a, b, "{} differs across thread counts", file.display());
    }

    // The built corpus passes its own verifier.
    let out = xp(&["corpus", "verify", dir1.to_str().unwrap()]);
    assert_ok(&out, "corpus verify");
    let out = xp(&["corpus", "info", dir1.to_str().unwrap()]);
    assert_ok(&out, "corpus info");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("mori(p=0.6,m=1)"), "{stdout}");

    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir8).ok();
}

#[test]
fn theorem1_weak_with_corpus_matches_generate_per_trial() {
    let corpus_dir = temp_path("e1_corpus");
    // Build with the experiment's model (the default spec), seed, and
    // sizes — the configuration under which the corpus serves the exact
    // graphs the experiment would generate.
    let out = xp(&[
        "corpus",
        "build",
        corpus_dir.to_str().unwrap(),
        "--sizes",
        "128,256",
        "--trials",
        "3",
        "--seed",
        "7",
        "--variants",
        "0",
    ]);
    assert_ok(&out, "corpus build");

    let generated = temp_path("e1_generate.jsonl");
    let corpus_backed = temp_path("e1_corpus.jsonl");
    let common = [
        "theorem1-weak",
        "--quick",
        "--sizes",
        "128,256",
        "--trials",
        "3",
        "--seed",
        "7",
        "--out",
    ];

    let mut args: Vec<&str> = common.to_vec();
    args.push(generated.to_str().unwrap());
    let out = xp(&args);
    assert_ok(&out, "generate-per-trial run");

    let mut args: Vec<&str> = common.to_vec();
    args.push(corpus_backed.to_str().unwrap());
    args.extend(["--corpus", corpus_dir.to_str().unwrap()]);
    let out = xp(&args);
    assert_ok(&out, "corpus-backed run");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("graphs: corpus:"),
        "run should announce the corpus:\n{stdout}"
    );

    let a = std::fs::read_to_string(&generated).unwrap();
    let b = std::fs::read_to_string(&corpus_backed).unwrap();
    assert!(validate_jsonl(&a).is_ok());
    assert!(validate_jsonl(&b).is_ok());
    let cells_a = cell_lines(&a);
    assert!(!cells_a.is_empty());
    // The headline acceptance: statistical output is byte-identical.
    assert_eq!(cells_a, cell_lines(&b));

    std::fs::remove_dir_all(&corpus_dir).ok();
    std::fs::remove_file(&generated).ok();
    std::fs::remove_file(&corpus_backed).ok();
}

#[test]
fn theorem1_weak_with_mmap_matches_heap_load_and_generate() {
    let corpus_dir = temp_path("mmap_corpus");
    let out = xp(&[
        "corpus",
        "build",
        corpus_dir.to_str().unwrap(),
        "--sizes",
        "128,256",
        "--trials",
        "3",
        "--seed",
        "7",
        "--variants",
        "0",
    ]);
    assert_ok(&out, "corpus build");
    // The zero-copy verifier accepts what the builder wrote.
    let out = xp(&["corpus", "verify", corpus_dir.to_str().unwrap(), "--mmap"]);
    assert_ok(&out, "corpus verify --mmap");

    let generated = temp_path("mmap_generate.jsonl");
    let heap_backed = temp_path("mmap_heap.jsonl");
    let mmap_backed = temp_path("mmap_mmap.jsonl");
    let common = [
        "theorem1-weak",
        "--quick",
        "--sizes",
        "128,256",
        "--trials",
        "3",
        "--seed",
        "7",
        "--out",
    ];

    let mut args: Vec<&str> = common.to_vec();
    args.push(generated.to_str().unwrap());
    assert_ok(&xp(&args), "generate-per-trial run");

    let mut args: Vec<&str> = common.to_vec();
    args.push(heap_backed.to_str().unwrap());
    args.extend(["--corpus", corpus_dir.to_str().unwrap()]);
    assert_ok(&xp(&args), "heap corpus-backed run");

    let mut args: Vec<&str> = common.to_vec();
    args.push(mmap_backed.to_str().unwrap());
    args.extend(["--corpus", corpus_dir.to_str().unwrap(), "--mmap"]);
    let out = xp(&args);
    assert_ok(&out, "mmap corpus-backed run");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("graphs: corpus:") && stdout.contains("(mmap)"),
        "run should announce the mapped corpus:\n{stdout}"
    );

    let a = std::fs::read_to_string(&generated).unwrap();
    let b = std::fs::read_to_string(&heap_backed).unwrap();
    let c = std::fs::read_to_string(&mmap_backed).unwrap();
    assert!(validate_jsonl(&c).is_ok());
    let cells_a = cell_lines(&a);
    assert!(!cells_a.is_empty());
    // The headline acceptance: a mapped load serves graphs — and thus
    // statistical records — byte-identical to both the heap-decoded
    // corpus and the generate-per-trial path.
    assert_eq!(cells_a, cell_lines(&c));
    assert_eq!(cell_lines(&b), cell_lines(&c));

    std::fs::remove_dir_all(&corpus_dir).ok();
    std::fs::remove_file(&generated).ok();
    std::fs::remove_file(&heap_backed).ok();
    std::fs::remove_file(&mmap_backed).ok();
}

#[test]
fn null_model_quick_emits_cell_records() {
    let out_path = temp_path("null_model.jsonl");
    let out = xp(&[
        "null-model",
        "--quick",
        "--sizes",
        "64,128",
        "--trials",
        "3",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert_ok(&out, "null-model run");

    let text = std::fs::read_to_string(&out_path).unwrap();
    let summary = validate_jsonl(&text).unwrap();
    // 2 sizes × 2 variants × 2 searchers.
    assert_eq!(summary.cells, 8, "{text}");
    let mut variants_seen = std::collections::BTreeSet::new();
    for line in cell_lines(&text) {
        let cell = parse_json(line).unwrap();
        variants_seen.insert(
            cell.get("variant")
                .and_then(|v| v.as_str())
                .expect("variant field")
                .to_string(),
        );
        let success = cell
            .get("success")
            .and_then(|v| v.as_f64())
            .expect("success field");
        assert!((0.0..=1.0).contains(&success));
    }
    assert_eq!(
        variants_seen.into_iter().collect::<Vec<_>>(),
        vec!["original".to_string(), "rewired".to_string()]
    );
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn null_model_uses_corpus_variants_when_available() {
    let corpus_dir = temp_path("nm_corpus");
    let out = xp(&[
        "corpus",
        "build",
        corpus_dir.to_str().unwrap(),
        "--model",
        "ba:m=2",
        "--sizes",
        "64,128",
        "--trials",
        "3",
        "--seed",
        "3605", // null-model's default seed 0xE15
        "--variants",
        "1",
    ]);
    assert_ok(&out, "corpus build");

    let out_path = temp_path("nm_corpus.jsonl");
    let out = xp(&[
        "null-model",
        "--quick",
        "--sizes",
        "64,128",
        "--trials",
        "3",
        "--corpus",
        corpus_dir.to_str().unwrap(),
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert_ok(&out, "corpus-backed null-model run");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("null graphs: corpus:") && stdout.contains("#v0"),
        "run should announce the stored variants:\n{stdout}"
    );
    let text = std::fs::read_to_string(&out_path).unwrap();
    assert_eq!(validate_jsonl(&text).unwrap().cells, 8);

    std::fs::remove_dir_all(&corpus_dir).ok();
    std::fs::remove_file(&out_path).ok();
}
