//! The shared experiment command line, parsed once.
//!
//! Every experiment entry point — the `xp` subcommands and the legacy
//! `exp_*` binaries — understands the same flags:
//!
//! | flag | meaning |
//! |------|---------|
//! | `--quick` | reduced sweep (also honoured via `NONSEARCH_QUICK=1`) |
//! | `--threads N` | worker threads for the trial engine (0 = all cores) |
//! | `--seed S` | override the experiment's default root seed |
//! | `--out PATH` | write structured run records to `PATH` |
//! | `--format F` | `jsonl` (default), `csv`, or `both` |
//! | `--trials N` | override the per-cell trial count |
//! | `--sizes A,B,C` | override the size sweep |
//! | `--corpus DIR` | serve trial graphs from a stored corpus instead of generating |
//! | `--mmap` | serve corpus graphs zero-copy from memory-mapped files |
//! | `--trust-checksums` | skip per-load payload checksums (run `corpus verify` first) |
//! | `--profile` | emit per-cell throughput records (`"type":"profile"`) alongside cells |
//! | `--trace PATH` | record run/cell/trial spans and write Chrome Trace Event JSON to `PATH` |
//! | `--heal` | quarantine + regenerate corrupt corpus blobs instead of failing the load |
//!
//! `--quick`, `--mmap`, `--trust-checksums`, `--profile`, and `--heal` are boolean flags: they take no value, and
//! the strict (`xp`) parser rejects `--quick=...` outright — silently
//! treating `--quick=false` as *enabling* quick mode was a real bug.
//! `NONSEARCH_QUICK` enables quick mode unless it is empty or one of
//! `0`, `false`, `off`, `no` (case-insensitive), which disable it —
//! `NONSEARCH_QUICK=0` used to enable quick mode too.
//!
//! Legacy binaries used to re-scan `std::env::args()` on every call to
//! `quick()`; [`CliOptions::global`] parses the process arguments exactly
//! once instead.

use std::fmt;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Which structured formats a run writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// JSON Lines: one self-describing object per record.
    #[default]
    Jsonl,
    /// Comma-separated values with a header row.
    Csv,
    /// JSON Lines at `--out`, CSV alongside with a `.csv` extension.
    Both,
}

impl OutputFormat {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Result<OutputFormat, OptionsError> {
        match s {
            "jsonl" | "json" => Ok(OutputFormat::Jsonl),
            "csv" => Ok(OutputFormat::Csv),
            "both" => Ok(OutputFormat::Both),
            other => Err(OptionsError::BadValue {
                flag: "--format",
                value: other.to_string(),
                expected: "jsonl | csv | both",
            }),
        }
    }
}

impl fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OutputFormat::Jsonl => "jsonl",
            OutputFormat::Csv => "csv",
            OutputFormat::Both => "both",
        })
    }
}

/// A malformed experiment command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptionsError {
    /// A flag that takes a value was given none.
    MissingValue {
        /// The offending flag.
        flag: &'static str,
    },
    /// A flag value failed to parse.
    BadValue {
        /// The offending flag.
        flag: &'static str,
        /// What was passed.
        value: String,
        /// What would have parsed.
        expected: &'static str,
    },
    /// An argument the strict (xp) parser does not know.
    Unknown {
        /// The argument as given.
        arg: String,
    },
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::MissingValue { flag } => write!(f, "{flag} requires a value"),
            OptionsError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag}: cannot parse {value:?} (expected {expected})"),
            OptionsError::Unknown { arg } => write!(f, "unknown argument {arg:?}"),
        }
    }
}

impl std::error::Error for OptionsError {}

/// The experiment options shared by `xp` and the legacy binaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CliOptions {
    /// Reduced sweep requested (`--quick` / `NONSEARCH_QUICK`).
    pub quick: bool,
    /// Requested worker threads; `0` means one per available core.
    pub threads: usize,
    /// Root-seed override (`None` = the experiment's default seed).
    pub seed: Option<u64>,
    /// Structured-output path (`None` = pretty tables only).
    pub out: Option<PathBuf>,
    /// Structured-output format.
    pub format: OutputFormat,
    /// Per-cell trial-count override.
    pub trials: Option<usize>,
    /// Size-sweep override.
    pub sizes: Option<Vec<usize>>,
    /// Directory of a persistent graph corpus; experiments that sample
    /// whole graphs per trial serve them from here instead of
    /// regenerating (`None` = generate per trial).
    pub corpus: Option<PathBuf>,
    /// Serve corpus graphs zero-copy from memory-mapped `.nsg` files
    /// (`--mmap`); meaningful only together with `--corpus`.
    pub mmap: bool,
    /// Skip the per-load payload checksum pass on corpus opens
    /// (`--trust-checksums`): integrity then rests on a prior
    /// `corpus verify`, which always hashes. Meaningful only together
    /// with `--corpus`.
    pub trust_checksums: bool,
    /// Emit per-cell throughput records (`--profile`): wall time and
    /// requests/sec per measured cell, as JSONL `"type":"profile"`
    /// records riding alongside the deterministic cell stream.
    pub profile: bool,
    /// Write span traces as Chrome Trace Event Format JSON to this path
    /// (`--trace PATH`): run → size-cell → trial-batch scopes, loadable
    /// in Perfetto / `chrome://tracing`. `None` disables tracing.
    pub trace: Option<PathBuf>,
    /// Self-heal corrupt corpus blobs (`--heal`): a checksum-failing
    /// `.nsg` file is quarantined and regenerated from the manifest's
    /// model spec + seed instead of failing the load. Meaningful only
    /// together with `--corpus`.
    pub heal: bool,
}

impl CliOptions {
    /// Strictly parses experiment flags: unknown arguments are errors.
    /// `NONSEARCH_QUICK` in the environment also enables quick mode.
    pub fn from_args<I, S>(args: I) -> Result<CliOptions, OptionsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::parse(args, true)
    }

    /// Leniently parses experiment flags, ignoring unknown arguments and
    /// malformed flag values alike — this is what the legacy binaries
    /// (and the process-global options used inside test binaries) rely
    /// on, so a stray harness argument never aborts a run.
    pub fn from_args_lenient<I, S>(args: I) -> CliOptions
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::parse(args, false).expect("lenient parse reports no errors")
    }

    /// The process-wide options, parsed exactly once from
    /// `std::env::args()` (lenient) and `NONSEARCH_QUICK`.
    pub fn global() -> &'static CliOptions {
        static GLOBAL: OnceLock<CliOptions> = OnceLock::new();
        GLOBAL.get_or_init(|| CliOptions::from_args_lenient(std::env::args().skip(1)))
    }

    fn parse<I, S>(args: I, strict: bool) -> Result<CliOptions, OptionsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut opts = CliOptions {
            quick: env_flag_enabled(std::env::var_os("NONSEARCH_QUICK")),
            ..CliOptions::default()
        };
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            // Accept both `--flag value` and `--flag=value`.
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let mut value = |flag_name: &'static str| -> Result<String, OptionsError> {
                match &inline {
                    Some(v) => Ok(v.clone()),
                    // Never consume a following `--flag` as this flag's
                    // value: `--seed --quick` must report the missing
                    // seed, not eat (and lose) `--quick`.
                    None => match iter.peek() {
                        Some(next) if !next.starts_with("--") => {
                            Ok(iter.next().expect("peeked value exists"))
                        }
                        _ => Err(OptionsError::MissingValue { flag: flag_name }),
                    },
                }
            };
            // Boolean flags take no value. An inline value is an error:
            // strict mode rejects it (`--quick=false` must not *enable*
            // quick mode), lenient mode swallows the whole argument.
            let boolean = |flag_name: &'static str| -> Result<bool, OptionsError> {
                match &inline {
                    Some(v) => Err(OptionsError::BadValue {
                        flag: flag_name,
                        value: v.clone(),
                        expected: "no value (boolean flag; pass it bare)",
                    }),
                    None => Ok(true),
                }
            };
            let outcome: Result<(), OptionsError> = match flag.as_str() {
                "--quick" => boolean("--quick").map(|b| opts.quick = b),
                "--mmap" => boolean("--mmap").map(|b| opts.mmap = b),
                "--trust-checksums" => {
                    boolean("--trust-checksums").map(|b| opts.trust_checksums = b)
                }
                "--profile" => boolean("--profile").map(|b| opts.profile = b),
                "--heal" => boolean("--heal").map(|b| opts.heal = b),
                "--threads" => value("--threads")
                    .and_then(|v| parse_num(&v, "--threads"))
                    .map(|n| opts.threads = n),
                "--seed" => value("--seed")
                    .and_then(|v| parse_num(&v, "--seed"))
                    .map(|s| opts.seed = Some(s)),
                "--trials" => value("--trials")
                    .and_then(|v| parse_num(&v, "--trials"))
                    .map(|t| opts.trials = Some(t)),
                "--out" => value("--out").map(|v| opts.out = Some(PathBuf::from(v))),
                "--trace" => value("--trace").map(|v| opts.trace = Some(PathBuf::from(v))),
                "--corpus" => value("--corpus").map(|v| opts.corpus = Some(PathBuf::from(v))),
                "--format" => value("--format")
                    .and_then(|v| OutputFormat::parse(&v))
                    .map(|f| opts.format = f),
                "--sizes" => value("--sizes").and_then(|raw| {
                    let sizes: Result<Vec<usize>, OptionsError> = raw
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| parse_num(s, "--sizes"))
                        .collect();
                    let sizes = sizes?;
                    if sizes.is_empty() {
                        return Err(OptionsError::BadValue {
                            flag: "--sizes",
                            value: raw,
                            expected: "a comma-separated list like 512,1024",
                        });
                    }
                    opts.sizes = Some(sizes);
                    Ok(())
                }),
                _ => Err(OptionsError::Unknown { arg }),
            };
            // Lenient mode swallows everything — unknown flags AND
            // malformed values — so a stray harness argument can never
            // abort a legacy binary or a test process.
            if let Err(e) = outcome {
                if strict {
                    return Err(e);
                }
            }
        }
        Ok(opts)
    }

    /// The worker-thread count after resolving `0` to the machine's
    /// available parallelism. This is the run's worker *ceiling*: the
    /// engine additionally caps each cell's workers at its trial count.
    pub fn resolved_threads(&self) -> usize {
        crate::runner::resolve_thread_setting(self.threads)
    }

    /// The experiment's root seed: the `--seed` override, else `default`.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Applies the `--sizes` override / quick truncation to a full sweep.
    pub fn sweep(&self, full: &[usize]) -> Vec<usize> {
        if let Some(sizes) = &self.sizes {
            return sizes.clone();
        }
        if self.quick {
            full.iter().copied().take(3.min(full.len())).collect()
        } else {
            full.to_vec()
        }
    }

    /// Applies the `--trials` override / quick scaling to a full count.
    pub fn trial_count(&self, full: usize) -> usize {
        if let Some(trials) = self.trials {
            return trials.max(1);
        }
        if self.quick {
            (full / 3).max(3)
        } else {
            full
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &'static str) -> Result<T, OptionsError> {
    s.parse().map_err(|_| OptionsError::BadValue {
        flag,
        value: s.to_string(),
        expected: "a non-negative integer",
    })
}

/// Interprets an on/off environment variable (`NONSEARCH_QUICK`).
///
/// Unset, empty, and the usual negatives — `0`, `false`, `off`, `no`
/// (case-insensitive, whitespace-trimmed) — mean *off*; anything else
/// (`1`, `true`, …) means *on*. The old rule was "set at all means on",
/// which turned `NONSEARCH_QUICK=0` into a way to *enable* quick mode.
fn env_flag_enabled(value: Option<std::ffi::OsString>) -> bool {
    match value {
        None => false,
        Some(raw) => {
            let text = raw.to_string_lossy();
            let text = text.trim();
            !(text.is_empty()
                || text.eq_ignore_ascii_case("0")
                || text.eq_ignore_ascii_case("false")
                || text.eq_ignore_ascii_case("off")
                || text.eq_ignore_ascii_case("no"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(args: &[&str]) -> Result<CliOptions, OptionsError> {
        CliOptions::from_args(args.iter().copied())
    }

    #[test]
    fn parses_every_flag() {
        let opts = strict(&[
            "--quick",
            "--threads",
            "4",
            "--seed",
            "17",
            "--out",
            "runs.jsonl",
            "--format",
            "both",
            "--trials",
            "9",
            "--sizes",
            "128,256,512",
            "--corpus",
            "corpus-dir",
            "--trust-checksums",
            "--profile",
            "--heal",
            "--trace",
            "run.trace.json",
        ])
        .unwrap();
        assert!(opts.quick);
        assert!(opts.trust_checksums);
        assert!(opts.profile);
        assert!(opts.heal);
        assert_eq!(
            opts.trace.as_deref(),
            Some(std::path::Path::new("run.trace.json"))
        );
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.seed, Some(17));
        assert_eq!(
            opts.out.as_deref(),
            Some(std::path::Path::new("runs.jsonl"))
        );
        assert_eq!(opts.format, OutputFormat::Both);
        assert_eq!(opts.trials, Some(9));
        assert_eq!(opts.sizes, Some(vec![128, 256, 512]));
        assert_eq!(
            opts.corpus.as_deref(),
            Some(std::path::Path::new("corpus-dir"))
        );
    }

    #[test]
    fn equals_form_is_accepted() {
        let opts = strict(&["--threads=2", "--sizes=64,128"]).unwrap();
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.sizes, Some(vec![64, 128]));
    }

    #[test]
    fn strict_rejects_unknown_lenient_ignores() {
        assert_eq!(
            strict(&["--wat"]),
            Err(OptionsError::Unknown {
                arg: "--wat".into()
            })
        );
        let opts = CliOptions::from_args_lenient(["--wat", "--quick"]);
        assert!(opts.quick);
    }

    #[test]
    fn lenient_swallows_malformed_values_too() {
        // A libtest-style harness flag with a value xp doesn't know.
        let opts = CliOptions::from_args_lenient(["--format", "terse", "--quick"]);
        assert!(opts.quick);
        assert_eq!(opts.format, OutputFormat::Jsonl);
        // Bad numbers and trailing value-less flags are dropped, not fatal.
        let opts = CliOptions::from_args_lenient(["--threads", "abc", "--seed"]);
        assert_eq!(opts.threads, 0);
        assert_eq!(opts.seed, None);
    }

    #[test]
    fn value_less_flag_never_eats_a_following_flag() {
        // Lenient: `--seed` is dropped, `--quick` survives.
        let opts = CliOptions::from_args_lenient(["--seed", "--quick"]);
        assert_eq!(opts.seed, None);
        assert!(opts.quick);
        // Strict: the missing value is reported against `--seed`.
        assert_eq!(
            strict(&["--seed", "--quick"]),
            Err(OptionsError::MissingValue { flag: "--seed" })
        );
    }

    #[test]
    fn missing_and_bad_values_are_reported() {
        assert_eq!(
            strict(&["--threads"]),
            Err(OptionsError::MissingValue { flag: "--threads" })
        );
        assert!(matches!(
            strict(&["--seed", "xyz"]),
            Err(OptionsError::BadValue { flag: "--seed", .. })
        ));
        assert!(matches!(
            strict(&["--format", "xml"]),
            Err(OptionsError::BadValue {
                flag: "--format",
                ..
            })
        ));
        assert!(matches!(
            strict(&["--sizes", ","]),
            Err(OptionsError::BadValue {
                flag: "--sizes",
                ..
            })
        ));
    }

    #[test]
    fn env_flag_values_are_interpreted_not_just_detected() {
        use std::ffi::OsString;
        let enabled = |v: &str| env_flag_enabled(Some(OsString::from(v)));
        assert!(!env_flag_enabled(None));
        // The regression: these used to enable quick mode.
        for off in ["", "0", "false", "FALSE", "off", "Off", "no", " 0 "] {
            assert!(!enabled(off), "{off:?} must disable");
        }
        for on in ["1", "true", "TRUE", "yes", "on", "quick"] {
            assert!(enabled(on), "{on:?} must enable");
        }
    }

    #[test]
    fn boolean_flags_reject_inline_values_strictly() {
        // The regression: `--quick=false` used to *enable* quick mode.
        for arg in [
            "--quick=false",
            "--quick=true",
            "--quick=",
            "--mmap=0",
            "--trust-checksums=1",
            "--profile=true",
            "--heal=1",
        ] {
            let err = strict(&[arg]).unwrap_err();
            assert!(
                matches!(err, OptionsError::BadValue { .. }),
                "{arg}: {err:?}"
            );
        }
        // Lenient mode swallows the malformed argument entirely — it
        // must NOT come out as `quick: true`.
        let opts = CliOptions::from_args_lenient(["--quick=false", "--threads", "2"]);
        assert!(!opts.quick);
        assert_eq!(opts.threads, 2);
        let opts = CliOptions::from_args_lenient(["--mmap=yes"]);
        assert!(!opts.mmap);
    }

    #[test]
    fn mmap_flag_parses() {
        let opts = strict(&["--mmap", "--corpus", "dir"]).unwrap();
        assert!(opts.mmap);
        assert!(!CliOptions::default().mmap);
        let opts = CliOptions::from_args_lenient(["--mmap"]);
        assert!(opts.mmap);
    }

    #[test]
    fn profile_flag_parses() {
        let opts = strict(&["--profile"]).unwrap();
        assert!(opts.profile);
        assert!(!CliOptions::default().profile);
        let opts = CliOptions::from_args_lenient(["--profile"]);
        assert!(opts.profile);
    }

    #[test]
    fn heal_flag_parses() {
        let opts = strict(&["--heal", "--corpus", "dir"]).unwrap();
        assert!(opts.heal);
        assert!(!CliOptions::default().heal);
        let opts = CliOptions::from_args_lenient(["--heal"]);
        assert!(opts.heal);
    }

    #[test]
    fn trust_checksums_flag_parses() {
        let opts = strict(&["--trust-checksums", "--corpus", "dir"]).unwrap();
        assert!(opts.trust_checksums);
        assert!(!CliOptions::default().trust_checksums);
        let opts = CliOptions::from_args_lenient(["--trust-checksums"]);
        assert!(opts.trust_checksums);
    }

    #[test]
    fn sweep_and_trials_honour_quick_and_overrides() {
        let full = CliOptions::default();
        assert_eq!(full.sweep(&[1, 2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(full.trial_count(12), 12);

        let quick = CliOptions {
            quick: true,
            ..CliOptions::default()
        };
        assert_eq!(quick.sweep(&[1, 2, 3, 4]), vec![1, 2, 3]);
        assert_eq!(quick.trial_count(12), 4);
        assert_eq!(quick.trial_count(4), 3);

        let overridden = CliOptions {
            quick: true,
            trials: Some(2),
            sizes: Some(vec![99]),
            ..CliOptions::default()
        };
        assert_eq!(overridden.sweep(&[1, 2, 3, 4]), vec![99]);
        assert_eq!(overridden.trial_count(12), 2);
    }

    #[test]
    fn resolved_threads_never_zero() {
        let opts = CliOptions::default();
        assert!(opts.resolved_threads() >= 1);
        let two = CliOptions {
            threads: 2,
            ..CliOptions::default()
        };
        assert_eq!(two.resolved_threads(), 2);
    }

    #[test]
    fn seed_override() {
        assert_eq!(CliOptions::default().seed_or(7), 7);
        let opts = CliOptions {
            seed: Some(1),
            ..CliOptions::default()
        };
        assert_eq!(opts.seed_or(7), 1);
    }

    #[test]
    fn errors_render() {
        let text = OptionsError::BadValue {
            flag: "--seed",
            value: "x".into(),
            expected: "a non-negative integer",
        }
        .to_string();
        assert!(text.contains("--seed"));
        assert!(OptionsError::MissingValue { flag: "--out" }
            .to_string()
            .contains("--out"));
    }
}
