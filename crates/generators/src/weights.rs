//! Sampling primitives used by the attachment processes.

use crate::{GeneratorError, Result};
use nonsearch_graph::NodeId;
use rand::Rng;

/// An urn of vertex tickets for preferential attachment.
///
/// Sampling a uniform ticket from the urn samples a vertex with
/// probability proportional to its ticket count. Evolving models push one
/// ticket per unit of (in)degree, turning preferential attachment into an
/// O(1)-per-step process.
///
/// ```
/// use nonsearch_generators::{rng_from_seed, UrnSampler};
/// use nonsearch_graph::NodeId;
///
/// let mut urn = UrnSampler::new();
/// urn.push(NodeId::new(0));
/// urn.push(NodeId::new(0));
/// urn.push(NodeId::new(1));
/// // Vertex 0 is drawn twice as often as vertex 1 (in expectation).
/// let mut rng = rng_from_seed(1);
/// let v = urn.sample(&mut rng).unwrap();
/// assert!(v.index() <= 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UrnSampler {
    tickets: Vec<NodeId>,
}

impl UrnSampler {
    /// Creates an empty urn.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty urn with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        UrnSampler {
            tickets: Vec::with_capacity(capacity),
        }
    }

    /// Adds one ticket for `v`.
    pub fn push(&mut self, v: NodeId) {
        self.tickets.push(v);
    }

    /// Number of tickets currently in the urn.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// `true` if the urn holds no tickets.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Draws a vertex with probability proportional to its ticket count.
    ///
    /// Returns `None` if the urn is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.tickets.is_empty() {
            None
        } else {
            Some(self.tickets[rng.gen_range(0..self.tickets.len())])
        }
    }
}

/// Weighted sampling over `0..n` by prefix sums and binary search.
///
/// Build cost O(n), sample cost O(log n). Suited to static weight vectors
/// such as power-law degree distributions or Kleinberg's lattice-distance
/// distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeSampler {
    cumulative: Vec<f64>,
}

impl CumulativeSampler {
    /// Builds a sampler from non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `weights` is empty,
    /// contains a negative or non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(GeneratorError::invalid(
                "weights",
                "[]",
                "a non-empty slice",
            ));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(GeneratorError::invalid(
                    "weights",
                    w,
                    "finite non-negative values",
                ));
            }
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return Err(GeneratorError::invalid("weights", acc, "a positive total"));
        }
        Ok(CumulativeSampler { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` if the sampler has no categories (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples an index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("sampler is non-empty");
        let x = rng.gen_range(0.0..total);
        // partition_point returns the first index with cumulative > x.
        self.cumulative.partition_point(|&c| c <= x)
    }

    /// The probability assigned to `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn probability(&self, index: usize) -> f64 {
        let total = *self.cumulative.last().expect("sampler is non-empty");
        let prev = if index == 0 {
            0.0
        } else {
            self.cumulative[index - 1]
        };
        (self.cumulative[index] - prev) / total
    }
}

/// A small discrete distribution over `1..=k`, used for the Cooper–Frieze
/// per-step edge counts (`p` and `q` in the paper's notation).
///
/// ```
/// use nonsearch_generators::DiscreteDistribution;
///
/// // 70% one edge, 30% two edges.
/// let d = DiscreteDistribution::new(vec![0.7, 0.3])?;
/// assert_eq!(d.max_value(), 2);
/// assert!((d.mean() - 1.3).abs() < 1e-12);
/// # Ok::<(), nonsearch_generators::GeneratorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDistribution {
    /// `weights[i]` is the probability of value `i + 1`.
    weights: Vec<f64>,
    sampler: CumulativeSampler,
}

impl DiscreteDistribution {
    /// Builds a distribution where `weights[i]` is the (unnormalized)
    /// probability of the value `i + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] under the same
    /// conditions as [`CumulativeSampler::new`].
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        let sampler = CumulativeSampler::new(&weights)?;
        Ok(DiscreteDistribution { weights, sampler })
    }

    /// The point distribution that always yields `value`.
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError::InvalidParameter`] if `value == 0`.
    pub fn constant(value: usize) -> Result<Self> {
        if value == 0 {
            return Err(GeneratorError::invalid(
                "value",
                0usize,
                "a positive integer",
            ));
        }
        let mut weights = vec![0.0; value];
        weights[value - 1] = 1.0;
        Self::new(weights)
    }

    /// Largest value with positive probability.
    pub fn max_value(&self) -> usize {
        self.weights
            .iter()
            .rposition(|&w| w > 0.0)
            .map(|i| i + 1)
            .expect("distribution has positive mass")
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i + 1) as f64 * w)
            .sum::<f64>()
            / total
    }

    /// Samples a value in `1..=max_value()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sampler.sample(rng) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn urn_respects_ticket_multiplicity() {
        let mut urn = UrnSampler::new();
        for _ in 0..9 {
            urn.push(NodeId::new(0));
        }
        urn.push(NodeId::new(1));
        let mut rng = rng_from_seed(11);
        let draws = 20_000;
        let zeros = (0..draws)
            .filter(|_| urn.sample(&mut rng).unwrap() == NodeId::new(0))
            .count();
        let frac = zeros as f64 / draws as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn empty_urn_yields_none() {
        let urn = UrnSampler::new();
        let mut rng = rng_from_seed(1);
        assert!(urn.sample(&mut rng).is_none());
        assert!(urn.is_empty());
        assert_eq!(urn.len(), 0);
    }

    #[test]
    fn cumulative_sampler_matches_weights() {
        let s = CumulativeSampler::new(&[1.0, 3.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert!((s.probability(0) - 0.25).abs() < 1e-12);
        assert!((s.probability(1) - 0.75).abs() < 1e-12);
        let mut rng = rng_from_seed(5);
        let draws = 40_000;
        let ones = (0..draws).filter(|_| s.sample(&mut rng) == 1).count();
        let frac = ones as f64 / draws as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let s = CumulativeSampler::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = rng_from_seed(2);
        for _ in 0..1000 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(CumulativeSampler::new(&[]).is_err());
        assert!(CumulativeSampler::new(&[-1.0]).is_err());
        assert!(CumulativeSampler::new(&[f64::NAN]).is_err());
        assert!(CumulativeSampler::new(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn discrete_distribution_basics() {
        let d = DiscreteDistribution::new(vec![0.5, 0.0, 0.5]).unwrap();
        assert_eq!(d.max_value(), 3);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let mut rng = rng_from_seed(3);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!(v == 1 || v == 3);
        }
    }

    #[test]
    fn constant_distribution() {
        let d = DiscreteDistribution::constant(4).unwrap();
        assert_eq!(d.max_value(), 4);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        let mut rng = rng_from_seed(4);
        assert_eq!(d.sample(&mut rng), 4);
        assert!(DiscreteDistribution::constant(0).is_err());
    }
}
