//! `nonsearch_obs` — observability primitives for the trial engine.
//!
//! Two independent facilities, both hand-rolled (the build has no
//! network, so no external metrics/tracing crates):
//!
//! * **Metrics** — a fixed-capacity bundle of per-worker counters and
//!   one log₂ histogram ([`Metrics`], [`Log2Histogram`]). Everything is
//!   inline plain-old-data: updating a counter is an integer add,
//!   recording a histogram sample is an add at a computed index, and
//!   merging two bundles is field-wise `u64` addition — exact and
//!   associative, so aggregates merged in strict trial order are
//!   bit-identical for any worker count, and nothing in the steady
//!   state touches the heap.
//! * **Tracing** — a cheap span tracer ([`Tracer`], [`SpanGuard`])
//!   whose scopes record wall-clock begin/duration pairs and export
//!   them as Chrome Trace Event Format JSON
//!   ([`Tracer::to_chrome_trace`]), loadable in `chrome://tracing` or
//!   Perfetto. A disabled tracer (the default) reduces every scope to
//!   an `Option` check; an enabled one appends to a mutex-guarded
//!   event buffer, which may allocate — tracing is opt-in per run and
//!   sits outside the allocation-free guarantee, which covers the
//!   metrics path only.
//! * **Resources** — fixed-shape per-worker phase timers
//!   ([`PhaseTimes`]) that decompose trial wall time like `Metrics`
//!   decomposes trial work, a `/proc`-backed process sampler
//!   ([`ResourceSample`]) for peak RSS / faults / context switches,
//!   and text renderers ([`render_log2_histogram`],
//!   [`prometheus_text`]) shared by `xp report` and the future
//!   daemon's stats endpoint.
//!
//! This crate is a leaf on purpose: `nonsearch_engine`, `core`, and
//! `bench` all depend on it, so it cannot depend on any of them (the
//! Chrome-trace JSON here is assembled by hand for that reason —
//! span names are static identifiers and numbers are integers, so no
//! escaping is needed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod phase;
mod render;
mod resource;

pub use phase::{elapsed_ns, PhaseTimes};
pub use render::{prometheus_text, render_log2_histogram};
pub use resource::ResourceSample;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of buckets in a [`Log2Histogram`]: one per possible
/// `u64::BITS` magnitude plus the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-capacity base-2 histogram of `u64` samples.
///
/// Bucket `0` counts exact zeros; bucket `k ≥ 1` counts samples whose
/// highest set bit is `k − 1`, i.e. samples in `[2^(k−1), 2^k)`. With
/// 65 buckets every `u64` has a bucket, so recording can never
/// overflow the index and never allocates.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("total", &self.total())
            .field("buckets", &self.trimmed())
            .finish()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Adds `count` samples directly to bucket `index` — for rebuilding
    /// a histogram from its serialized bucket array (`xp report`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn add_to_bucket(&mut self, index: usize, count: u64) {
        self.buckets[index] += count;
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// All 65 bucket counts (index = [`Log2Histogram::bucket_of`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// The buckets up to and including the last nonzero one — the
    /// compact form record writers serialize (an empty histogram
    /// serializes as an empty array).
    pub fn trimmed(&self) -> &[u64] {
        let last = self
            .buckets
            .iter()
            .rposition(|&count| count != 0)
            .map_or(0, |i| i + 1);
        &self.buckets[..last]
    }
}

/// The per-worker metrics bundle: counters for everything a trial's
/// oracle work touches, plus a per-trial request-count histogram.
///
/// All fields are plain `u64`s updated by direct addition, so a worker
/// carries one `Metrics` on its stack, zeroes it per trial, and the
/// engine merges the deltas in strict trial order — `u64` addition is
/// exact and associative, so the merged totals are bit-identical for
/// any `--threads` value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Metrics {
    /// Trials folded into this bundle.
    pub trials: u64,
    /// Oracle requests served (weak + strong).
    pub requests: u64,
    /// Vertices discovered across all searches.
    pub discoveries: u64,
    /// Edges whose second endpoint became known.
    pub edge_resolutions: u64,
    /// Resolved edges skipped by frontier cursor scans.
    pub frontier_rescans: u64,
    /// Times a pooled scratch view was reset for a fresh search.
    pub scratch_resets: u64,
    /// Faults the engine injected into trials (chaos runs only; always
    /// zero in fault-free runs).
    pub faults_injected: u64,
    /// Trial attempts that panicked and were re-run under
    /// `FailurePolicy::Retry` — each retried attempt re-derives the
    /// trial's seed stream, so the retried trial's contribution to the
    /// aggregates is bit-identical to a fault-free run's.
    pub trials_retried: u64,
    /// Trials dropped after exhausting their retry budget (or
    /// immediately, under `FailurePolicy::Skip`). Skipped trials fold
    /// no measurements, so a run with skips is *not* comparable to a
    /// fault-free run — this counter is how you notice.
    pub trials_skipped: u64,
    /// Per-trial total request counts, log₂-bucketed.
    pub trial_requests: Log2Histogram,
}

impl Metrics {
    /// An all-zero bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every counter and histogram bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Metrics) {
        self.trials += other.trials;
        self.requests += other.requests;
        self.discoveries += other.discoveries;
        self.edge_resolutions += other.edge_resolutions;
        self.frontier_rescans += other.frontier_rescans;
        self.scratch_resets += other.scratch_resets;
        self.faults_injected += other.faults_injected;
        self.trials_retried += other.trials_retried;
        self.trials_skipped += other.trials_skipped;
        self.trial_requests.merge(&other.trial_requests);
    }

    /// Records one trial's total request count into the histogram
    /// (exactly one call per trial keeps the bucket sum equal to the
    /// trial count — `xp validate` checks that invariant).
    pub fn observe_trial_requests(&mut self, requests: u64) {
        self.trial_requests.record(requests);
    }
}

/// One completed span: static name, begin offset, and duration, both
/// in microseconds from the tracer's epoch.
#[derive(Clone, Copy, Debug)]
struct TraceEvent {
    name: &'static str,
    tid: u64,
    ts_us: u64,
    dur_us: u64,
}

struct TracerInner {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl std::fmt::Debug for TracerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let events = self.events.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("TracerInner")
            .field("events", &events)
            .finish()
    }
}

/// Stable small integer per OS thread, so trace rows group by worker.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// A hand-rolled span tracer: [`Tracer::span`] returns a guard that
/// records a Chrome-trace complete event when dropped.
///
/// The default tracer is **disabled** — `span` costs an `Option`
/// check and records nothing — so instrumented code paths stay free
/// when no `--trace` was requested. Clones share one event buffer, so
/// worker threads can trace into the same run.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer collecting events from now on.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; the returned guard records it on drop. Span names
    /// must be static identifiers (letters, digits, `-`, `_`) — they
    /// are emitted into JSON without escaping.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            inner: self.inner.as_deref(),
            name,
            begin_us: self
                .inner
                .as_deref()
                .map(|i| i.epoch.elapsed().as_micros() as u64),
        }
    }

    /// Number of completed spans recorded so far.
    pub fn event_count(&self) -> usize {
        self.inner
            .as_deref()
            .map_or(0, |i| i.events.lock().expect("tracer lock").len())
    }

    /// Serializes every completed span as one line of Chrome Trace
    /// Event Format JSON (`{"traceEvents":[...]}`), loadable in
    /// Perfetto / `chrome://tracing`. Returns `None` for a disabled
    /// tracer.
    pub fn to_chrome_trace(&self) -> Option<String> {
        let inner = self.inner.as_deref()?;
        let events = inner.events.lock().expect("tracer lock");
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(event.name);
            out.push_str("\",\"cat\":\"nonsearch\",\"ph\":\"X\",\"ts\":");
            out.push_str(&event.ts_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&event.dur_us.to_string());
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&event.tid.to_string());
            out.push('}');
        }
        out.push_str("]}");
        Some(out)
    }
}

/// An open span; dropping it records the completed event.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    inner: Option<&'t TracerInner>,
    name: &'static str,
    begin_us: Option<u64>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(inner), Some(begin_us)) = (self.inner, self.begin_us) {
            let now_us = inner.epoch.elapsed().as_micros() as u64;
            let event = TraceEvent {
                name: self.name,
                tid: current_tid(),
                ts_us: begin_us,
                dur_us: now_us.saturating_sub(begin_us),
            };
            if let Ok(mut events) = inner.events.lock() {
                events.push(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = Log2Histogram::new();
        a.record(0);
        a.record(5);
        a.record(5);
        let mut b = Log2Histogram::new();
        b.record(7);
        b.record(1 << 40);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[3], 3); // 5, 5, 7 ∈ [4, 8)
        assert_eq!(a.buckets()[41], 1);
        assert_eq!(a.trimmed().len(), 42);
        assert_eq!(Log2Histogram::new().trimmed().len(), 0);
    }

    #[test]
    fn metrics_merge_is_fieldwise() {
        let mut a = Metrics {
            trials: 1,
            requests: 10,
            discoveries: 4,
            edge_resolutions: 9,
            frontier_rescans: 2,
            scratch_resets: 1,
            ..Metrics::new()
        };
        a.observe_trial_requests(10);
        let mut b = Metrics {
            trials: 1,
            requests: 20,
            ..Metrics::new()
        };
        b.observe_trial_requests(20);
        a.merge(&b);
        assert_eq!(a.trials, 2);
        assert_eq!(a.requests, 30);
        assert_eq!(a.discoveries, 4);
        assert_eq!(a.edge_resolutions, 9);
        assert_eq!(a.trial_requests.total(), 2);
    }

    #[test]
    fn fault_counters_merge_fieldwise() {
        let mut a = Metrics {
            faults_injected: 2,
            trials_retried: 1,
            ..Metrics::new()
        };
        let b = Metrics {
            faults_injected: 1,
            trials_retried: 3,
            trials_skipped: 1,
            ..Metrics::new()
        };
        a.merge(&b);
        assert_eq!(a.faults_injected, 3);
        assert_eq!(a.trials_retried, 4);
        assert_eq!(a.trials_skipped, 1);
        // Fault-free bundles keep the counters at zero.
        assert_eq!(Metrics::new().faults_injected, 0);
    }

    #[test]
    fn merge_order_does_not_matter() {
        // u64 sums are exact, so any fold order gives the same bundle —
        // the property the engine's strict-trial-order merge relies on
        // for cross-thread bit-identity.
        let mut deltas = Vec::new();
        for i in 0..10u64 {
            let mut d = Metrics {
                trials: 1,
                requests: i * i + 1,
                discoveries: i,
                ..Metrics::new()
            };
            d.observe_trial_requests(d.requests);
            deltas.push(d);
        }
        let mut forward = Metrics::new();
        for d in &deltas {
            forward.merge(d);
        }
        let mut backward = Metrics::new();
        for d in deltas.iter().rev() {
            backward.merge(d);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let _span = tracer.span("run");
        }
        assert_eq!(tracer.event_count(), 0);
        assert!(tracer.to_chrome_trace().is_none());
    }

    #[test]
    fn enabled_tracer_emits_chrome_trace_json() {
        let tracer = Tracer::enabled();
        {
            let _outer = tracer.span("run");
            let _inner = tracer.span("size-cell");
        }
        assert_eq!(tracer.event_count(), 2);
        let json = tracer.to_chrome_trace().expect("enabled");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"run\""));
        assert!(json.contains("\"name\":\"size-cell\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn clones_share_the_event_buffer() {
        let tracer = Tracer::enabled();
        let clone = tracer.clone();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _span = clone.span("trial");
            });
        });
        {
            let _span = tracer.span("trial-batch");
        }
        assert_eq!(tracer.event_count(), 2);
    }

    #[test]
    fn span_durations_are_ordered() {
        let tracer = Tracer::enabled();
        {
            let _outer = tracer.span("outer");
            let _inner = tracer.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let json = tracer.to_chrome_trace().expect("enabled");
        // Both spans slept, so both durations are >= ~2ms; just check
        // the serialized form carries nonzero durations.
        assert!(json.contains("\"dur\":"));
        assert!(!json.contains("\"dur\":0,"));
    }
}
