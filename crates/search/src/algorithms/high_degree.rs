//! Adamic et al.'s high-degree-seeking strategy, adapted to the weak
//! model.
//!
//! *"at each step, the next visited vertex is the highest degree neighbor
//! of the set of visited vertices"* — in the weak model degrees of
//! not-yet-visited vertices are unknown, so the faithful adaptation
//! expands edges out of the highest-degree **discovered** vertex; its
//! mean-field cost on power-law graphs is `O(n^{2(1−2/k)})` versus the
//! random walk's `O(n^{3(1−2/k)})`.

use crate::frontier::FrontierCursors;
use crate::{DiscoveredView, SearchTask, WeakSearcher};
use nonsearch_graph::{EdgeId, NodeId};
use rand::RngCore;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Greedy high-degree search (weak model).
///
/// Always requests an unexplored edge of the highest-degree discovered
/// vertex that has one; ties break toward the older (smaller-label)
/// vertex for determinism. O(log n) amortized per request via a
/// lazy-deletion heap.
#[derive(Debug, Clone, Default)]
pub struct HighDegreeGreedy {
    heap: BinaryHeap<(usize, Reverse<NodeId>)>,
    seen: usize,
    edges: FrontierCursors,
}

impl HighDegreeGreedy {
    /// Creates the searcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeakSearcher for HighDegreeGreedy {
    fn name(&self) -> &'static str {
        "high-degree"
    }

    fn next_request(
        &mut self,
        _task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        while self.seen < view.len() {
            let v = view.discovered()[self.seen];
            let degree = view.degree_of(v).expect("discovered vertices have info");
            self.heap.push((degree, Reverse(v)));
            self.seen += 1;
        }
        while let Some(&(_, Reverse(v))) = self.heap.peek() {
            if let Some(e) = self.edges.next_unexplored(view, v) {
                return Some((v, e));
            }
            // Exhausted vertices never regain unexplored edges.
            self.heap.pop();
        }
        None
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.seen = 0;
        self.edges.reset();
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.heap.reserve(nodes);
        self.edges.reserve(nodes);
    }

    fn frontier_rescans(&self) -> u64 {
        self.edges.rescans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_weak, BfsFlood, SearchTask};
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    #[test]
    fn prefers_the_hub() {
        // Two stars joined: start on a leaf of the small star; the big
        // hub, once discovered, gets expanded before more leaves.
        // small star: 0 center, leaves 1,2; big star: 3 center, leaves 4..10.
        let mut edges = vec![(0, 1), (0, 2), (0, 3)];
        for leaf in 4..11 {
            edges.push((3, leaf));
        }
        let g = UndirectedCsr::from_edges(11, edges).unwrap();
        let task = SearchTask::new(NodeId::new(1), NodeId::new(10));
        let o = run_weak(&g, &task, &mut HighDegreeGreedy::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert!(o.requests <= g.edge_count());
    }

    #[test]
    fn finds_target_on_tree() {
        let g =
            UndirectedCsr::from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        for target in 1..7 {
            let task = SearchTask::new(NodeId::new(0), NodeId::new(target));
            let o = run_weak(&g, &task, &mut HighDegreeGreedy::new(), &mut rng()).unwrap();
            assert!(o.found, "target {target}");
        }
    }

    #[test]
    fn deterministic_given_view() {
        let g = UndirectedCsr::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(4));
        let a = run_weak(&g, &task, &mut HighDegreeGreedy::new(), &mut rng()).unwrap();
        let b = run_weak(&g, &task, &mut HighDegreeGreedy::new(), &mut rng()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn on_star_graph_beats_or_ties_bfs() {
        let g = UndirectedCsr::from_edges(8, (1..8).map(|i| (0, i))).unwrap();
        let task = SearchTask::new(NodeId::new(1), NodeId::new(7));
        let greedy = run_weak(&g, &task, &mut HighDegreeGreedy::new(), &mut rng()).unwrap();
        let bfs = run_weak(&g, &task, &mut BfsFlood::new(), &mut rng()).unwrap();
        assert!(greedy.found && bfs.found);
        assert!(greedy.requests <= bfs.requests);
    }

    #[test]
    fn gives_up_when_frontier_empty() {
        let g = UndirectedCsr::from_edges(3, [(0, 1)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(2));
        let o = run_weak(&g, &task, &mut HighDegreeGreedy::new(), &mut rng()).unwrap();
        assert!(o.gave_up);
    }

    #[test]
    fn reusable_across_runs() {
        let g = UndirectedCsr::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut s = HighDegreeGreedy::new();
        for target in [3, 5, 1] {
            let task = SearchTask::new(NodeId::new(0), NodeId::new(target));
            assert!(run_weak(&g, &task, &mut s, &mut rng()).unwrap().found);
        }
    }
}
