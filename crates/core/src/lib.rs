//! The paper's contribution: probabilistic vertex equivalence and the
//! `Ω(√n)` non-searchability lower bounds for evolving scale-free graphs.
//!
//! This crate turns every definition, lemma and theorem of *Duchon,
//! Eggemann, Hanusse — "Non-Searchability of Random Scale-Free Graphs"*
//! into executable form:
//!
//! | paper artifact | here |
//! |----------------|------|
//! | Definition 1 (`σ(G)`) | [`Permutation`] |
//! | Definition 2 (equivalence conditional on `E`) | [`exact_window_exchangeability`], [`sampled_window_symmetry`] |
//! | Lemma 1 (`\|V\|·P(E)/2` bound) | [`lemma1_lower_bound`] |
//! | Lemma 2 (event `E_{a,b}`) | [`mori_window_event_holds`], [`EquivalenceWindow`] |
//! | Lemma 3 (`P(E_{a,b}) ≥ e^{−(1−p)}`) | [`mori_event_probability_exact`], [`estimate_mori_event_probability`], [`lemma3_bound`] |
//! | Theorem 1 (weak + strong) | [`theorem1_weak_bound`], [`strong_model_exponent`], [`certify`] |
//! | Theorem 2 (Cooper–Frieze) | [`cooper_frieze_window_event_holds`], [`certify`] |
//!
//! # Example: the paper's headline numbers
//!
//! ```
//! use nonsearch_core::{
//!     lemma3_bound, mori_event_probability_exact, theorem1_weak_bound, EquivalenceWindow,
//! };
//!
//! // Lemma 3 at p = 0.5: the exact event probability beats e^{-(1-p)}.
//! let w = EquivalenceWindow::from_anchor(10_000);
//! let exact = mori_event_probability_exact(w.a(), w.b(), 0.5).unwrap();
//! assert!(exact >= lemma3_bound(0.5));
//!
//! // Theorem 1: the concrete lower bound grows like √n.
//! let b1 = theorem1_weak_bound(10_000, 0.5).unwrap();
//! let b2 = theorem1_weak_bound(40_000, 0.5).unwrap();
//! assert!(b2 / b1 > 1.8 && b2 / b1 < 2.2); // ≈ √4 = 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certify;
mod enumerate;
mod equivalence;
mod event;
mod lower_bound;
mod model;
mod permutation;
mod theory;
mod window;

pub use certify::{
    certify, certify_with_source, AlgorithmScaling, CellProfile, CertifyConfig, ScalingPoint,
    SearchabilityReport,
};
pub use enumerate::{enumerate_mori_trees, FatherVector, TreeDistribution};
pub use equivalence::{
    exact_window_exchangeability, sampled_window_symmetry, ExchangeabilityCheck, SymmetryReport,
};
pub use event::{
    cooper_frieze_window_event_holds, estimate_mori_event_probability, mori_window_event_holds,
    EventEstimate,
};
pub use lower_bound::{
    lemma1_lower_bound, theorem1_weak_bound, theorem2_weak_bound, BoundComparison,
};
pub use model::{
    sample_with_seed, BarabasiAlbertModel, CooperFriezeModel, GraphModel, MergedMoriModel,
    ModelSource, PowerLawGiantModel, UniformAttachmentModel,
};
pub use permutation::Permutation;
pub use theory::{
    adamic_high_degree_exponent, adamic_random_walk_exponent, lemma3_bound, lemma3_window_end,
    mori_conditional_factor, mori_event_probability_exact, mori_max_degree_exponent,
    strong_model_exponent, CoreError,
};
pub use window::EquivalenceWindow;

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
