//! Amortized-O(1) frontier bookkeeping shared by the greedy searchers.

use crate::DiscoveredView;
use nonsearch_graph::{EdgeId, NodeId};
use std::collections::HashMap;

/// Per-vertex cursors over incident edge lists.
///
/// Edge resolution is monotone (a resolved edge never becomes unresolved),
/// so a forward-only cursor per vertex finds each vertex's next
/// unexplored edge in O(1) amortized instead of rescanning the whole
/// incident list on every request. All the O(log n)-per-step searchers
/// ([`HighDegreeGreedy`](crate::HighDegreeGreedy) and friends) share this.
#[derive(Debug, Clone, Default)]
pub struct FrontierCursors {
    cursor: HashMap<NodeId, usize>,
}

impl FrontierCursors {
    /// Creates empty cursors.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next unresolved incident edge of `v`, advancing the cursor
    /// past resolved edges. Returns `None` when `v` is exhausted (or not
    /// discovered).
    pub fn next_unexplored(&mut self, view: &DiscoveredView, v: NodeId) -> Option<EdgeId> {
        let info = view.vertex(v)?;
        let cursor = self.cursor.entry(v).or_insert(0);
        while *cursor < info.incident().len() {
            let e = info.incident()[*cursor];
            if !view.is_resolved(e) {
                return Some(e);
            }
            *cursor += 1;
        }
        None
    }

    /// Clears all cursors (for searcher reuse across runs).
    pub fn reset(&mut self) {
        self.cursor.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeakSearchState;
    use nonsearch_graph::UndirectedCsr;

    #[test]
    fn cursor_advances_past_resolved_edges() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut state = WeakSearchState::new(&g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();

        let e0 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e0).unwrap();
        let e1 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        assert_ne!(e0, e1);
        state.request(NodeId::new(0), e1).unwrap();
        let e2 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e2).unwrap();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_none());
    }

    #[test]
    fn undiscovered_vertex_yields_none() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let state = WeakSearchState::new(&g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(1))
            .is_none());
    }

    #[test]
    fn reset_rewinds() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let state = WeakSearchState::new(&g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_some());
        cursors.reset();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_some());
    }
}
