//! Vendored marker-trait subset of `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (for
//! interchange-readiness of `GraphRecord`-style types); nothing bounds
//! on the traits or drives a serializer yet. This stub keeps the seed
//! sources' `use serde::{Deserialize, Serialize};` lines and derive
//! attributes compiling without crates.io access: the names resolve to
//! marker traits plus no-op derive macros re-exported from
//! [`serde_derive`]. Swapping in real serde later is a manifest-only
//! change.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

// Like real serde with the `derive` feature: the derive macros share the
// traits' names (macros and traits live in different namespaces).
pub use serde_derive::{Deserialize, Serialize};
