//! Breadth-first traversal and connectivity utilities.

use crate::{NodeId, UndirectedCsr};
use std::collections::VecDeque;

/// A breadth-first search iterator over an [`UndirectedCsr`].
///
/// Yields `(vertex, distance-from-source)` pairs in BFS order, visiting
/// each vertex once.
///
/// ```
/// use nonsearch_graph::{Bfs, NodeId, UndirectedCsr};
///
/// let g = UndirectedCsr::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let order: Vec<(usize, u32)> = Bfs::new(&g, NodeId::new(0))
///     .map(|(v, d)| (v.index(), d))
///     .collect();
/// assert_eq!(order, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
/// # Ok::<(), nonsearch_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Bfs<'a> {
    graph: &'a UndirectedCsr,
    queue: VecDeque<(NodeId, u32)>,
    visited: Vec<bool>,
}

impl<'a> Bfs<'a> {
    /// Starts a BFS from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds.
    pub fn new(graph: &'a UndirectedCsr, source: NodeId) -> Self {
        assert!(source.index() < graph.node_count(), "source out of bounds");
        let mut visited = vec![false; graph.node_count()];
        visited[source.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back((source, 0));
        Bfs {
            graph,
            queue,
            visited,
        }
    }
}

impl Iterator for Bfs<'_> {
    type Item = (NodeId, u32);

    fn next(&mut self) -> Option<(NodeId, u32)> {
        let (v, d) = self.queue.pop_front()?;
        for w in self.graph.neighbors(v) {
            if !self.visited[w.index()] {
                self.visited[w.index()] = true;
                self.queue.push_back((w, d + 1));
            }
        }
        Some((v, d))
    }
}

/// BFS distances from `source`; `None` for unreachable vertices.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn bfs_distances(graph: &UndirectedCsr, source: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; graph.node_count()];
    for (v, d) in Bfs::new(graph, source) {
        dist[v.index()] = Some(d);
    }
    dist
}

/// Vertices in BFS order from `source` (reachable ones only).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn bfs_order(graph: &UndirectedCsr, source: NodeId) -> Vec<NodeId> {
    Bfs::new(graph, source).map(|(v, _)| v).collect()
}

/// Connected-component labelling of an undirected graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    labels: Vec<u32>,
    count: usize,
}

impl ComponentLabels {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component index of `v` (in `0..count()`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn component_of(&self, v: NodeId) -> usize {
        self.labels[v.index()] as usize
    }

    /// Sizes of each component, indexed by component label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn giant_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Computes connected components via repeated BFS.
pub fn connected_components(graph: &UndirectedCsr) -> ComponentLabels {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0usize;
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        let label = count as u32;
        count += 1;
        let mut queue = VecDeque::new();
        labels[start] = label;
        queue.push_back(NodeId::new(start));
        while let Some(v) = queue.pop_front() {
            for w in graph.neighbors(v) {
                if labels[w.index()] == u32::MAX {
                    labels[w.index()] = label;
                    queue.push_back(w);
                }
            }
        }
    }
    ComponentLabels { labels, count }
}

/// `true` if the graph is connected. The empty graph counts as connected.
pub fn is_connected(graph: &UndirectedCsr) -> bool {
    graph.node_count() <= 1 || connected_components(graph).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedCsr;

    fn path(n: usize) -> UndirectedCsr {
        UndirectedCsr::from_edges(n, (1..n).map(|i| (i - 1, i))).unwrap()
    }

    #[test]
    fn bfs_visits_each_vertex_once() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]).unwrap();
        let seen: Vec<_> = bfs_order(&g, NodeId::new(0));
        assert_eq!(seen.len(), 4);
        let mut idx: Vec<_> = seen.iter().map(|v| v.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_handles_self_loops_and_multi_edges() {
        let g = UndirectedCsr::from_edges(3, [(0, 0), (0, 1), (0, 1), (1, 2)]).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn unreachable_vertices_are_none() {
        let g = UndirectedCsr::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn components_of_disjoint_paths() {
        let g = UndirectedCsr::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        let mut sizes = cc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(cc.giant_size(), 3);
        assert_eq!(
            cc.component_of(NodeId::new(0)),
            cc.component_of(NodeId::new(2))
        );
        assert_ne!(
            cc.component_of(NodeId::new(0)),
            cc.component_of(NodeId::new(5))
        );
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&path(10)));
        assert!(is_connected(&UndirectedCsr::from_edges(0, []).unwrap()));
        assert!(is_connected(&UndirectedCsr::from_edges(1, []).unwrap()));
        assert!(!is_connected(&UndirectedCsr::from_edges(2, []).unwrap()));
    }

    #[test]
    #[should_panic(expected = "source out of bounds")]
    fn bfs_rejects_bad_source() {
        let g = path(3);
        let _ = Bfs::new(&g, NodeId::new(9));
    }
}
