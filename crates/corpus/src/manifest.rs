//! `manifest.json` — the index of a corpus directory.
//!
//! The manifest records the generator provenance (model spec, root
//! seed, sizes, trials, variant policy) and one entry per stored graph
//! (file, shape, checksum, null-model variants). Everything except the
//! trailing `"build"` object is **deterministic**: two builds with the
//! same spec produce byte-identical manifests modulo that volatile
//! footer (git describe, wall time, thread count) — the same contract
//! the engine's run records follow with their `"type":"run"` line.

use crate::error::CorpusError;
use nonsearch_engine::json::{self, JsonValue};
use std::path::Path;

/// Name of the manifest file inside a corpus directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// The `format` tag identifying corpus manifests.
pub const FORMAT_TAG: &str = "nonsearch-corpus";
/// Current manifest schema version.
pub const MANIFEST_VERSION: u64 = 1;

/// One rewired null-model variant of a stored graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantEntry {
    /// Path of the variant's `.nsg` file, relative to the corpus dir.
    pub file: String,
    /// FNV-1a 64 checksum of the whole file.
    pub checksum: u64,
}

/// One stored graph (plus its variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEntry {
    /// Index into [`Manifest::sizes`].
    pub size_idx: usize,
    /// Requested model size (the seed-derivation key).
    pub n: usize,
    /// Trial index within the size.
    pub trial: usize,
    /// Path of the `.nsg` file, relative to the corpus dir.
    pub file: String,
    /// Actual vertex count (may differ from `n`, e.g. giant components).
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// FNV-1a 64 checksum of the whole file.
    pub checksum: u64,
    /// Degree-preserving rewired variants, in variant order.
    pub variants: Vec<VariantEntry>,
}

/// The volatile build envelope (excluded from determinism comparisons).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// `git describe --always --dirty` at build time.
    pub git: String,
    /// Worker threads that ran the build.
    pub threads: usize,
    /// Wall-clock build time in milliseconds.
    pub wall_ms: u64,
}

/// The parsed content of `manifest.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Display name of the generator, e.g. `mori(p=0.6,m=1)`.
    pub model: String,
    /// Parseable spec the builder was invoked with, e.g. `mori:p=0.6,m=1`.
    pub model_spec: String,
    /// Root seed of the ensemble.
    pub seed: u64,
    /// Stored graphs per size.
    pub trials: usize,
    /// Null-model variants per graph.
    pub variants: usize,
    /// Edge-swap chain length per variant, in swaps per edge.
    pub swaps_per_edge: usize,
    /// The size sweep, in size-index order.
    pub sizes: Vec<usize>,
    /// One entry per stored graph, ordered by `(size_idx, trial)`.
    pub graphs: Vec<GraphEntry>,
    /// Volatile build envelope (`None` for hand-written manifests).
    pub build: Option<BuildInfo>,
}

impl Manifest {
    /// Serializes the manifest, optionally including the volatile
    /// `"build"` object. `to_json(false)` is the deterministic form the
    /// byte-identity tests compare.
    pub fn to_json(&self, include_build: bool) -> JsonValue {
        let graphs: Vec<JsonValue> = self
            .graphs
            .iter()
            .map(|g| {
                let variants: Vec<JsonValue> = g
                    .variants
                    .iter()
                    .map(|v| {
                        JsonValue::object(vec![
                            ("file", JsonValue::from(v.file.as_str())),
                            ("checksum", JsonValue::from(format!("{:016x}", v.checksum))),
                        ])
                    })
                    .collect();
                JsonValue::object(vec![
                    ("size_idx", JsonValue::from(g.size_idx)),
                    ("n", JsonValue::from(g.n)),
                    ("trial", JsonValue::from(g.trial)),
                    ("file", JsonValue::from(g.file.as_str())),
                    ("nodes", JsonValue::from(g.nodes)),
                    ("edges", JsonValue::from(g.edges)),
                    ("checksum", JsonValue::from(format!("{:016x}", g.checksum))),
                    ("variants", JsonValue::Array(variants)),
                ])
            })
            .collect();
        let mut pairs = vec![
            ("format", JsonValue::from(FORMAT_TAG)),
            ("version", JsonValue::from(MANIFEST_VERSION)),
            ("model", JsonValue::from(self.model.as_str())),
            ("model_spec", JsonValue::from(self.model_spec.as_str())),
            // Hex string like the checksums: the full u64 range
            // round-trips exactly (JSON integers would go lossy-float
            // above i64::MAX).
            ("seed", JsonValue::from(format!("{:016x}", self.seed))),
            ("trials", JsonValue::from(self.trials)),
            ("variants", JsonValue::from(self.variants)),
            ("swaps_per_edge", JsonValue::from(self.swaps_per_edge)),
            (
                "sizes",
                JsonValue::Array(self.sizes.iter().map(|&n| JsonValue::from(n)).collect()),
            ),
            ("graphs", JsonValue::Array(graphs)),
        ];
        if include_build {
            if let Some(build) = &self.build {
                pairs.push((
                    "build",
                    JsonValue::object(vec![
                        ("git", JsonValue::from(build.git.as_str())),
                        ("threads", JsonValue::from(build.threads)),
                        ("wall_ms", JsonValue::from(build.wall_ms)),
                    ]),
                ));
            }
        }
        JsonValue::object(pairs)
    }

    /// Parses a manifest from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Manifest`] on malformed input.
    pub fn from_json_text(text: &str) -> Result<Manifest, CorpusError> {
        let value =
            json::parse(text).map_err(|e| CorpusError::manifest(format!("not JSON: {e}")))?;
        let str_field = |v: &JsonValue, key: &str| -> Result<String, CorpusError> {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| CorpusError::manifest(format!("missing string field {key:?}")))
        };
        let u64_field = |v: &JsonValue, key: &str| -> Result<u64, CorpusError> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| CorpusError::manifest(format!("missing integer field {key:?}")))
        };
        // Shared by checksums and the seed — all hex-string u64 fields.
        let checksum_field = |v: &JsonValue, key: &str| -> Result<u64, CorpusError> {
            let hex = str_field(v, key)?;
            u64::from_str_radix(&hex, 16)
                .map_err(|e| CorpusError::manifest(format!("bad hex field {key:?}={hex:?}: {e}")))
        };

        if str_field(&value, "format")? != FORMAT_TAG {
            return Err(CorpusError::manifest(format!(
                "format tag is not {FORMAT_TAG:?}"
            )));
        }
        let version = u64_field(&value, "version")?;
        if version != MANIFEST_VERSION {
            return Err(CorpusError::manifest(format!(
                "unsupported manifest version {version}"
            )));
        }

        let sizes: Vec<usize> = value
            .get("sizes")
            .and_then(|x| x.as_array())
            .ok_or_else(|| CorpusError::manifest("missing array field \"sizes\""))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| CorpusError::manifest("non-integer size"))
            })
            .collect::<Result<_, _>>()?;

        let graphs: Vec<GraphEntry> = value
            .get("graphs")
            .and_then(|x| x.as_array())
            .ok_or_else(|| CorpusError::manifest("missing array field \"graphs\""))?
            .iter()
            .map(|g| {
                let variants: Vec<VariantEntry> = g
                    .get("variants")
                    .and_then(|x| x.as_array())
                    .unwrap_or(&[])
                    .iter()
                    .map(|v| {
                        Ok(VariantEntry {
                            file: str_field(v, "file")?,
                            checksum: checksum_field(v, "checksum")?,
                        })
                    })
                    .collect::<Result<_, CorpusError>>()?;
                Ok(GraphEntry {
                    size_idx: u64_field(g, "size_idx")? as usize,
                    n: u64_field(g, "n")? as usize,
                    trial: u64_field(g, "trial")? as usize,
                    file: str_field(g, "file")?,
                    nodes: u64_field(g, "nodes")? as usize,
                    edges: u64_field(g, "edges")? as usize,
                    checksum: checksum_field(g, "checksum")?,
                    variants,
                })
            })
            .collect::<Result<_, CorpusError>>()?;

        let build = value
            .get("build")
            .map(|b| -> Result<BuildInfo, CorpusError> {
                Ok(BuildInfo {
                    git: str_field(b, "git")?,
                    threads: u64_field(b, "threads")? as usize,
                    wall_ms: u64_field(b, "wall_ms")?,
                })
            });

        Ok(Manifest {
            model: str_field(&value, "model")?,
            model_spec: str_field(&value, "model_spec")?,
            seed: checksum_field(&value, "seed")?,
            trials: u64_field(&value, "trials")? as usize,
            variants: u64_field(&value, "variants")? as usize,
            swaps_per_edge: u64_field(&value, "swaps_per_edge")? as usize,
            sizes,
            graphs,
            build: build.transpose()?,
        })
    }

    /// Reads and parses `<dir>/manifest.json`.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] if unreadable, else parse errors.
    pub fn read_from(dir: &Path) -> Result<Manifest, CorpusError> {
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| CorpusError::io(&path, e))?;
        Manifest::from_json_text(&text)
    }

    /// Writes `<dir>/manifest.json` (build envelope included), with the
    /// deterministic fields first so the volatile footer stays last.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] on write failure.
    pub fn write_to(&self, dir: &Path) -> Result<(), CorpusError> {
        let path = dir.join(MANIFEST_FILE);
        let text = format!("{}\n", self.to_json(true));
        std::fs::write(&path, text).map_err(|e| CorpusError::io(&path, e))
    }

    /// Total stored files (originals plus variants).
    pub fn file_count(&self) -> usize {
        self.graphs
            .iter()
            .map(|g| 1 + g.variants.len())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            model: "mori(p=0.6,m=1)".into(),
            model_spec: "mori:p=0.6,m=1".into(),
            seed: 0xE1,
            trials: 2,
            variants: 1,
            swaps_per_edge: 10,
            sizes: vec![64, 128],
            graphs: vec![GraphEntry {
                size_idx: 0,
                n: 64,
                trial: 0,
                file: "graphs/s0000_t0000.nsg".into(),
                nodes: 64,
                edges: 63,
                checksum: 0xDEADBEEF,
                variants: vec![VariantEntry {
                    file: "graphs/s0000_t0000_v00.nsg".into(),
                    checksum: 0xFEEDFACE,
                }],
            }],
            build: Some(BuildInfo {
                git: "abc1234".into(),
                threads: 4,
                wall_ms: 17,
            }),
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let m = sample_manifest();
        let text = m.to_json(true).to_string();
        let back = Manifest::from_json_text(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn deterministic_form_omits_build() {
        let m = sample_manifest();
        let det = m.to_json(false).to_string();
        assert!(!det.contains("build"));
        assert!(!det.contains("wall_ms"));
        let back = Manifest::from_json_text(&det).unwrap();
        assert!(back.build.is_none());
        assert_eq!(back.graphs, m.graphs);
    }

    #[test]
    fn large_seeds_roundtrip_exactly() {
        for seed in [(1u64 << 62) + 12345, u64::MAX, i64::MAX as u64 + 7] {
            let mut m = sample_manifest();
            m.seed = seed; // none representable as f64 or (for two) i64
            let back = Manifest::from_json_text(&m.to_json(true).to_string()).unwrap();
            assert_eq!(back.seed, m.seed);
        }
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(Manifest::from_json_text("{").is_err());
        assert!(Manifest::from_json_text("{}").is_err());
        assert!(Manifest::from_json_text("{\"format\":\"other\"}").is_err());
        let wrong_version = sample_manifest().to_json(true).to_string().replacen(
            "\"version\":1",
            "\"version\":99",
            1,
        );
        assert!(Manifest::from_json_text(&wrong_version).is_err());
        let bad_checksum =
            sample_manifest()
                .to_json(true)
                .to_string()
                .replacen("00000000deadbeef", "not-hex!", 1);
        assert!(Manifest::from_json_text(&bad_checksum).is_err());
    }

    #[test]
    fn file_count_includes_variants() {
        assert_eq!(sample_manifest().file_count(), 2);
    }

    #[test]
    fn dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("manifest_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample_manifest();
        m.write_to(&dir).unwrap();
        assert_eq!(Manifest::read_from(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
