//! E7 — Móri's maximum degree: the max degree of `G_t` grows like `t^p`
//! (Móri 2005), the ingredient of Theorem 1's strong-model transfer.
//!
//! Port of the legacy `exp_maxdeg` binary onto the engine: same claim
//! and table, plus deterministic parallel cells, `--corpus` graph
//! sourcing, and structured cell/profile records under `--out`.

use super::{open_corpus, print_banner, resolve_source};
use nonsearch_analysis::{fit_log_log, Table};
use nonsearch_core::{mori_max_degree_exponent, MergedMoriModel};
use nonsearch_engine::{run_cell, ExpContext, ExperimentSpec, JsonValue, TrialMeasure};
use nonsearch_generators::SeedSequence;

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "maxdeg",
    id: "E7",
    claim: "max degree of the Móri tree grows like t^p — log-log slope ≈ p",
    default_seed: 0xE7,
    run,
};

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E7 / max degree growth",
        "max degree of the Móri tree grows like t^p — log-log slope ≈ p",
    );

    let sizes = ctx.options.sweep(&[1024, 4096, 16384, 65536, 262144]);
    let trial_count = ctx.options.trial_count(8);
    let seeds = SeedSequence::new(ctx.seed);
    let corpus = open_corpus(ctx);
    let tracer = ctx.tracer.clone();

    let mut table = Table::with_columns(&["p", "t", "mean max degree", "ci95", "fitted slope"]);
    for (pi, &p) in [0.2f64, 0.5, 0.8].iter().enumerate() {
        let model = MergedMoriModel { p, m: 1 };
        let source = resolve_source(corpus.as_ref(), &model, &sizes);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rows = Vec::new();
        for (si, &t) in sizes.iter().enumerate() {
            let _cell_span = tracer.span("size-cell");
            let cell_seeds = seeds.subsequence(pi as u64).subsequence(si as u64);
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let cell_start = std::time::Instant::now();
            let aggregate = run_cell(
                trial_count,
                ctx.options.threads,
                &cell_seeds,
                |trial, trial_seeds| {
                    let graph = source.trial_graph(t, trial, &trial_seeds);
                    let (_, d) = graph.max_degree().expect("sampled trees are non-empty");
                    TrialMeasure::new(d as f64, true)
                },
            );
            let wall_ms = cell_start.elapsed().as_secs_f64() * 1e3;
            xs.push(t as f64);
            ys.push(aggregate.mean());
            rows.push((t, aggregate.mean(), aggregate.ci95(), wall_ms));
        }
        let slope = fit_log_log(&xs, &ys).map(|f| f.slope);
        let theory = mori_max_degree_exponent(p);
        for (i, &(t, mean, ci, wall_ms)) in rows.iter().enumerate() {
            let slope_cell = if i + 1 == xs.len() {
                slope.map_or("-".into(), |s| format!("{s:.3} (theory {theory:.1})"))
            } else {
                String::new()
            };
            table.row(vec![
                format!("{p:.1}"),
                t.to_string(),
                format!("{mean:.1}"),
                format!("{ci:.1}"),
                slope_cell,
            ]);
            ctx.writer
                .record_cell(vec![
                    ("model", JsonValue::from("mori")),
                    ("p", JsonValue::from(p)),
                    ("n", JsonValue::from(t)),
                    ("trials", JsonValue::from(trial_count)),
                    ("seed", JsonValue::from(ctx.seed)),
                    ("mean_max_degree", JsonValue::from(mean)),
                    ("ci95", JsonValue::from(ci)),
                    ("slope", JsonValue::from(slope)),
                    ("theory_exponent", JsonValue::from(theory)),
                ])
                .expect("write cell record");
            if ctx.options.profile {
                // One "request" per trial: each samples (or fetches) a
                // graph of size t and scans its degree array once.
                let requests = trial_count as f64;
                ctx.writer
                    .record_profile(vec![
                        ("p", JsonValue::from(p)),
                        ("n", JsonValue::from(t)),
                        ("trials", JsonValue::from(trial_count)),
                        ("requests", JsonValue::from(requests)),
                        ("wall_ms", JsonValue::from(wall_ms)),
                        (
                            "requests_per_sec",
                            JsonValue::from(requests / (wall_ms / 1e3).max(f64::EPSILON)),
                        ),
                    ])
                    .expect("write profile record");
            }
        }
    }
    println!("{table}");
    println!("for p < 1/2 the max degree stays below √t — exactly the regime");
    println!("where the strong-model lower bound Ω(n^(1/2−p−ε)) is non-trivial.");
}
