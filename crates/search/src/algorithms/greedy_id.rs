//! Identity-guided strategies.
//!
//! In the paper's models, vertex identities are arrival times, so labels
//! carry structure: small labels are old, high-degree, central vertices;
//! the target `n` is the newest vertex. These searchers exploit that —
//! and the lower bound says even they cannot beat `Ω(√n)`.

use crate::frontier::FrontierCursors;
use crate::{DiscoveredView, SearchTask, WeakSearcher};
use nonsearch_graph::{EdgeId, NodeId};
use rand::RngCore;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Expand edges of the discovered vertex whose label is closest to the
/// target's label (ties toward the older vertex).
///
/// The natural "greedy routing on identities" once one knows identities
/// are ages — the analogue of Kleinberg's greedy with the label metric.
#[derive(Debug, Clone, Default)]
pub struct GreedyIdProximity {
    heap: BinaryHeap<Reverse<(usize, NodeId)>>,
    seen: usize,
    edges: FrontierCursors,
}

impl GreedyIdProximity {
    /// Creates the searcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeakSearcher for GreedyIdProximity {
    fn name(&self) -> &'static str {
        "greedy-id"
    }

    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        while self.seen < view.len() {
            let v = view.discovered()[self.seen];
            let gap = v.label().abs_diff(task.target.label());
            self.heap.push(Reverse((gap, v)));
            self.seen += 1;
        }
        while let Some(&Reverse((_, v))) = self.heap.peek() {
            if let Some(e) = self.edges.next_unexplored(view, v) {
                return Some((v, e));
            }
            self.heap.pop();
        }
        None
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.seen = 0;
        self.edges.reset();
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.heap.reserve(nodes);
        self.edges.reserve(nodes);
    }

    fn frontier_rescans(&self) -> u64 {
        self.edges.rescans()
    }
}

/// Expand edges of the oldest (smallest-label) discovered vertex first.
///
/// Heads for the graph's dense core — old vertices have the highest
/// expected degree in attachment models — before fanning out.
#[derive(Debug, Clone, Default)]
pub struct OldestFirst {
    heap: BinaryHeap<Reverse<NodeId>>,
    seen: usize,
    edges: FrontierCursors,
}

impl OldestFirst {
    /// Creates the searcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeakSearcher for OldestFirst {
    fn name(&self) -> &'static str {
        "oldest-first"
    }

    fn next_request(
        &mut self,
        _task: &SearchTask,
        view: &DiscoveredView,
        _rng: &mut dyn RngCore,
    ) -> Option<(NodeId, EdgeId)> {
        while self.seen < view.len() {
            self.heap.push(Reverse(view.discovered()[self.seen]));
            self.seen += 1;
        }
        while let Some(&Reverse(v)) = self.heap.peek() {
            if let Some(e) = self.edges.next_unexplored(view, v) {
                return Some((v, e));
            }
            self.heap.pop();
        }
        None
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.seen = 0;
        self.edges.reset();
    }

    fn reserve(&mut self, nodes: usize, _edges: usize) {
        self.heap.reserve(nodes);
        self.edges.reserve(nodes);
    }

    fn frontier_rescans(&self) -> u64 {
        self.edges.rescans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_weak, SearchTask};
    use nonsearch_graph::UndirectedCsr;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    fn path(n: usize) -> UndirectedCsr {
        UndirectedCsr::from_edges(n, (1..n).map(|i| (i - 1, i))).unwrap()
    }

    #[test]
    fn greedy_id_walks_straight_on_a_path() {
        // On a path with labels in order, id-greedy is optimal.
        let g = path(20);
        let task = SearchTask::new(NodeId::new(0), NodeId::new(19));
        let o = run_weak(&g, &task, &mut GreedyIdProximity::new(), &mut rng()).unwrap();
        assert!(o.found);
        assert_eq!(o.requests, 19);
    }

    #[test]
    fn greedy_id_prefers_closer_labels() {
        // Star from the center: target label 10; expansion happens from
        // the center (the only vertex with unexplored edges) regardless.
        let g = UndirectedCsr::from_edges(10, (1..10).map(|i| (0, i))).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(9));
        let o = run_weak(&g, &task, &mut GreedyIdProximity::new(), &mut rng()).unwrap();
        assert!(o.found);
    }

    #[test]
    fn oldest_first_reaches_core_then_target() {
        let g = path(10);
        let task = SearchTask::new(NodeId::new(5), NodeId::new(9));
        let o = run_weak(&g, &task, &mut OldestFirst::new(), &mut rng()).unwrap();
        assert!(o.found);
        // Walks to vertex 0 first (5 requests), then back out (4 more).
        assert_eq!(o.requests, 9);
    }

    #[test]
    fn both_give_up_outside_component() {
        let g = UndirectedCsr::from_edges(4, [(0, 1)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(3));
        assert!(
            run_weak(&g, &task, &mut GreedyIdProximity::new(), &mut rng())
                .unwrap()
                .gave_up
        );
        assert!(
            run_weak(&g, &task, &mut OldestFirst::new(), &mut rng())
                .unwrap()
                .gave_up
        );
    }

    #[test]
    fn reusable_across_runs() {
        let g = path(8);
        let mut a = GreedyIdProximity::new();
        let mut b = OldestFirst::new();
        for target in [7, 3] {
            let task = SearchTask::new(NodeId::new(0), NodeId::new(target));
            assert!(run_weak(&g, &task, &mut a, &mut rng()).unwrap().found);
            assert!(run_weak(&g, &task, &mut b, &mut rng()).unwrap().found);
        }
    }
}
