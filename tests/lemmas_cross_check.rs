//! Cross-crate validation of Lemmas 2 and 3: closed forms (core) vs
//! simulation (generators) vs enumeration.

use nonsearch::core::{
    enumerate_mori_trees, estimate_mori_event_probability, exact_window_exchangeability,
    lemma3_bound, mori_event_probability_exact, mori_window_event_holds, sampled_window_symmetry,
    EquivalenceWindow,
};
use nonsearch::generators::{rng_from_seed, MoriTree};

#[test]
fn lemma3_exact_monte_carlo_and_bound_agree() {
    for &p in &[0.25, 0.5, 0.9] {
        let a = 400;
        let window = EquivalenceWindow::from_anchor(a);
        let exact = mori_event_probability_exact(window.a(), window.b(), p).unwrap();
        // Lemma 3's bound holds for the exact value…
        assert!(exact >= lemma3_bound(p) - 1e-12, "p = {p}");
        // …and Monte Carlo agrees with the exact product.
        let mc = estimate_mori_event_probability(&window, p, 1500, 7).unwrap();
        assert!(
            (mc.estimate - exact).abs() < 4.0 * mc.std_error + 0.02,
            "p = {p}: MC {} vs exact {exact}",
            mc.estimate
        );
    }
}

#[test]
fn lemma2_exact_exchangeability_small_trees() {
    for &p in &[0.0, 0.5, 1.0] {
        let window = EquivalenceWindow::with_bounds(5, 8);
        let check = exact_window_exchangeability(&window, p).unwrap();
        assert!(check.is_exchangeable(1e-12), "p = {p}: {check}");
    }
}

#[test]
fn lemma2_sampled_symmetry_medium_trees() {
    let window = EquivalenceWindow::from_anchor(80);
    let report = sampled_window_symmetry(&window, 0.5, 3000, 13).unwrap();
    assert!(report.max_z < 4.5, "symmetry rejected: {report}");
}

#[test]
fn enumeration_agrees_with_sampling() {
    // P(E) on tiny windows: enumerate exactly, then sample.
    let p = 0.6;
    let window = EquivalenceWindow::with_bounds(4, 6);
    let dist = enumerate_mori_trees(6, p).unwrap();
    // Window vertices are labels 5 and 6 → fathers indices 3 and 4.
    let exact_mass = dist.mass_where(|f| f[3] <= 4 && f[4] <= 4);
    let closed = mori_event_probability_exact(4, 6, p).unwrap();
    assert!((exact_mass - closed).abs() < 1e-12);

    let mut hits = 0usize;
    let trials = 4000;
    let mut rng = rng_from_seed(3);
    for _ in 0..trials {
        let tree = MoriTree::sample(6, p, &mut rng).unwrap();
        hits += mori_window_event_holds(tree.trace(), &window) as usize;
    }
    let frequency = hits as f64 / trials as f64;
    assert!(
        (frequency - closed).abs() < 0.03,
        "sampled {frequency} vs closed {closed}"
    );
}

#[test]
fn event_probability_converges_to_positive_constant() {
    // Lemma 3's point: with the √a window, P(E) does NOT vanish as the
    // graph grows — it stays bounded below by e^{-(1-p)}.
    let p = 0.3;
    let probs: Vec<f64> = [100usize, 1_000, 10_000, 100_000]
        .iter()
        .map(|&a| {
            let w = EquivalenceWindow::from_anchor(a);
            mori_event_probability_exact(w.a(), w.b(), p).unwrap()
        })
        .collect();
    for prob in &probs {
        assert!(*prob >= lemma3_bound(p) - 1e-12);
        assert!(*prob <= 1.0);
    }
    // And it stabilizes: the largest two anchors differ by little.
    assert!((probs[2] - probs[3]).abs() < 0.02, "{probs:?}");
}
