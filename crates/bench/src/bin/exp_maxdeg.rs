//! E7 — Móri's maximum degree: the max degree of `G_t` grows like `t^p`
//! (Móri 2005), the ingredient of Theorem 1's strong-model transfer.

use nonsearch_analysis::{fit_log_log, SampleStats, Table};
use nonsearch_bench::{banner, sweep, trials};
use nonsearch_core::mori_max_degree_exponent;
use nonsearch_generators::{MoriTree, SeedSequence};

fn main() {
    banner(
        "E7 / max degree growth",
        "max degree of the Móri tree grows like t^p — log-log slope ≈ p",
    );

    let sizes = sweep(&[1024, 4096, 16384, 65536, 262144]);
    let trial_count = trials(8);
    let seeds = SeedSequence::new(0xE7);

    let mut table = Table::with_columns(&["p", "t", "mean max degree", "ci95", "fitted slope"]);
    for (pi, &p) in [0.2f64, 0.5, 0.8].iter().enumerate() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rows = Vec::new();
        for (si, &t) in sizes.iter().enumerate() {
            let mut maxima = Vec::new();
            for trial in 0..trial_count {
                let mut rng = seeds
                    .subsequence(pi as u64)
                    .subsequence(si as u64)
                    .child_rng(trial as u64);
                let tree = MoriTree::sample(t, p, &mut rng).expect("valid size");
                let graph = tree.undirected();
                let (_, d) = graph.max_degree().expect("non-empty");
                maxima.push(d as f64);
            }
            let stats = SampleStats::from_slice(&maxima).expect("trials ≥ 1");
            xs.push(t as f64);
            ys.push(stats.mean());
            rows.push((t, stats.mean(), stats.ci95_half_width()));
        }
        let slope = fit_log_log(&xs, &ys).map(|f| f.slope);
        for (i, (t, mean, ci)) in rows.into_iter().enumerate() {
            let slope_cell = if i + 1 == xs.len() {
                slope.map_or("-".into(), |s| {
                    format!("{s:.3} (theory {:.1})", mori_max_degree_exponent(p))
                })
            } else {
                String::new()
            };
            table.row(vec![
                format!("{p:.1}"),
                t.to_string(),
                format!("{mean:.1}"),
                format!("{ci:.1}"),
                slope_cell,
            ]);
        }
    }
    println!("{table}");
    println!("for p < 1/2 the max degree stays below √t — exactly the regime");
    println!("where the strong-model lower bound Ω(n^(1/2−p−ε)) is non-trivial.");
}
