//! Minimal read-only file mapping.
//!
//! This container builds without network access, so instead of the
//! `memmap2` crate this module hand-rolls the two libc calls a
//! read-only mapping needs (`mmap`/`munmap`) on Linux — matching the
//! repo's vendored-stub convention — and falls back to reading the file
//! into an 8-byte-aligned heap buffer everywhere else (and whenever the
//! kernel refuses the mapping). Either way the result is a
//! [`CsrBytes`] region that can back zero-copy
//! [`UndirectedCsr`](nonsearch_graph::UndirectedCsr) views.
//!
//! This is the only module in the crate that uses `unsafe`; the rest
//! keeps the crate-level `deny(unsafe_code)`.
#![allow(unsafe_code)]

use crate::error::CorpusError;
use nonsearch_graph::{AlignedBytes, CsrBytes};
use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, every [`MappedFile::open`] skips the `mmap(2)` attempt and
/// takes the aligned-heap fallback — the chaos seam `xp chaos` uses to
/// prove the fallback serves bit-identical graphs.
static FORCE_HEAP: AtomicBool = AtomicBool::new(false);

/// Forces (or stops forcing) the heap fallback for all subsequent
/// [`MappedFile::open`] calls in this process.
///
/// Fault-injection seam: a run under `nonsearch_fault::FaultPlan` with
/// forced-heap on must produce byte-identical results to a mapped run,
/// because [`LoadMode::Mmap`](crate::LoadMode::Mmap) documents the
/// fallback as invisible. Process-global by design — chaos runs flip it
/// once before the sweep, not per load.
pub fn force_heap_fallback(on: bool) {
    FORCE_HEAP.store(on, Ordering::SeqCst);
}

pub(crate) fn heap_forced() -> bool {
    FORCE_HEAP.load(Ordering::SeqCst)
}

/// Serializes tests that assert on the *actual* mapped/heap backing, so
/// the [`force_heap_fallback`] toggle cannot race them.
#[cfg(test)]
pub(crate) fn backing_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

// The raw-ABI declaration below (i64 offset = off_t) matches 64-bit
// linux only; 32-bit glibc takes a 32-bit off_t, so mapping is gated to
// 64-bit targets there — which lose nothing, since the zero-copy CSR
// cast is 64-bit-only anyway and the heap fallback stays correct.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    // The canonical linux ABI for the two calls; linking against libc
    // needs no crate because every Rust binary on linux already does.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

enum Backing {
    /// A live `mmap(2)` region, unmapped on drop.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    Mapped { ptr: *const u8, len: usize },
    /// The read-into-memory fallback (8-byte aligned, so zero-copy CSR
    /// views work from the heap image too).
    Heap(AlignedBytes),
}

/// A whole file exposed as a shared byte region: memory-mapped on
/// 64-bit Linux, read into an aligned heap buffer elsewhere.
///
/// The mapping is private and read-only; page faults — not `read(2)`
/// calls or heap copies — bring the bytes in, so a corpus larger than
/// RAM can serve graphs at page-cache cost. Note the usual `mmap`
/// caveat: truncating the file *while it is mapped* turns later
/// accesses into `SIGBUS`. Corpus files are written once and verified
/// by checksum at map time, so this only matters for corpora modified
/// mid-run (which the store already documents as unsupported).
pub struct MappedFile {
    backing: Backing,
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

// SAFETY: the region is immutable for the whole lifetime of the value —
// PROT_READ mapping or untouched heap buffer — and `munmap` only runs
// on drop, when no shared reference can remain.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Opens `path` as a shared read-only byte region, preferring an
    /// actual file mapping and silently degrading to a heap read.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] if the file cannot be opened, sized,
    /// or (in the fallback) read.
    pub fn open(path: &Path) -> Result<MappedFile, CorpusError> {
        let mut file = File::open(path).map_err(|e| CorpusError::io(path, e))?;
        let len = file.metadata().map_err(|e| CorpusError::io(path, e))?.len();
        let len = usize::try_from(len).map_err(|_| {
            CorpusError::io(
                path,
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "file exceeds the address space",
                ),
            )
        })?;
        // mmap(2) rejects zero-length mappings; an empty heap buffer is
        // the honest representation anyway.
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        if len > 0 && !heap_forced() {
            {
                use std::os::fd::AsRawFd;
                // SAFETY: a fresh anonymous address (addr = null), a
                // length matching the open file, PROT_READ only, and a
                // fd we own; the kernel validates everything else and
                // returns MAP_FAILED (-1) on refusal.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as usize != usize::MAX && !ptr.is_null() {
                    // The mapping persists after the fd closes (POSIX),
                    // so `file` can drop normally.
                    return Ok(MappedFile {
                        backing: Backing::Mapped {
                            ptr: ptr.cast::<u8>().cast_const(),
                            len,
                        },
                    });
                }
            }
        }
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes)
            .map_err(|e| CorpusError::io(path, e))?;
        Ok(MappedFile {
            backing: Backing::Heap(AlignedBytes::from_bytes(&bytes)),
        })
    }

    /// `true` if the region is an actual `mmap(2)` mapping rather than
    /// the heap fallback.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            Backing::Mapped { .. } => true,
            Backing::Heap(_) => false,
        }
    }

    /// The region length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// `true` if the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly the address and length mmap returned, and
            // the last reference is going away.
            unsafe {
                sys::munmap(ptr.cast_mut().cast(), len);
            }
        }
    }
}

// SAFETY of the contract: the pointer and length never change after
// `open`, and the memory stays valid until `Drop` unmaps it — which
// cannot happen while any `Arc<MappedFile>` clone is alive.
unsafe impl CsrBytes for MappedFile {
    fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => {
                // SAFETY: a live PROT_READ mapping of exactly `len`
                // bytes, unmapped only on drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Heap(bytes) => bytes.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(tag: &str, contents: &[u8]) -> PathBuf {
        let path = std::env::temp_dir().join(format!("mmap_test_{}_{tag}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents_faithfully() {
        let _serial = backing_test_lock();
        let contents: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("contents", &contents);
        let mapped = MappedFile::open(&path).unwrap();
        assert_eq!(mapped.bytes(), &contents[..]);
        assert_eq!(mapped.len(), contents.len());
        assert!(!mapped.is_empty());
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        assert!(mapped.is_mapped(), "64-bit linux should really map");
        // The bytes must be pointer-stable across calls (the CsrBytes
        // contract borrowed CSR views rely on).
        assert_eq!(mapped.bytes().as_ptr(), mapped.bytes().as_ptr());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forced_heap_fallback_serves_identical_bytes_unmapped() {
        let _serial = backing_test_lock();
        let contents: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let path = temp_file("forced_heap", &contents);

        force_heap_fallback(true);
        let forced = MappedFile::open(&path).unwrap();
        force_heap_fallback(false);

        assert!(!forced.is_mapped(), "forced opens must not map");
        assert_eq!(forced.bytes(), &contents[..]);
        // With the force released, mapping resumes on 64-bit linux.
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        assert!(MappedFile::open(&path).unwrap().is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_uses_the_heap_representation() {
        let path = temp_file("empty", b"");
        let mapped = MappedFile::open(&path).unwrap();
        assert!(mapped.is_empty());
        assert!(!mapped.is_mapped());
        assert_eq!(mapped.bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_clean_io_error() {
        let path = std::env::temp_dir().join(format!("mmap_missing_{}", std::process::id()));
        let err = MappedFile::open(&path).unwrap_err();
        assert!(matches!(err, CorpusError::Io { .. }));
        assert!(err.to_string().contains("mmap_missing"));
    }

    #[test]
    fn mapped_file_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappedFile>();
    }

    #[test]
    fn region_outlives_the_handle_through_an_arc() {
        use std::sync::Arc;
        let contents = vec![7u8; 4096];
        let path = temp_file("arc", &contents);
        let mapped: Arc<dyn CsrBytes> = Arc::new(MappedFile::open(&path).unwrap());
        let clone = Arc::clone(&mapped);
        drop(mapped);
        assert_eq!(clone.bytes(), &contents[..]);
        std::fs::remove_file(&path).ok();
    }
}
