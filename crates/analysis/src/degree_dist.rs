//! Empirical degree distributions.

use nonsearch_graph::{degree_histogram, UndirectedCsr};

/// The empirical degree distribution of a graph.
///
/// Provides the PMF, the complementary CDF (`P(D ≥ d)`, the standard
/// visualization for scale-free graphs) and the raw counts.
///
/// # Example
///
/// ```
/// use nonsearch_analysis::DegreeDistribution;
/// use nonsearch_graph::UndirectedCsr;
///
/// // Star on 5 vertices: one vertex of degree 4, four of degree 1.
/// let g = UndirectedCsr::from_edges(5, (1..5).map(|i| (0, i)))?;
/// let dist = DegreeDistribution::of(&g);
/// assert_eq!(dist.count(1), 4);
/// assert!((dist.pmf(4) - 0.2).abs() < 1e-12);
/// assert!((dist.ccdf(1) - 1.0).abs() < 1e-12);
/// # Ok::<(), nonsearch_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeDistribution {
    counts: Vec<usize>,
    total: usize,
}

impl DegreeDistribution {
    /// Computes the distribution of `graph`.
    pub fn of(graph: &UndirectedCsr) -> DegreeDistribution {
        DegreeDistribution {
            counts: degree_histogram(graph),
            total: graph.node_count(),
        }
    }

    /// Builds a distribution directly from a degree sequence.
    pub fn from_degrees(degrees: &[usize]) -> DegreeDistribution {
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mut counts = vec![0usize; if degrees.is_empty() { 0 } else { max + 1 }];
        for &d in degrees {
            counts[d] += 1;
        }
        DegreeDistribution {
            counts,
            total: degrees.len(),
        }
    }

    /// Number of vertices with degree exactly `d`.
    pub fn count(&self, d: usize) -> usize {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// `P(D = d)`.
    pub fn pmf(&self, d: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(d) as f64 / self.total as f64
        }
    }

    /// `P(D ≥ d)` — the complementary CDF.
    pub fn ccdf(&self, d: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let tail: usize = self.counts.iter().skip(d).sum();
        tail as f64 / self.total as f64
    }

    /// Largest observed degree.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as f64 * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// Number of vertices described.
    pub fn node_count(&self) -> usize {
        self.total
    }

    /// The degree sequence expanded back out (sorted ascending).
    pub fn to_degrees(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.total);
        for (d, &c) in self.counts.iter().enumerate() {
            out.extend(std::iter::repeat_n(d, c));
        }
        out
    }

    /// Iterator over `(degree, count)` pairs with positive count.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(d, &c)| (d, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::UndirectedCsr;

    fn star5() -> DegreeDistribution {
        let g = UndirectedCsr::from_edges(5, (1..5).map(|i| (0, i))).unwrap();
        DegreeDistribution::of(&g)
    }

    #[test]
    fn counts_and_pmf() {
        let d = star5();
        assert_eq!(d.count(1), 4);
        assert_eq!(d.count(4), 1);
        assert_eq!(d.count(9), 0);
        assert!((d.pmf(1) - 0.8).abs() < 1e-12);
        assert_eq!(d.node_count(), 5);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing() {
        let d = star5();
        assert!((d.ccdf(0) - 1.0).abs() < 1e-12);
        let mut prev = 2.0;
        for deg in 0..=6 {
            let c = d.ccdf(deg);
            assert!(c <= prev + 1e-15);
            prev = c;
        }
        assert_eq!(d.ccdf(5), 0.0);
    }

    #[test]
    fn from_degrees_roundtrip() {
        let degrees = vec![1, 1, 2, 3, 3, 3];
        let d = DegreeDistribution::from_degrees(&degrees);
        assert_eq!(d.to_degrees(), degrees);
        assert_eq!(d.max_degree(), 3);
        assert!((d.mean() - 13.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution() {
        let d = DegreeDistribution::from_degrees(&[]);
        assert_eq!(d.node_count(), 0);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.ccdf(0), 0.0);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn iter_skips_zero_counts() {
        let d = star5();
        let pairs: Vec<(usize, usize)> = d.iter().collect();
        assert_eq!(pairs, vec![(1, 4), (4, 1)]);
    }
}
