//! E12 — Sarshar et al.'s percolation search: replication along random
//! walks plus bond-percolation broadcast makes lookups sublinear on
//! power-law overlays.

use nonsearch_analysis::{SampleStats, Table};
use nonsearch_bench::{banner, quick, trials};
use nonsearch_core::{GraphModel, PowerLawGiantModel};
use nonsearch_generators::SeedSequence;
use nonsearch_graph::NodeId;
use nonsearch_search::{percolation_search, PercolationConfig};
use rand::Rng;

fn main() {
    banner(
        "E12 / percolation search",
        "replication × percolation probability trade-off: success rises \
         with both, messages stay sublinear in n for fixed parameters",
    );

    let n = if quick() { 8_000 } else { 30_000 };
    let trial_count = trials(60);
    let model = PowerLawGiantModel {
        exponent: 2.3,
        d_min: 1,
    };
    let seeds = SeedSequence::new(0xE12);

    let mut rng = seeds.child_rng(0);
    let overlay = model.sample_graph(n, &mut rng);
    let peers = overlay.node_count();
    println!("overlay: k = 2.3 giant with {peers} peers\n");

    let walks = [0usize, 50, 200, 800];
    let probs = [0.05, 0.15, 0.3];
    let mut table = Table::with_columns(&[
        "replication walk",
        "edge prob",
        "success",
        "mean messages",
        "messages / n",
    ]);
    for (wi, &walk) in walks.iter().enumerate() {
        for (qi, &q) in probs.iter().enumerate() {
            let config = PercolationConfig {
                replication_walk: walk,
                query_walk: walk.min(100),
                edge_probability: q,
            };
            let cell_seeds = seeds.subsequence(1 + wi as u64).subsequence(qi as u64);
            let mut found = 0usize;
            let mut messages = Vec::new();
            for t in 0..trial_count {
                let mut rng = cell_seeds.child_rng(t as u64);
                let owner = NodeId::new(rng.gen_range(0..peers));
                let requester = NodeId::new(rng.gen_range(0..peers));
                let out = percolation_search(&overlay, owner, requester, &config, &mut rng)
                    .expect("valid parameters");
                found += out.found as usize;
                messages.push(out.messages as f64);
            }
            let stats = SampleStats::from_slice(&messages).expect("trials ≥ 1");
            table.row(vec![
                walk.to_string(),
                format!("{q:.2}"),
                format!("{:.2}", found as f64 / trial_count as f64),
                format!("{:.0}", stats.mean()),
                format!("{:.3}", stats.mean() / peers as f64),
            ]);
        }
    }
    println!("{table}");
    println!("shape to check: success climbs with replication and edge");
    println!("probability; at moderate q the message cost is a small fraction");
    println!("of n — the sublinear lookup Sarshar et al. promise. None of");
    println!("this circumvents Theorem 1: it presumes content replicated");
    println!("*before* the query, unlike searching for a specific new vertex.");
}
