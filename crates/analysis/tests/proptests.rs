//! Property-based tests for the analysis toolkit.

use nonsearch_analysis::{
    fit_linear, fit_log_log, log_binned_histogram, pearson, DegreeDistribution, SampleStats,
};
use proptest::prelude::*;

proptest! {
    // Fixed case count: keeps CI time bounded and independent of the
    // proptest default.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stats_bounds_hold(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = SampleStats::from_slice(&data).unwrap();
        prop_assert!(s.min() <= s.mean() + 1e-6);
        prop_assert!(s.mean() <= s.max() + 1e-6);
        prop_assert!(s.min() <= s.median() && s.median() <= s.max());
        prop_assert!(s.variance() >= 0.0);
        prop_assert_eq!(s.count(), data.len());
    }

    #[test]
    fn quantiles_are_monotone(
        data in proptest::collection::vec(-1e5f64..1e5, 2..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let s = SampleStats::from_slice(&data).unwrap();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(s.quantile(lo) <= s.quantile(hi) + 1e-9);
    }

    #[test]
    fn shifting_data_shifts_mean_only(
        data in proptest::collection::vec(-1e3f64..1e3, 2..100),
        shift in -1e3f64..1e3,
    ) {
        let s1 = SampleStats::from_slice(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let s2 = SampleStats::from_slice(&shifted).unwrap();
        prop_assert!((s2.mean() - s1.mean() - shift).abs() < 1e-6);
        prop_assert!((s2.variance() - s1.variance()).abs() < 1e-3);
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in proptest::collection::hash_set(-1000i32..1000, 2..50),
    ) {
        let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn log_log_fit_recovers_power_laws(
        exponent in -3.0f64..3.0,
        scale_log in -3.0f64..3.0,
        xs in proptest::collection::hash_set(1u32..10_000, 2..40),
    ) {
        let scale = scale_log.exp();
        let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| scale * x.powf(exponent)).collect();
        prop_assume!(ys.iter().all(|y| y.is_finite() && *y > 0.0));
        let fit = fit_log_log(&xs, &ys).unwrap();
        prop_assert!((fit.slope - exponent).abs() < 1e-6);
    }

    #[test]
    fn degree_distribution_is_a_distribution(
        degrees in proptest::collection::vec(0usize..200, 1..300),
    ) {
        let dist = DegreeDistribution::from_degrees(&degrees);
        // PMF sums to 1.
        let total: f64 = (0..=dist.max_degree()).map(|d| dist.pmf(d)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // CCDF at 0 is 1 and is non-increasing.
        prop_assert!((dist.ccdf(0) - 1.0).abs() < 1e-12);
        for d in 0..dist.max_degree() {
            prop_assert!(dist.ccdf(d) + 1e-12 >= dist.ccdf(d + 1));
        }
        // Expansion round-trips (sorted).
        let mut sorted = degrees.clone();
        sorted.sort_unstable();
        prop_assert_eq!(dist.to_degrees(), sorted);
    }

    #[test]
    fn log_bins_partition_positive_mass(
        data in proptest::collection::vec(0usize..100_000, 0..300),
        growth_centi in 110u32..500,
    ) {
        let growth = growth_centi as f64 / 100.0;
        let bins = log_binned_histogram(&data, growth);
        let binned: usize = bins.iter().map(|b| b.count).sum();
        let positive = data.iter().filter(|&&x| x > 0).count();
        prop_assert_eq!(binned, positive);
        // Bins are ordered and disjoint.
        for w in bins.windows(2) {
            prop_assert!(w[0].hi <= w[1].lo);
        }
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&ys, &xs).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }
}
