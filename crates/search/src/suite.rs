//! The standard searcher suite used by certification and experiments.

use crate::{
    AvoidingWalk, BfsFlood, DfsWalk, GreedyIdProximity, HighDegreeGreedy, LookaheadWalk,
    OldestFirst, RandomWalk, RestartingWalk, SimulatedStrong, StrongGreedyId, StrongHighDegree,
    WeakSearcher,
};

/// Enumerates the weak-model searchers the experiments compare.
///
/// Lower-bound claims quantify over *all* local algorithms; empirically we
/// approximate that by taking the best of a diverse suite. `Simulated*`
/// variants run strong-model strategies through the paper's
/// strong-to-weak simulation.
///
/// # Example
///
/// ```
/// use nonsearch_search::SearcherKind;
///
/// let names: Vec<&str> = SearcherKind::all().iter().map(|k| k.name()).collect();
/// assert!(names.contains(&"high-degree"));
/// let mut searcher = SearcherKind::HighDegree.build();
/// assert_eq!(searcher.name(), "high-degree");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SearcherKind {
    /// Pure random walk.
    RandomWalk,
    /// Walk preferring unexplored edges.
    AvoidingWalk,
    /// Breadth-first flooding.
    BfsFlood,
    /// Depth-first exploration.
    Dfs,
    /// Adamic et al. high-degree greedy.
    HighDegree,
    /// Identity-proximity greedy.
    GreedyId,
    /// Oldest-vertex-first core seeking.
    OldestFirst,
    /// Greedy look-ahead walk on identity distance.
    LookaheadWalk,
    /// Random walk restarting at the source every 1000 steps.
    RestartingWalk,
    /// Strong-model high-degree greedy under weak simulation.
    SimStrongHighDegree,
    /// Strong-model identity greedy under weak simulation.
    SimStrongGreedyId,
}

impl SearcherKind {
    /// Every searcher in the suite.
    pub fn all() -> &'static [SearcherKind] {
        &[
            SearcherKind::RandomWalk,
            SearcherKind::AvoidingWalk,
            SearcherKind::BfsFlood,
            SearcherKind::Dfs,
            SearcherKind::HighDegree,
            SearcherKind::GreedyId,
            SearcherKind::OldestFirst,
            SearcherKind::LookaheadWalk,
            SearcherKind::RestartingWalk,
            SearcherKind::SimStrongHighDegree,
            SearcherKind::SimStrongGreedyId,
        ]
    }

    /// A fast subset for large sweeps: the informed strategies plus one
    /// walk (exhaustive floods scale linearly and only pad runtimes).
    pub fn informed() -> &'static [SearcherKind] {
        &[
            SearcherKind::AvoidingWalk,
            SearcherKind::HighDegree,
            SearcherKind::GreedyId,
            SearcherKind::OldestFirst,
            SearcherKind::LookaheadWalk,
            SearcherKind::SimStrongHighDegree,
        ]
    }

    /// The searcher's report name (matches
    /// [`WeakSearcher::name`](crate::WeakSearcher::name)).
    pub fn name(&self) -> &'static str {
        match self {
            SearcherKind::RandomWalk => "random-walk",
            SearcherKind::AvoidingWalk => "avoiding-walk",
            SearcherKind::BfsFlood => "bfs-flood",
            SearcherKind::Dfs => "dfs",
            SearcherKind::HighDegree => "high-degree",
            SearcherKind::GreedyId => "greedy-id",
            SearcherKind::OldestFirst => "oldest-first",
            SearcherKind::LookaheadWalk => "lookahead-walk",
            SearcherKind::RestartingWalk => "restarting-walk",
            SearcherKind::SimStrongHighDegree => "sim-strong-high-degree",
            SearcherKind::SimStrongGreedyId => "sim-strong-greedy-id",
        }
    }

    /// Builds a fresh instance of the searcher.
    pub fn build(&self) -> Box<dyn WeakSearcher> {
        match self {
            SearcherKind::RandomWalk => Box::new(RandomWalk::new()),
            SearcherKind::AvoidingWalk => Box::new(AvoidingWalk::new()),
            SearcherKind::BfsFlood => Box::new(BfsFlood::new()),
            SearcherKind::Dfs => Box::new(DfsWalk::new()),
            SearcherKind::HighDegree => Box::new(HighDegreeGreedy::new()),
            SearcherKind::GreedyId => Box::new(GreedyIdProximity::new()),
            SearcherKind::OldestFirst => Box::new(OldestFirst::new()),
            SearcherKind::LookaheadWalk => Box::new(LookaheadWalk::new()),
            SearcherKind::RestartingWalk => Box::new(RestartingWalk::new(1000)),
            SearcherKind::SimStrongHighDegree => {
                Box::new(SimulatedStrong::new(StrongHighDegree::new()))
            }
            SearcherKind::SimStrongGreedyId => {
                Box::new(SimulatedStrong::new(StrongGreedyId::new()))
            }
        }
    }
}

impl std::fmt::Display for SearcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_weak, SearchTask};
    use nonsearch_graph::{NodeId, UndirectedCsr};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_kind_builds_and_runs() {
        let g = UndirectedCsr::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let task = SearchTask::new(NodeId::new(0), NodeId::new(5)).with_budget(10_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for kind in SearcherKind::all() {
            let mut s = kind.build();
            let o = run_weak(&g, &task, &mut *s, &mut rng).unwrap();
            assert!(o.found, "{kind} failed on the path");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SearcherKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SearcherKind::all().len());
    }

    #[test]
    fn informed_is_a_subset_of_all() {
        for k in SearcherKind::informed() {
            assert!(SearcherKind::all().contains(k));
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SearcherKind::RandomWalk.to_string(), "random-walk");
    }
}
