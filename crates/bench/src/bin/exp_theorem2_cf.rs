//! E3 — Theorem 2: every Cooper–Frieze model with `0 < α < 1` needs
//! `Ω(n^{1/2})` weak-model requests to find vertex `n`.

use nonsearch_bench::{banner, quick, sweep, trials};
use nonsearch_core::{certify, CertifyConfig, CooperFriezeModel};
use nonsearch_engine::CliOptions;
use nonsearch_search::{SearcherKind, SuccessCriterion};

fn main() {
    banner(
        "E3 / Theorem 2 (Cooper–Frieze, weak model)",
        "all Cooper–Frieze models with 0 < α < 1 require Ω(n^0.5) requests; \
         measured best exponents should sit at or above ~0.5",
    );

    let sizes = sweep(&[512, 1024, 2048, 4096, 8192]);
    let trial_count = trials(10);
    let alphas = if quick() { vec![0.6] } else { vec![0.5, 0.8] };

    for &alpha in &alphas {
        let model = CooperFriezeModel::balanced(alpha);
        let config = CertifyConfig {
            sizes: sizes.clone(),
            trials: trial_count,
            seed: 0xE3,
            searchers: SearcherKind::informed().to_vec(),
            criterion: SuccessCriterion::DiscoverTarget,
            budget_multiplier: 30,
            threads: CliOptions::global().threads,
            tracer: nonsearch_obs::Tracer::disabled(),
        };
        let report = certify(&model, &config);
        println!("{report}");
        if let Some(expo) = report.best_exponent() {
            println!("fitted exponent of best algorithm: {expo:.3} (theory: ≥ 0.5)\n");
        }
    }
}
