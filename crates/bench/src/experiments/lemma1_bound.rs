//! E6 — Lemma 1 composition: `|V|·P(E)/2` against measured search cost.
//!
//! The sanity contract of a lower bound: for every size, every algorithm's
//! measured mean must sit at or above the bound, and the bound itself
//! must grow like √n.

use super::{open_corpus, print_banner, resolve_source};
use nonsearch_analysis::{fit_log_log, Table};
use nonsearch_core::{
    certify_with_source, mori_event_probability_exact, theorem1_weak_bound, BoundComparison,
    CertifyConfig, EquivalenceWindow, GraphModel, MergedMoriModel,
};
use nonsearch_engine::{ExpContext, ExperimentSpec, JsonValue};
use nonsearch_search::{SearcherKind, SuccessCriterion};

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "lemma1-bound",
    id: "E6",
    claim: "|V|·P(E)/2 lower-bounds every measured searcher and grows as √n",
    default_seed: 0xE6,
    run,
};

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E6 / Lemma 1 (bound arithmetic)",
        "|V|·P(E)/2 must lower-bound every measured searcher and grow as √n",
    );

    let p = 0.5;
    let sizes = ctx.options.sweep(&[512, 1024, 2048, 4096, 8192]);
    let trial_count = ctx.options.trial_count(10);
    let model = MergedMoriModel { p, m: 1 };
    let config = CertifyConfig {
        sizes: sizes.clone(),
        trials: trial_count,
        seed: ctx.seed,
        searchers: SearcherKind::informed().to_vec(),
        criterion: SuccessCriterion::DiscoverTarget,
        budget_multiplier: 30,
        threads: ctx.options.threads,
        tracer: ctx.tracer.clone(),
    };
    let corpus = open_corpus(ctx);
    let source = resolve_source(corpus.as_ref(), &model, &sizes);
    let report = certify_with_source(model.name(), &*source, &config);

    let mut table =
        Table::with_columns(&["n", "|V|", "P(E) exact", "bound", "best measured", "holds"]);
    let best = report.best_algorithm().expect("suite is non-empty");
    let mut bound_series = Vec::new();
    for pt in &best.points {
        let w = EquivalenceWindow::for_target(pt.n);
        let prob = mori_event_probability_exact(w.a(), w.b(), p).expect("valid window");
        let bound = theorem1_weak_bound(pt.n, p).expect("valid n, p");
        let cmp = BoundComparison {
            n: pt.n,
            bound,
            measured: pt.mean_requests,
        };
        table.row(vec![
            pt.n.to_string(),
            w.len().to_string(),
            format!("{prob:.4}"),
            format!("{bound:.1}"),
            format!("{:.1}", pt.mean_requests),
            if cmp.holds() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        ctx.writer
            .record_cell(vec![
                ("model", JsonValue::from("mori")),
                ("p", JsonValue::from(p)),
                ("n", JsonValue::from(pt.n)),
                ("window", JsonValue::from(w.len())),
                ("event_probability", JsonValue::from(prob)),
                ("bound", JsonValue::from(bound)),
                ("searcher", JsonValue::from(best.kind.name())),
                ("trials", JsonValue::from(trial_count)),
                ("seed", JsonValue::from(ctx.seed)),
                ("mean", JsonValue::from(pt.mean_requests)),
                ("ci95", JsonValue::from(pt.ci95)),
                ("success", JsonValue::from(pt.success_rate)),
                ("holds", JsonValue::from(cmp.holds())),
            ])
            .expect("write cell record");
        bound_series.push((pt.n as f64, bound));
    }
    if ctx.options.profile {
        // The certify sweep already timed each size cell; report its
        // throughput records exactly like theorem1-weak does.
        for profile in &report.profiles {
            ctx.writer
                .record_profile(vec![
                    ("model", JsonValue::from("mori")),
                    ("p", JsonValue::from(p)),
                    ("n", JsonValue::from(profile.n)),
                    ("trials", JsonValue::from(profile.trials)),
                    ("lanes", JsonValue::from(profile.lanes)),
                    ("requests", JsonValue::from(profile.requests)),
                    ("wall_ms", JsonValue::from(profile.wall_ms)),
                    (
                        "requests_per_sec",
                        JsonValue::from(profile.requests_per_sec),
                    ),
                ])
                .expect("write profile record");
            ctx.writer
                .record_metrics(
                    vec![
                        ("model", JsonValue::from("mori")),
                        ("p", JsonValue::from(p)),
                        ("n", JsonValue::from(profile.n)),
                    ],
                    &profile.metrics,
                )
                .expect("write metrics record");
            ctx.writer
                .record_resource(
                    vec![
                        ("model", JsonValue::from("mori")),
                        ("p", JsonValue::from(p)),
                        ("n", JsonValue::from(profile.n)),
                    ],
                    profile.wall_ms as u64,
                    profile.workers,
                    &profile.phases,
                    profile.allocations,
                    &profile.resource,
                )
                .expect("write resource record");
        }
    }
    println!("best algorithm: {}", best.kind.name());
    println!("{table}");

    let xs: Vec<f64> = bound_series.iter().map(|&(n, _)| n).collect();
    let ys: Vec<f64> = bound_series.iter().map(|&(_, b)| b).collect();
    if let Some(fit) = fit_log_log(&xs, &ys) {
        println!(
            "bound growth exponent: {:.3} (theory: 0.5 exactly, up to ⌊√⌋ jitter)",
            fit.slope
        );
    }
}
