//! Amortized-O(1) frontier bookkeeping shared by the greedy searchers.

use crate::stamped::StampedMap;
use crate::DiscoveredView;
use nonsearch_graph::{EdgeId, NodeId};

/// Per-vertex cursors over incident edge lists, stored dense.
///
/// Edge resolution is monotone (a resolved edge never becomes unresolved),
/// so a forward-only cursor per vertex finds each vertex's next
/// unexplored edge in O(1) amortized instead of rescanning the whole
/// incident list on every request. All the O(log n)-per-step searchers
/// ([`HighDegreeGreedy`](crate::HighDegreeGreedy) and friends) share this,
/// as does [`SimulatedStrong`](crate::SimulatedStrong)'s expansion scan.
///
/// The cursors live in a [`StampedMap`] indexed by [`NodeId`], so
/// [`reset`](FrontierCursors::reset) is O(1), the u32 epoch wrap is
/// audited once (in `StampedMap`), and a searcher reused across trials
/// performs no per-request hashing or allocation once the array has grown
/// to the graph size — or from the very first request, after
/// [`reserve`](FrontierCursors::reserve).
#[derive(Debug, Clone, Default)]
pub struct FrontierCursors {
    cursors: StampedMap<usize>,
    /// Cumulative count of resolved incident slots skipped by
    /// [`next_unexplored`](FrontierCursors::next_unexplored) scans.
    /// Survives [`reset`](FrontierCursors::reset) — metrics consumers
    /// take before/after deltas.
    rescans: u64,
}

impl FrontierCursors {
    /// Creates empty cursors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cursors whose *next* [`reset`](FrontierCursors::reset) takes the
    /// epoch-wrap path. Test-only hook: wrap coverage drives the public
    /// API instead of poking private fields.
    #[doc(hidden)]
    pub fn near_wrap() -> Self {
        FrontierCursors {
            cursors: StampedMap::near_wrap(),
            rescans: 0,
        }
    }

    /// Grows the cursor array to cover `nodes` vertices, so lookups on a
    /// graph of that size never allocate — even on the first trial.
    pub fn reserve(&mut self, nodes: usize) {
        self.cursors.reserve(nodes);
    }

    /// The next unresolved incident edge of `v`, advancing the cursor
    /// past resolved edges. Returns `None` when `v` is exhausted (or not
    /// discovered).
    // lint: alloc-free
    pub fn next_unexplored(&mut self, view: &DiscoveredView, v: NodeId) -> Option<EdgeId> {
        let info = view.vertex(v)?;
        let incident = info.incident();
        let i = v.index();
        let mut cursor = self.cursors.get(i).copied().unwrap_or(0);
        if cursor > incident.len() {
            // Stale cursor from a *different* graph (caller reused the
            // searcher without `reset`): the stored position can exceed
            // this vertex's incident list, and resuming there would
            // falsely report the vertex exhausted. Rescan from slot 0 —
            // resolution is monotone within a view, so rescanning only
            // re-skips edges and returns the correct first unresolved
            // one.
            cursor = 0;
        }
        let mut found = None;
        while cursor < incident.len() {
            let e = incident[cursor];
            if !view.is_resolved(e) {
                found = Some(e);
                break;
            }
            cursor += 1;
            self.rescans += 1;
        }
        self.cursors.put(i, cursor);
        found
    }

    /// Cumulative count of resolved slots these cursors have skipped
    /// past since construction (resets do not clear it) — the wasted
    /// scan work the amortized-O(1) cursor design keeps bounded.
    pub fn rescans(&self) -> u64 {
        self.rescans
    }

    /// Rewinds all cursors in O(1) via an epoch bump (for searcher reuse
    /// across runs); the backing array keeps its allocation.
    // lint: alloc-free
    pub fn reset(&mut self) {
        self.cursors.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SearchScratch, WeakSearchState};
    use nonsearch_graph::UndirectedCsr;

    #[test]
    fn cursor_advances_past_resolved_edges() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut scratch = SearchScratch::new();
        let mut state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();

        let e0 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e0).unwrap();
        let e1 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        assert_ne!(e0, e1);
        state.request(NodeId::new(0), e1).unwrap();
        let e2 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e2).unwrap();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_none());
    }

    #[test]
    fn rescan_counter_counts_skipped_slots() {
        let g = UndirectedCsr::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut scratch = SearchScratch::new();
        let mut state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();
        assert_eq!(cursors.rescans(), 0);
        // Resolve the first two edges, then scan: the cursor must skip
        // both resolved slots to reach the third.
        let e0 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e0).unwrap();
        let e1 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e1).unwrap();
        let before = cursors.rescans();
        cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        assert!(cursors.rescans() > before);
        // The counter survives a reset (cumulative; callers diff it).
        let total = cursors.rescans();
        cursors.reset();
        assert_eq!(cursors.rescans(), total);
    }

    #[test]
    fn undiscovered_vertex_yields_none() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let mut scratch = SearchScratch::new();
        let state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(1))
            .is_none());
    }

    #[test]
    fn reset_rewinds() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let mut scratch = SearchScratch::new();
        let state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let mut cursors = FrontierCursors::new();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_some());
        cursors.reset();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_some());
    }

    #[test]
    fn epoch_wrap_rewinds_too() {
        let g = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let mut scratch = SearchScratch::new();
        let mut state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        // Built at the wrap boundary; advance the cursor to exhaustion
        // through the public API.
        let mut cursors = FrontierCursors::near_wrap();
        let e0 = cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .unwrap();
        state.request(NodeId::new(0), e0).unwrap();
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_none());
        cursors.reset(); // the wrap path
                         // A fresh search on the same scratch: the view resets too.
        let state = WeakSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        // A wrapped reset must rewind to slot 0, not resume at 1.
        assert!(cursors
            .next_unexplored(state.view(), NodeId::new(0))
            .is_some());
    }

    #[test]
    fn stale_cursor_from_a_longer_graph_does_not_fake_exhaustion() {
        // Regression: reuse the cursors across two graphs *without*
        // reset. On graph A, vertex 0 has degree 3 and gets fully
        // explored (cursor parked at 3). On graph B the same vertex has
        // degree 1; the stale same-epoch cursor (3 > 1) used to make
        // `next_unexplored` report the vertex exhausted even though its
        // single edge is unresolved.
        let a = UndirectedCsr::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let b = UndirectedCsr::from_edges(2, [(0, 1)]).unwrap();
        let mut scratch = SearchScratch::new();
        let mut cursors = FrontierCursors::new();

        let mut state = WeakSearchState::new_in(&mut scratch, &a, NodeId::new(0)).unwrap();
        while let Some(e) = cursors.next_unexplored(state.view(), NodeId::new(0)) {
            state.request(NodeId::new(0), e).unwrap();
        }

        let state = WeakSearchState::new_in(&mut scratch, &b, NodeId::new(0)).unwrap();
        assert!(
            cursors
                .next_unexplored(state.view(), NodeId::new(0))
                .is_some(),
            "stale cursor reported the vertex exhausted"
        );
    }
}
