//! E6 — Lemma 1 composition: `|V|·P(E)/2` against measured search cost.
//!
//! The sanity contract of a lower bound: for every size, every algorithm's
//! measured mean must sit at or above the bound, and the bound itself
//! must grow like √n.

use nonsearch_analysis::{fit_log_log, Table};
use nonsearch_bench::{banner, sweep, trials};
use nonsearch_core::{
    certify, mori_event_probability_exact, theorem1_weak_bound, BoundComparison, CertifyConfig,
    EquivalenceWindow, MergedMoriModel,
};
use nonsearch_search::{SearcherKind, SuccessCriterion};

fn main() {
    banner(
        "E6 / Lemma 1 (bound arithmetic)",
        "|V|·P(E)/2 must lower-bound every measured searcher and grow as √n",
    );

    let p = 0.5;
    let sizes = sweep(&[512, 1024, 2048, 4096, 8192]);
    let model = MergedMoriModel { p, m: 1 };
    let config = CertifyConfig {
        sizes: sizes.clone(),
        trials: trials(10),
        seed: 0xE6,
        searchers: SearcherKind::informed().to_vec(),
        criterion: SuccessCriterion::DiscoverTarget,
        budget_multiplier: 30,
    };
    let report = certify(&model, &config);

    let mut table =
        Table::with_columns(&["n", "|V|", "P(E) exact", "bound", "best measured", "holds"]);
    let best = report.best_algorithm().expect("suite is non-empty");
    let mut bound_series = Vec::new();
    for pt in &best.points {
        let w = EquivalenceWindow::for_target(pt.n);
        let prob = mori_event_probability_exact(w.a(), w.b(), p).expect("valid window");
        let bound = theorem1_weak_bound(pt.n, p).expect("valid n, p");
        let cmp = BoundComparison {
            n: pt.n,
            bound,
            measured: pt.mean_requests,
        };
        table.row(vec![
            pt.n.to_string(),
            w.len().to_string(),
            format!("{prob:.4}"),
            format!("{bound:.1}"),
            format!("{:.1}", pt.mean_requests),
            if cmp.holds() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        bound_series.push((pt.n as f64, bound));
    }
    println!("best algorithm: {}", best.kind.name());
    println!("{table}");

    let xs: Vec<f64> = bound_series.iter().map(|&(n, _)| n).collect();
    let ys: Vec<f64> = bound_series.iter().map(|&(_, b)| b).collect();
    if let Some(fit) = fit_log_log(&xs, &ys) {
        println!(
            "bound growth exponent: {:.3} (theory: 0.5 exactly, up to ⌊√⌋ jitter)",
            fit.slope
        );
    }
}
