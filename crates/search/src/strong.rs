//! The strong local-knowledge oracle and the strong-searcher interface.

use crate::{DiscoveredView, SearchError, SearchScratch, SearchTask};
use nonsearch_graph::{NodeId, UndirectedCsr};
use rand::RngCore;

/// Oracle state for a strong-model search.
///
/// A strong request names a vertex `u` of known identity; the answer is
/// *"the list of vertices adjacent to `u`, together with their respective
/// lists of incident edges"* — so one request reveals every neighbor of
/// `u` with its identity and degree. This is strictly more information
/// per request than the weak model, and the paper notes Kleinberg's model
/// assumes even more.
///
/// All mutable state (view, expansion order, answer buffer) lives in a
/// borrowed [`SearchScratch`], so per-request work allocates nothing
/// once the scratch is warm.
#[derive(Debug)]
pub struct StrongSearchState<'s, 'g> {
    graph: &'g UndirectedCsr,
    scratch: &'s mut SearchScratch,
    requests: usize,
}

impl<'s, 'g> StrongSearchState<'s, 'g> {
    /// Starts a search at `start` (known for free, as in the weak
    /// model), resetting `scratch` first (O(1) epoch bump).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::TaskOutOfBounds`] if `start` is not in the
    /// graph.
    pub fn new_in(
        scratch: &'s mut SearchScratch,
        graph: &'g UndirectedCsr,
        start: NodeId,
    ) -> crate::Result<Self> {
        if start.index() >= graph.node_count() {
            return Err(SearchError::TaskOutOfBounds {
                vertex: start,
                node_count: graph.node_count(),
            });
        }
        scratch.begin(graph);
        scratch
            .view
            .insert_vertex_from_slots(start, graph.incident(start));
        Ok(StrongSearchState {
            graph,
            scratch,
            requests: 0,
        })
    }

    /// The searcher's current knowledge.
    pub fn view(&self) -> &DiscoveredView {
        &self.scratch.view
    }

    /// Requests issued so far.
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// Vertices whose neighborhoods have been expanded, in request order.
    pub fn expanded(&self) -> &[NodeId] {
        &self.scratch.expanded
    }

    /// Issues the strong-model request on `u`: reveals all neighbors of
    /// `u` (identity + incident edge lists). Costs one request.
    ///
    /// The returned slice borrows the scratch's answer buffer (reused
    /// across requests, so no per-request vector is allocated); copy it
    /// out if you need it past the next call.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::UndiscoveredVertex`] if the identity of `u`
    /// is not yet known to the searcher.
    pub fn request(&mut self, u: NodeId) -> crate::Result<&[NodeId]> {
        if !self.scratch.view.contains(u) {
            return Err(SearchError::UndiscoveredVertex { vertex: u });
        }
        self.requests += 1;
        self.scratch.expanded.push(u);
        self.scratch.revealed.clear();
        for &(v, e) in self.graph.incident(u) {
            self.scratch.view.resolve_edge(u, e, v);
            if !self.scratch.view.contains(v) {
                self.scratch
                    .view
                    .insert_vertex_from_slots(v, self.graph.incident(v));
            }
            self.scratch.revealed.push(v);
        }
        Ok(&self.scratch.revealed)
    }
}

/// A strong-model search algorithm: chooses which known vertex to expand
/// next.
pub trait StrongSearcher {
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the next vertex to expand, or `None` to give up.
    fn next_request(
        &mut self,
        task: &SearchTask,
        view: &DiscoveredView,
        rng: &mut dyn RngCore,
    ) -> Option<NodeId>;

    /// Observes the answer to the previous request (default: ignore).
    fn observe(&mut self, _expanded: NodeId, _neighbors: &[NodeId]) {}

    /// Resets internal state so the searcher can be reused for a new run.
    fn reset(&mut self) {}

    /// Pre-sizes internal buffers for a graph with `nodes` vertices and
    /// `edges` edges, so even a first trial allocates nothing (default:
    /// ignore). The runners call this right after
    /// [`reset`](StrongSearcher::reset); a no-op once large enough.
    fn reserve(&mut self, _nodes: usize, _edges: usize) {}

    /// Cumulative count of resolved frontier slots this searcher's
    /// cursors have skipped past (see
    /// [`FrontierCursors::rescans`](crate::FrontierCursors::rescans)).
    /// Default `0` — the native strong searchers track expansion with
    /// stamped sets, not cursors.
    fn frontier_rescans(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::UndirectedCsr;

    fn star() -> UndirectedCsr {
        UndirectedCsr::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap()
    }

    #[test]
    fn one_request_reveals_all_neighbors() {
        let g = star();
        let mut scratch = SearchScratch::new();
        let mut s = StrongSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        let revealed = s.request(NodeId::new(0)).unwrap().to_vec();
        assert_eq!(revealed.len(), 3);
        assert_eq!(s.requests(), 1);
        for v in [1, 2, 3] {
            assert!(s.view().contains(NodeId::new(v)));
            assert_eq!(s.view().degree_of(NodeId::new(v)), Some(1));
        }
        assert_eq!(s.expanded(), &[NodeId::new(0)]);
    }

    #[test]
    fn revealed_neighbors_can_be_expanded_next() {
        let g = UndirectedCsr::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut scratch = SearchScratch::new();
        let mut s = StrongSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        s.request(NodeId::new(0)).unwrap();
        let revealed = s.request(NodeId::new(1)).unwrap();
        assert!(revealed.contains(&NodeId::new(2)));
        assert_eq!(s.requests(), 2);
    }

    #[test]
    fn unknown_identity_is_a_violation() {
        let g = star();
        let mut scratch = SearchScratch::new();
        let mut s = StrongSearchState::new_in(&mut scratch, &g, NodeId::new(1)).unwrap();
        // Vertex 2's identity is unknown until some expansion reveals it.
        assert!(matches!(
            s.request(NodeId::new(2)),
            Err(SearchError::UndiscoveredVertex { .. })
        ));
        assert_eq!(s.requests(), 0);
    }

    #[test]
    fn bad_start_rejected() {
        let g = star();
        let mut scratch = SearchScratch::new();
        assert!(StrongSearchState::new_in(&mut scratch, &g, NodeId::new(99)).is_err());
    }

    #[test]
    fn edges_resolved_after_expansion() {
        let g = star();
        let mut scratch = SearchScratch::new();
        let mut s = StrongSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
        s.request(NodeId::new(0)).unwrap();
        let incident = s.view().vertex(NodeId::new(0)).unwrap().incident().to_vec();
        for e in incident {
            assert!(s.view().is_resolved(e));
        }
    }

    #[test]
    fn scratch_reuse_clears_expansion_order() {
        let g = star();
        let mut scratch = SearchScratch::new();
        {
            let mut s = StrongSearchState::new_in(&mut scratch, &g, NodeId::new(0)).unwrap();
            s.request(NodeId::new(0)).unwrap();
            assert_eq!(s.expanded().len(), 1);
        }
        let s = StrongSearchState::new_in(&mut scratch, &g, NodeId::new(1)).unwrap();
        assert!(s.expanded().is_empty());
        assert_eq!(s.view().len(), 1);
    }
}
