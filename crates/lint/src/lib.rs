//! `nonsearch_lint` — the workspace's invariant linter, behind
//! `xp lint`.
//!
//! The reproduction's headline guarantee — bit-identical Monte-Carlo
//! aggregates for any `--threads` — rests on contracts that no single
//! type signature can express: the epoch wrap lives in exactly one
//! function, `unsafe` stays inside two audited modules, hot paths
//! never allocate, hash-ordered iteration never reaches an aggregate,
//! and wall clocks stay behind the observability seam. This crate
//! turns those conventions into a machine-checked static-analysis
//! pass, in the repo's dependency-free style: no `syn`, no
//! proc-macros, no network — just a comment- and string-literal-aware
//! scanner ([`scan`]) and six rules ([`rules`]) over the masked code.
//!
//! Findings are structured [`Diagnostic`]s; intentional ones carry an
//! inline waiver `// lint: allow(<rule>): <reason>` and are reported
//! without failing the run. The CLI ([`cli`]) emits JSON Lines through
//! the engine's record vocabulary (`"type":"diagnostic"` /
//! `"type":"lint"`), so `xp validate` checks lint reports like any
//! other run artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod rules;
pub mod scan;
pub mod walk;

pub use rules::{lint_files, Diagnostic, LintReport, RuleInfo, RULES};
pub use scan::{has_token, scan as scan_source, ScannedFile, ScannedLine};
pub use walk::collect_workspace;

use std::path::Path;

/// Lints the source tree rooted at `root`: walk, scan, all rules.
///
/// # Errors
///
/// Propagates I/O errors from reading the tree.
pub fn lint_tree(root: &Path) -> std::io::Result<LintReport> {
    Ok(lint_files(&collect_workspace(root)?))
}
