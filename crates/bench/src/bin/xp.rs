//! `xp` — the unified experiment CLI.
//!
//! ```text
//! xp list                                    # enumerate experiments
//! xp theorem1-weak --quick --threads 4 --out runs.jsonl
//! xp validate runs.jsonl                     # check emitted records
//! xp corpus build corpus-dir --quick         # persist a graph ensemble
//! xp theorem1-weak --quick --corpus corpus-dir
//! ```
//!
//! Subcommands share the engine flag set (`--quick`, `--threads`,
//! `--seed`, `--out`, `--format`, `--trials`, `--sizes`, `--corpus`);
//! run records are bit-identical for any `--threads` value with the
//! same seed. The `corpus` tool subcommands manage the persistent
//! graph-ensemble store (`nonsearch_corpus`); `xp bench` runs the
//! standardized engine benchmark suite (`BENCH_engine_suite.json`);
//! `xp chaos` is the deterministic fault-injection gate (byte-identical
//! cell records under injected faults, corpus self-heal, watchdog).

use nonsearch_alloc_counter::CountingAllocator;

// The counting allocator makes `"type":"resource"` records' per-trial
// `allocations` field real for every `xp` run (it reads as zero in
// binaries that don't install the counter). Counting is a per-thread
// relaxed increment — noise-free for the deterministic paths.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("corpus") {
        std::process::exit(nonsearch_corpus::cli::main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("bench") {
        std::process::exit(nonsearch_bench::bench_suite::main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("lint") {
        std::process::exit(nonsearch_lint::cli::main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("chaos") {
        std::process::exit(nonsearch_bench::chaos::main(&args[1..]));
    }
    std::process::exit(nonsearch_bench::experiments::registry().main(&args));
}
