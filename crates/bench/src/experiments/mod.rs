//! The registered experiment suite behind `xp` and the legacy binaries.
//!
//! Each submodule ports one `exp_*` binary onto the engine: same claim,
//! same pretty tables, same seed derivations — plus structured JSONL/CSV
//! cell records via [`ExpContext::writer`] and the shared flag set
//! (`--quick`, `--threads`, `--seed`, `--out`, `--format`, `--trials`,
//! `--sizes`). The remaining experiments still run as standalone
//! binaries; see `EXPERIMENTS.md` for the full map.

mod ablation;
mod degree_dist;
mod lemma1_bound;
mod lemma2_equiv;
mod lemma3_event;
mod maxdeg;
mod null_model;
mod theorem1_strong;
mod theorem1_weak;
mod theorem2_cf;

use nonsearch_core::{GraphModel, ModelSource};
use nonsearch_corpus::{Corpus, LoadMode};
use nonsearch_engine::{ExpContext, GraphSource, Registry};

/// Builds the registry of all ported experiments.
pub fn registry() -> Registry {
    let mut r = Registry::new();
    r.register(theorem1_weak::SPEC)
        .register(theorem1_strong::SPEC)
        .register(theorem2_cf::SPEC)
        .register(lemma1_bound::SPEC)
        .register(lemma2_equiv::SPEC)
        .register(lemma3_event::SPEC)
        .register(maxdeg::SPEC)
        .register(degree_dist::SPEC)
        .register(ablation::SPEC)
        .register(null_model::SPEC)
        .add_usage_note(
            "corpus build|info|verify — persistent graph-ensemble store (xp corpus help)",
        )
        .add_usage_note(
            "bench [--quick]           — engine benchmark suite (writes BENCH_engine_suite.json)",
        )
        .add_usage_note(
            "lint [--root DIR] [--out FILE] — invariant linter (xp lint --help for the rules)",
        )
        .add_usage_note("chaos [EXPERIMENT] [flags]  — fault-injection gate (xp chaos --help)");
    r
}

/// Opens the corpus named by `--corpus`, if any, honouring `--mmap`
/// (zero-copy memory-mapped loads instead of heap decodes — the served
/// graphs are byte-identical either way) and `--trust-checksums`
/// (skip the per-load payload hash; run `corpus verify` first).
///
/// # Panics
///
/// Panics (aborting the run) when the flag names a missing or corrupt
/// corpus — running generate-per-trial instead would silently ignore an
/// explicit request.
pub(super) fn open_corpus(ctx: &ExpContext) -> Option<Corpus> {
    let mode = if ctx.options.mmap {
        LoadMode::Mmap
    } else {
        LoadMode::Heap
    };
    ctx.options.corpus.as_ref().map(|dir| {
        Corpus::open_with_trust(dir, mode, ctx.options.trust_checksums)
            .unwrap_or_else(|e| panic!("--corpus {}: {e}", dir.display()))
    })
}

/// The trial-graph source for `model` over `sizes`: the corpus when one
/// was given *and* it stores this model at these sizes, else
/// generate-per-trial (with a printed note explaining the fallback, so
/// a sweep mixing corpus-backed and generated models is visible).
pub(super) fn resolve_source<'a, M: GraphModel + Sync>(
    corpus: Option<&'a Corpus>,
    model: &'a M,
    sizes: &[usize],
) -> Box<dyn GraphSource + 'a> {
    if let Some(corpus) = corpus {
        match corpus.check_compatible(&model.name(), sizes) {
            Ok(()) => {
                let source = corpus.source();
                println!("graphs: {}", source.describe());
                return Box::new(source);
            }
            Err(e) => println!("note: generating {} instead — {e}", model.name()),
        }
    }
    Box::new(ModelSource::new(model))
}

/// Entry point for a legacy `exp_*` binary: dispatches `name` through
/// the registry with leniently-parsed process arguments.
pub fn run_legacy(name: &str) {
    nonsearch_engine::run_legacy(&registry(), name);
}

/// The standard experiment banner, driven by the run's own options
/// (not the process-global ones, so `xp` subcommands report correctly).
fn print_banner(ctx: &ExpContext, id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("claim: {claim}");
    if ctx.options.quick {
        println!("mode: QUICK (reduced sweep; run without --quick for the full table)");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_ten_experiments() {
        let r = registry();
        assert!(r.specs().len() >= 10, "only {} registered", r.specs().len());
        for name in [
            "theorem1-weak",
            "theorem1-strong",
            "theorem2-cf",
            "lemma1-bound",
            "lemma2-equiv",
            "lemma3-event",
            "maxdeg",
            "degree-dist",
            "ablation",
            "null-model",
        ] {
            assert!(r.find(name).is_some(), "{name} missing");
        }
        assert!(r.usage().contains("corpus build|info|verify"));
    }

    #[test]
    fn ids_and_claims_are_nonempty_and_unique() {
        let r = registry();
        let mut ids: Vec<&str> = r.specs().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), r.specs().len());
        for spec in r.specs() {
            assert!(!spec.claim.is_empty(), "{} has no claim", spec.name);
        }
    }
}
