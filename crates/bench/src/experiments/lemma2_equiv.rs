//! E5 — Lemma 2: the window `[[a+1, b]]` is equivalent conditional on
//! `E_{a,b}`.
//!
//! Exact verification by enumeration for small trees (distribution
//! literally invariant under window transpositions), plus a statistical
//! symmetry test on sampled larger trees.

use super::print_banner;
use nonsearch_analysis::Table;
use nonsearch_core::{exact_window_exchangeability, sampled_window_symmetry, EquivalenceWindow};
use nonsearch_engine::{ExpContext, ExperimentSpec, JsonValue};

pub(super) const SPEC: ExperimentSpec = ExperimentSpec {
    name: "lemma2-equiv",
    id: "E5",
    claim: "conditional on E_{a,b}, window vertices are interchangeable",
    default_seed: 0xE5,
    run,
};

fn run(ctx: &mut ExpContext) {
    print_banner(
        ctx,
        "E5 / Lemma 2 (vertex equivalence)",
        "conditional on E_{a,b}, window vertices are interchangeable: \
         exact check on small trees, z-test on sampled trees",
    );
    if ctx.options.corpus.is_some() {
        println!("note: --corpus has no effect here — this experiment inspects");
        println!("attachment traces (construction provenance), which stored CSR");
        println!("graphs do not carry; trees are enumerated/sampled in place.\n");
    }

    println!("exact enumeration check (trees of size b ≤ 9):");
    let mut exact_table =
        Table::with_columns(&["p", "window", "event mass", "max discrepancy", "verdict"]);
    for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        for (a, b) in [(4usize, 7usize), (5, 8), (6, 9)] {
            let w = EquivalenceWindow::with_bounds(a, b);
            let check = exact_window_exchangeability(&w, p).expect("small trees enumerate");
            let ok = check.is_exchangeable(1e-12);
            exact_table.row(vec![
                format!("{p:.2}"),
                format!("[[{}..{}]]", a + 1, b),
                format!("{:.5}", check.event_mass),
                format!("{:.2e}", check.max_discrepancy),
                if ok {
                    "exchangeable".into()
                } else {
                    "BROKEN".into()
                },
            ]);
            ctx.writer
                .record_cell(vec![
                    ("check", JsonValue::from("exact")),
                    ("p", JsonValue::from(p)),
                    ("a", JsonValue::from(a)),
                    ("window", JsonValue::from(w.len())),
                    ("trials", JsonValue::Null),
                    ("seed", JsonValue::from(ctx.seed)),
                    ("statistic", JsonValue::from(check.max_discrepancy)),
                    ("threshold", JsonValue::from(1e-12)),
                    ("event_mass", JsonValue::from(check.event_mass)),
                    ("ok", JsonValue::from(ok)),
                ])
                .expect("write cell record");
        }
    }
    println!("{exact_table}");

    println!("sampled symmetry check (father-label means must match across positions):");
    let mut sampled_table = Table::with_columns(&[
        "p",
        "anchor a",
        "window |V|",
        "accepted",
        "max |z|",
        "verdict",
    ]);
    let sample_trials = ctx.options.trial_count(5_000);
    let tracer = ctx.tracer.clone();
    for &p in &[0.3, 0.6, 0.9] {
        for &a in &[50usize, 200] {
            let _cell_span = tracer.span("size-cell");
            let w = EquivalenceWindow::from_anchor(a);
            // lint: allow(clock-env): profile/phase wall-clock, reported in telemetry records, never aggregated
            let cell_start = std::time::Instant::now();
            let report = sampled_window_symmetry(&w, p, sample_trials, ctx.seed)
                .expect("event has constant probability, some trials accept");
            let wall_ms = cell_start.elapsed().as_secs_f64() * 1e3;
            let ok = report.max_z < 4.0;
            sampled_table.row(vec![
                format!("{p:.2}"),
                a.to_string(),
                w.len().to_string(),
                format!("{}/{}", report.accepted, report.attempted),
                format!("{:.2}", report.max_z),
                if ok {
                    "consistent".into()
                } else {
                    "suspicious".into()
                },
            ]);
            ctx.writer
                .record_cell(vec![
                    ("check", JsonValue::from("sampled")),
                    ("p", JsonValue::from(p)),
                    ("a", JsonValue::from(a)),
                    ("window", JsonValue::from(w.len())),
                    ("trials", JsonValue::from(report.attempted)),
                    ("seed", JsonValue::from(ctx.seed)),
                    ("statistic", JsonValue::from(report.max_z)),
                    ("threshold", JsonValue::from(4.0)),
                    ("event_mass", JsonValue::Null),
                    ("ok", JsonValue::from(ok)),
                ])
                .expect("write cell record");
            if ctx.options.profile {
                // "Requests" for this experiment = sampled trees: the
                // throughput unit the symmetry check actually spends.
                let sampled = report.attempted as f64;
                ctx.writer
                    .record_profile(vec![
                        ("check", JsonValue::from("sampled")),
                        ("p", JsonValue::from(p)),
                        ("n", JsonValue::from(a)),
                        ("trials", JsonValue::from(report.attempted)),
                        ("requests", JsonValue::from(sampled)),
                        ("wall_ms", JsonValue::from(wall_ms)),
                        (
                            "requests_per_sec",
                            JsonValue::from(sampled / (wall_ms / 1e3).max(f64::EPSILON)),
                        ),
                    ])
                    .expect("write profile record");
            }
        }
    }
    println!("{sampled_table}");
    println!("(|z| is a max over O(|V|²) comparisons; values under ~4 are");
    println!("what exchangeability predicts at these sample sizes.)");
}
