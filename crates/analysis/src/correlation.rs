//! Degree and age correlations.
//!
//! The paper's key structural observation about evolving models: *"the
//! degree and age of a vertex are positively correlated. In particular,
//! the degrees of neighbors are not independent, and mean-field analysis
//! of the models tends to give incorrect results"* — unlike the pure
//! (configuration-model) random graphs where neighbor degrees are
//! independent. These estimators make that distinction measurable.

use nonsearch_graph::{NodeId, UndirectedCsr};

/// Pearson correlation of two equal-length samples.
///
/// Returns `None` if fewer than two points, lengths differ, inputs are
/// non-finite, or either sample is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        syy += (yi - my) * (yi - my);
        sxy += (xi - mx) * (yi - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Degree assortativity: the Pearson correlation of the endpoint degrees
/// over all edges (both orientations, the standard Newman estimator).
///
/// Positive for assortative graphs, negative for disassortative ones —
/// evolving scale-free models are typically disassortative (new
/// low-degree vertices attach to old hubs), while the configuration
/// model is asymptotically neutral.
///
/// Returns `None` for graphs with no edges or constant degrees.
pub fn degree_assortativity(graph: &UndirectedCsr) -> Option<f64> {
    let mut xs = Vec::with_capacity(2 * graph.edge_count());
    let mut ys = Vec::with_capacity(2 * graph.edge_count());
    for (_, (u, v)) in graph.edges() {
        let (du, dv) = (graph.degree(u) as f64, graph.degree(v) as f64);
        xs.push(du);
        ys.push(dv);
        xs.push(dv);
        ys.push(du);
    }
    pearson(&xs, &ys)
}

/// Age–degree correlation: Pearson correlation between a vertex's
/// arrival rank (its id) and its degree.
///
/// Strongly negative in attachment models (old ⇒ high degree) and near
/// zero in models without arrival structure.
///
/// Returns `None` for graphs with fewer than two vertices or constant
/// degrees.
pub fn age_degree_correlation(graph: &UndirectedCsr) -> Option<f64> {
    let ages: Vec<f64> = (0..graph.node_count()).map(|i| i as f64).collect();
    let degrees: Vec<f64> = (0..graph.node_count())
        .map(|i| graph.degree(NodeId::new(i)) as f64)
        .collect();
    pearson(&ages, &degrees)
}

/// Mean neighbor degree as a function of vertex degree (`k_nn(d)`), the
/// standard neighbor-degree-dependence curve.
///
/// Entry `d` holds `Some(mean degree of neighbors of degree-d vertices)`
/// or `None` if no vertex has degree `d`. A flat curve means neighbor
/// degrees are independent of own degree (pure random graphs); a falling
/// curve is the disassortative signature of attachment models.
pub fn mean_neighbor_degree_curve(graph: &UndirectedCsr) -> Vec<Option<f64>> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let max_degree = (0..n)
        .map(|i| graph.degree(NodeId::new(i)))
        .max()
        .unwrap_or(0);
    let mut sums = vec![0.0f64; max_degree + 1];
    let mut counts = vec![0usize; max_degree + 1];
    for i in 0..n {
        let v = NodeId::new(i);
        let d = graph.degree(v);
        if d == 0 {
            continue;
        }
        let neighbor_sum: usize = graph.neighbors(v).map(|w| graph.degree(w)).sum();
        sums[d] += neighbor_sum as f64 / d as f64;
        counts[d] += 1;
    }
    sums.into_iter()
        .zip(counts)
        .map(|(s, c)| if c == 0 { None } else { Some(s / c as f64) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonsearch_graph::UndirectedCsr;

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        let y_neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&x, &y_pos[..3]).is_none());
    }

    #[test]
    fn star_is_maximally_disassortative() {
        let g = UndirectedCsr::from_edges(6, (1..6).map(|i| (0, i))).unwrap();
        let r = degree_assortativity(&g).unwrap();
        assert!((r + 1.0).abs() < 1e-12, "star assortativity = {r}");
    }

    #[test]
    fn regular_graph_has_no_assortativity() {
        // Cycle: all degrees equal → correlation undefined.
        let g = UndirectedCsr::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5))).unwrap();
        assert!(degree_assortativity(&g).is_none());
    }

    #[test]
    fn age_degree_in_a_growing_star() {
        // Vertex 0 oldest and highest degree: strong negative correlation
        // of age rank (0 = oldest) with... rank 0 has degree 5, so the
        // correlation between index and degree is negative.
        let g = UndirectedCsr::from_edges(6, (1..6).map(|i| (0, i))).unwrap();
        let r = age_degree_correlation(&g).unwrap();
        assert!(r < -0.4, "age-degree correlation = {r}");
    }

    #[test]
    fn neighbor_degree_curve_on_star() {
        let g = UndirectedCsr::from_edges(5, (1..5).map(|i| (0, i))).unwrap();
        let curve = mean_neighbor_degree_curve(&g);
        // Degree-1 vertices (leaves) neighbor the degree-4 hub.
        assert_eq!(curve[1], Some(4.0));
        // The hub's neighbors are all leaves.
        assert_eq!(curve[4], Some(1.0));
        assert_eq!(curve[2], None);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g = UndirectedCsr::from_edges(0, []).unwrap();
        assert!(degree_assortativity(&g).is_none());
        assert!(age_degree_correlation(&g).is_none());
        assert!(mean_neighbor_degree_curve(&g).is_empty());
    }
}
