//! `xp` — the unified experiment CLI.
//!
//! ```text
//! xp list                                    # enumerate experiments
//! xp theorem1-weak --quick --threads 4 --out runs.jsonl
//! xp validate runs.jsonl                     # check emitted records
//! ```
//!
//! Subcommands share the engine flag set (`--quick`, `--threads`,
//! `--seed`, `--out`, `--format`, `--trials`, `--sizes`); run records
//! are bit-identical for any `--threads` value with the same seed.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(nonsearch_bench::experiments::registry().main(&args));
}
